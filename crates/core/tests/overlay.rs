//! Overlay integration suite: two real project servers peered over
//! loopback TCP, with a worker pool attached to only one of them.
//!
//! Exercises the delegation path end to end — the peered server offers
//! its idle workers to the command owner, commands execute remotely,
//! results flow back and land in the owner's exactly-once ledger — and
//! the failure path: killing the delegating router mid-command must
//! leave the owner's accounting intact (commands re-queue and complete
//! elsewhere, with no duplicate `CommandFinished`).
//!
//! The broker fairness regression rides along: three channel servers
//! with uneven backlogs, one of them stalled inside its controller,
//! must not starve the others.

use copernicus_core::prelude::*;
use copernicus_core::transport::channel;
use copernicus_core::{
    connect_workers, serve_project, spawn_router, spawn_worker, BrokerConfig, ExecContext,
    ExecError, LocalUpstream, OverlayConfig, RetryPolicy, Server, Upstream,
};
use parking_lot::Mutex;
use serde_json::json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Shared scaffolding (mirrors tests/tcp.rs)
// ---------------------------------------------------------------------

/// Terminal-event ledger: command id → number of terminal events seen.
type Ledger = Arc<Mutex<HashMap<u64, u32>>>;

/// Spawns `specs`, records every terminal event, finishes when all
/// commands are accounted for.
struct Gather {
    specs: Vec<CommandSpec>,
    n: usize,
    seen: usize,
    ledger: Ledger,
}

impl Gather {
    fn new(specs: Vec<CommandSpec>, ledger: Ledger) -> Self {
        let n = specs.len();
        Gather {
            specs,
            n,
            seen: 0,
            ledger,
        }
    }

    fn step(&mut self) -> Vec<Action> {
        self.seen += 1;
        if self.seen == self.n {
            vec![Action::FinishProject {
                result: json!("done"),
            }]
        } else {
            vec![]
        }
    }
}

impl Controller for Gather {
    fn name(&self) -> &str {
        "overlay-gather"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                vec![Action::Spawn(std::mem::take(&mut self.specs))]
            }
            ControllerEvent::CommandFinished(output) => {
                *self.ledger.lock().entry(output.command.0).or_insert(0) += 1;
                self.step()
            }
            ControllerEvent::CommandDropped { command, .. } => {
                *self.ledger.lock().entry(command.0).or_insert(0) += 1;
                self.step()
            }
            ControllerEvent::WorkerFailed { .. } => vec![],
        }
    }
}

/// A server with no work of its own: finishes immediately, leaving its
/// router free to delegate every dialing worker to the peers.
struct Idle;

impl Controller for Idle {
    fn name(&self) -> &str {
        "overlay-idle"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => vec![Action::FinishProject {
                result: json!("idle"),
            }],
            _ => vec![],
        }
    }
}

fn specs(command_type: &str, n: usize, millis: u64) -> Vec<CommandSpec> {
    (0..n)
        .map(|i| {
            CommandSpec::new(
                command_type,
                Resources::new(1, 1),
                json!({ "millis": millis }),
            )
            .with_priority((n - i) as i32)
        })
        .collect()
}

fn owner_config(key: AuthKey, telemetry: Option<Telemetry>) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 0, // workers dial in (via the peer, for these tests)
        worker: worker_config(),
        server: ServerConfig::builder()
            .heartbeat_interval(Duration::from_millis(50))
            .watchdog_period(Duration::from_millis(10))
            .retry(RetryPolicy {
                max_attempts: 5,
                backoff_base: Duration::from_millis(5),
                backoff_max: Duration::from_millis(40),
            })
            .bind("127.0.0.1:0", key)
            .name("owner")
            .build()
            .expect("owner config must validate"),
        telemetry,
        ..RuntimeConfig::default()
    }
}

fn delegate_config(key: AuthKey, owner_addr: &str) -> RuntimeConfig {
    traced_delegate_config(key, owner_addr, None)
}

fn traced_delegate_config(
    key: AuthKey,
    owner_addr: &str,
    telemetry: Option<Telemetry>,
) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 0,
        worker: worker_config(),
        server: ServerConfig::builder()
            .heartbeat_interval(Duration::from_millis(50))
            .watchdog_period(Duration::from_millis(10))
            .bind("127.0.0.1:0", key)
            .name("delegate")
            .peer(owner_addr)
            .build()
            .expect("delegate config must validate"),
        overlay: OverlayConfig {
            // Short offer patience keeps the router loop responsive:
            // delegation offers cycle quickly and stop_router() bites
            // within one offer round.
            offer_patience: Duration::from_millis(200),
            ..OverlayConfig::default()
        },
        telemetry,
        ..RuntimeConfig::default()
    }
}

fn worker_config() -> WorkerConfig {
    WorkerConfig {
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(2),
        ..WorkerConfig::default()
    }
}

fn assert_exactly_once(ledger: &Ledger, n: usize) {
    let ledger = ledger.lock();
    assert_eq!(ledger.len(), n, "every command reaches a terminal event");
    for (id, &events) in ledger.iter() {
        assert_eq!(
            events, 1,
            "command {id}: expected exactly one terminal event"
        );
    }
}

// ---------------------------------------------------------------------
// Happy path: cross-server delegation completes the owner's project
// ---------------------------------------------------------------------

#[test]
fn delegated_commands_complete_via_peer() {
    let key = AuthKey::from_passphrase("overlay");
    let telemetry = Telemetry::new();
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));

    // Server A owns the backlog. No worker ever dials it directly.
    let n = 6;
    let gather = Gather::new(specs("sleep", n, 20), ledger.clone());
    let a = serve_project(Box::new(gather), owner_config(key, Some(telemetry.clone())))
        .expect("owner server must bind");
    let a_addr = a.local_addr.to_string();

    // Server B has no work of its own but peers with A; the worker
    // pool attaches to B only, so completions can only come through
    // the delegation path.
    let b = serve_project(Box::new(Idle), delegate_config(key, &a_addr))
        .expect("delegate server must bind");
    let b_addr = b.local_addr.to_string();

    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let workers = connect_workers(&b_addr, key, 3, worker_config(), registry)
        .expect("workers must connect to the delegate");

    // The owner finishes only when every delegated command reports in.
    let result = a.join();
    assert_eq!(result.result, json!("done"));
    assert_eq!(result.commands_completed, n as u64);
    assert_eq!(result.commands_dropped, 0);
    assert_exactly_once(&ledger, n);

    // A's shutdown broadcast tells B's peer link the project is over;
    // B's router then releases its workers. Join them before tearing
    // B down so the natural shutdown path (not stop_router) is what
    // gets exercised.
    for w in workers {
        w.join();
    }
    let b_result = b.join();
    assert_eq!(b_result.result, json!("idle"));

    // The owner journalled the overlay: the peer introduced itself and
    // every completion arrived as a delegated result.
    let journal = telemetry.export_journal_jsonl();
    assert!(
        journal.contains("peer_connected"),
        "owner journal must record the peer link: {journal}"
    );
    assert!(
        journal.contains("\"delegate\""),
        "peer event must carry the peer's announced name: {journal}"
    );
    let delegated = journal.matches("delegation_completed").count();
    assert!(
        delegated >= n,
        "expected at least {n} delegation_completed events, saw {delegated}: {journal}"
    );
}

// ---------------------------------------------------------------------
// Replica exchange across the overlay: sync points behind a delegate
// ---------------------------------------------------------------------

/// A repex ladder whose legs all execute on a *peered* server's workers.
/// Exchange partners rendezvous at the owner — the controller never
/// knows its energies crossed a delegate link — so the ladder must
/// resolve exactly as it does locally, and the owner's journal must
/// show every leg as a delegated completion.
#[test]
fn repex_ladder_resolves_when_replicas_live_behind_a_delegate() {
    let key = AuthKey::from_passphrase("overlay-repex");
    let telemetry = Telemetry::new();

    let config = RepexProjectConfig {
        n_replicas: 4,
        n_legs: 4,
        steps_per_leg: 150,
        mode: ExchangeMode::Async,
        seed: 42,
        ..RepexProjectConfig::default()
    };
    let controller = RepexController::new(config);
    let model = controller.model();

    // Server A owns the ladder but has no workers of its own.
    let a = serve_project(
        Box::new(controller),
        owner_config(key, Some(telemetry.clone())),
    )
    .expect("owner server must bind");
    let a_addr = a.local_addr.to_string();

    // Server B idles, peers with A, and hosts the only worker pool —
    // every leg (and therefore every exchange energy) crosses the link.
    let b = serve_project(Box::new(Idle), delegate_config(key, &a_addr))
        .expect("delegate server must bind");
    let b_addr = b.local_addr.to_string();

    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model)));
    let workers = connect_workers(&b_addr, key, 3, worker_config(), registry)
        .expect("workers must connect to the delegate");

    let result = a.join();
    assert_eq!(result.commands_dropped, 0);
    assert_eq!(result.commands_completed, 16, "4 replicas × 4 legs");
    let report =
        RepexProjectReport::from_value(&result.result).expect("repex report must parse");
    assert_eq!(report.n_alive, 4);
    // 4 legs over 4 replicas: even parity carries 2 pairs, odd 1.
    assert_eq!(report.attempts, 6, "the full exchange schedule resolves");
    let mut walkers = report.walkers.clone();
    walkers.sort_unstable();
    assert_eq!(walkers, vec![0, 1, 2, 3], "occupancy stays a permutation");

    for w in workers {
        w.join();
    }
    let b_result = b.join();
    assert_eq!(b_result.result, json!("idle"));

    let journal = telemetry.export_journal_jsonl();
    assert!(
        journal.contains("peer_connected"),
        "owner journal must record the peer link"
    );
    let delegated = journal.matches("delegation_completed").count();
    assert!(
        delegated >= 16,
        "every leg must complete via delegation, saw {delegated}"
    );
    let exchanges = journal.matches("replica_exchange").count();
    assert_eq!(
        exchanges, 6,
        "the owner must journal each sync-point decision: {journal}"
    );
}

// ---------------------------------------------------------------------
// Distributed tracing: one merged span tree across both servers
// ---------------------------------------------------------------------

/// A command delegated across two peered servers must produce ONE
/// merged trace whose span tree covers all three processes: the owning
/// server (`command` → `attempt`), the delegate (`delegated` hold) and
/// the worker pool (`exec`), chained by parent span ids across the
/// wire. This is exactly what `copernicus trace merge` computes from
/// the three `trace_spans.jsonl` files.
#[test]
fn delegated_commands_form_one_merged_cross_process_trace() {
    use copernicus_telemetry::trace::{self, ProcessLog};
    use copernicus_telemetry::{span_names, Json};

    let key = AuthKey::from_passphrase("overlay-trace");
    let owner_t = Telemetry::for_process("owner");
    let delegate_t = Telemetry::for_process("delegate");
    let workers_t = Telemetry::for_process("workers");
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));

    let n = 3;
    let gather = Gather::new(specs("sleep", n, 10), ledger.clone());
    let a = serve_project(Box::new(gather), owner_config(key, Some(owner_t.clone())))
        .expect("owner server must bind");
    let a_addr = a.local_addr.to_string();
    let b = serve_project(
        Box::new(Idle),
        traced_delegate_config(key, &a_addr, Some(delegate_t.clone())),
    )
    .expect("delegate server must bind");
    let b_addr = b.local_addr.to_string();

    // Workers attach only to the delegate: every completion crosses the
    // delegation path, so every trace must span processes.
    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let traced_workers = WorkerConfig {
        telemetry: Some(workers_t.clone()),
        ..worker_config()
    };
    let workers = connect_workers(&b_addr, key, 2, traced_workers, registry)
        .expect("workers must connect to the delegate");

    let result = a.join();
    assert_eq!(result.commands_completed, n as u64);
    for w in workers {
        w.join();
    }
    let _ = b.join();
    assert_exactly_once(&ledger, n);

    // Merge the three span logs exactly as the CLI tooling would.
    let logs: Vec<ProcessLog> = [&owner_t, &delegate_t, &workers_t]
        .iter()
        .map(|t| {
            let (log, errors) = trace::parse_jsonl(&t.export_trace_jsonl());
            assert!(errors.is_empty(), "span log must parse cleanly: {errors:?}");
            log
        })
        .collect();
    let merged = trace::merge(&logs);
    assert_eq!(
        merged.trace_ids().len(),
        n,
        "one trace per command, nothing merged away or split"
    );

    for tid in merged.trace_ids() {
        let procs = merged.processes_of(tid);
        for p in ["owner", "delegate", "workers"] {
            assert!(
                procs.iter().any(|q| q == p),
                "trace {tid:#x} must span {p}: got {procs:?}"
            );
        }
        // Exactly one root: the owner's command-lifecycle span.
        let roots = merged.roots_of(tid);
        assert_eq!(roots.len(), 1, "trace {tid:#x} must have one root");
        let root = roots[0];
        assert_eq!(root.span.name, span_names::COMMAND);
        assert_eq!(root.process, "owner");
        assert!(
            root.span
                .attrs
                .iter()
                .any(|(k, v)| k == "disposition" && v == "completed"),
            "root span must carry the terminal disposition: {:?}",
            root.span.attrs
        );
        // The causal chain hops processes: attempt (owner) → delegated
        // (delegate) → exec (workers).
        let attempt = merged
            .children_of(tid, root.span.span_id)
            .into_iter()
            .filter(|s| s.span.name == span_names::ATTEMPT)
            .find(|s| {
                merged
                    .children_of(tid, s.span.span_id)
                    .iter()
                    .any(|c| c.span.name == span_names::DELEGATED)
            })
            .expect("an attempt span with a delegated child");
        assert_eq!(attempt.process, "owner");
        let delegated = merged
            .children_of(tid, attempt.span.span_id)
            .into_iter()
            .find(|s| s.span.name == span_names::DELEGATED)
            .expect("delegated hold under the attempt");
        assert_eq!(delegated.process, "delegate");
        let exec = merged
            .children_of(tid, delegated.span.span_id)
            .into_iter()
            .find(|s| s.span.name == span_names::EXEC)
            .expect("exec span under the delegated hold");
        assert_eq!(exec.process, "workers");
    }

    // The Chrome export of the merged view round-trips through the JSON
    // parser and carries events from all three processes (pids 1..=3).
    let chrome = merged.chrome_json();
    let parsed = Json::parse(&chrome.to_string()).expect("chrome export must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let mut pids_with_spans: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("pid").and_then(Json::as_u64))
        .collect();
    pids_with_spans.sort_unstable();
    pids_with_spans.dedup();
    assert_eq!(
        pids_with_spans,
        vec![1, 2, 3],
        "complete events must come from all three processes"
    );
}

// ---------------------------------------------------------------------
// Failure path: the delegate dies mid-command; the owner recovers
// ---------------------------------------------------------------------

/// Executor that parks in `execute` until released — lets the test pin
/// commands "in flight on a remote worker" deterministically.
struct GateExecutor {
    started: Arc<AtomicUsize>,
    release: Arc<AtomicBool>,
}

impl CommandExecutor for GateExecutor {
    fn executables(&self) -> Vec<ExecutableSpec> {
        vec![ExecutableSpec::new("hold", Platform::Smp, "0.1")]
    }

    fn execute(&self, _ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        self.started.fetch_add(1, Ordering::SeqCst);
        let deadline = Instant::now() + Duration::from_secs(10);
        while !self.release.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(json!({ "held": true }))
    }
}

#[test]
fn killing_the_delegate_mid_command_preserves_the_owner_ledger() {
    let key = AuthKey::from_passphrase("overlay-faults");
    let telemetry = Telemetry::new();
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));

    let n = 4;
    let gather = Gather::new(specs("hold", n, 0), ledger.clone());
    let a = serve_project(Box::new(gather), owner_config(key, Some(telemetry.clone())))
        .expect("owner server must bind");
    let a_addr = a.local_addr.to_string();

    let b = serve_project(Box::new(Idle), delegate_config(key, &a_addr))
        .expect("delegate server must bind");
    let b_addr = b.local_addr.to_string();

    let started = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(GateExecutor {
        started: started.clone(),
        release: release.clone(),
    });
    let registry = ExecutorRegistry::new().with(gate);

    // Two workers dial the delegate and park inside delegated commands.
    let stranded = connect_workers(&b_addr, key, 2, worker_config(), registry.clone())
        .expect("workers must connect to the delegate");
    let deadline = Instant::now() + Duration::from_secs(10);
    while started.load(Ordering::SeqCst) < 1 {
        assert!(
            Instant::now() < deadline,
            "no delegated command ever started executing"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Kill the delegate with commands still held remotely. join() on
    // the delegate reaps its router thread, so after this point no
    // result and no forwarded heartbeat can ever reach the owner from
    // the stranded workers — from A's perspective the peer crashed.
    b.stop_router();
    let _ = b.join();
    release.store(true, Ordering::SeqCst);
    // The stranded workers will finish their held commands, fail to
    // report (their server is gone), exhaust reconnection and exit;
    // they are deliberately not joined here.
    drop(stranded);

    // The owner's watchdog declares the namespaced remote workers lost
    // and re-queues their commands; a fresh pool dialing the owner
    // directly completes everything.
    let recovery = connect_workers(&a_addr, key, 2, worker_config(), registry)
        .expect("recovery workers must connect to the owner");

    let result = a.join();
    assert_eq!(result.result, json!("done"));
    assert_eq!(result.commands_completed, n as u64);
    assert_eq!(result.commands_dropped, 0);
    assert!(
        result.commands_requeued >= 1,
        "the held command must have been re-queued after the peer died: {result:?}"
    );
    assert!(
        result.workers_lost >= 1,
        "the owner must have declared the remote worker lost: {result:?}"
    );
    // The delegated attempts died with the peer: nothing ever came
    // back for them, so the dedup layer saw no stale duplicates — and
    // the controller saw exactly one terminal event per command.
    assert_eq!(result.stale_results_dropped, 0, "{result:?}");
    assert_exactly_once(&ledger, n);

    for w in recovery {
        w.join();
    }
}

// ---------------------------------------------------------------------
// Broker fairness: a stalled controller must not starve its siblings
// ---------------------------------------------------------------------

/// Sleep-command project that parks its server loop inside the
/// controller after the first completion, until released. While parked
/// the server cannot answer work requests — the router's offer
/// patience is what keeps the other projects fed.
struct StallController {
    label: &'static str,
    n: usize,
    done: usize,
    gate: Option<mpsc::Receiver<()>>,
    stalled: Arc<AtomicBool>,
}

impl Controller for StallController {
    fn name(&self) -> &str {
        self.label
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                vec![Action::Spawn(specs("sleep", self.n, 5))]
            }
            ControllerEvent::CommandFinished(_) => {
                if let Some(rx) = self.gate.take() {
                    self.stalled.store(true, Ordering::SeqCst);
                    let _ = rx.recv();
                    self.stalled.store(false, Ordering::SeqCst);
                }
                self.done += 1;
                if self.done == self.n {
                    vec![Action::FinishProject {
                        result: json!(self.label),
                    }]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        }
    }
}

#[test]
fn stalled_controller_does_not_starve_its_sibling_servers() {
    let (release_tx, release_rx) = mpsc::channel();
    let stalled = Arc::new(AtomicBool::new(false));

    // Uneven backlogs; the largest project is also the one that stalls.
    // Generous attempt budget on every server: each offer that times
    // out while the staller is parked burns one attempt when the stale
    // reply is eventually declined.
    let plans: Vec<(&'static str, usize, Option<mpsc::Receiver<()>>)> = vec![
        ("staller", 8, Some(release_rx)),
        ("small", 2, None),
        ("medium", 3, None),
    ];
    let mut upstreams: Vec<Box<dyn Upstream>> = Vec::new();
    let mut server_threads = Vec::new();
    for (i, (label, n, gate)) in plans.into_iter().enumerate() {
        let (hub, transport) = channel();
        let config = ServerConfig::builder()
            .retry(RetryPolicy {
                max_attempts: 50,
                backoff_base: Duration::from_millis(1),
                backoff_max: Duration::from_millis(5),
            })
            .build()
            .expect("channel server config must validate");
        let server = Server::new(
            ProjectId(i as u64),
            Box::new(StallController {
                label,
                n,
                done: 0,
                gate,
                stalled: stalled.clone(),
            }),
            config,
            SharedFs::new(),
            Monitor::new(),
            Box::new(transport),
        );
        upstreams.push(Box::new(LocalUpstream::new(label, hub)));
        server_threads.push(std::thread::spawn(move || server.run()));
    }

    let (worker_hub, worker_transport) = channel();
    let router = spawn_router(
        upstreams,
        Box::new(worker_transport),
        BrokerConfig {
            offer_patience: Duration::from_millis(100),
        },
    );

    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let id = WorkerId(100 + i);
            spawn_worker(
                id,
                worker_config(),
                registry.clone(),
                Box::new(worker_hub.attach(id)),
            )
        })
        .collect();
    drop(worker_hub);

    // The small projects must drain to completion while the staller is
    // still parked inside its controller — rotation plus bounded offer
    // patience is exactly what guarantees this.
    let medium = server_threads.pop().expect("medium server");
    let small = server_threads.pop().expect("small server");
    let small_result = small.join().expect("small server must not panic");
    let medium_result = medium.join().expect("medium server must not panic");
    assert!(
        stalled.load(Ordering::SeqCst),
        "the sibling projects should finish while the staller is parked"
    );
    assert_eq!(small_result.result, json!("small"));
    assert_eq!(small_result.commands_completed, 2);
    assert_eq!(medium_result.result, json!("medium"));
    assert_eq!(medium_result.commands_completed, 3);

    // Release the staller; its backlog (including every declined stale
    // dispatch) must still complete without dropping anything.
    release_tx.send(()).expect("staller is waiting on the gate");
    let staller = server_threads.pop().expect("staller server");
    let staller_result = staller.join().expect("staller must not panic");
    assert_eq!(staller_result.result, json!("staller"));
    assert_eq!(staller_result.commands_completed, 8);
    assert_eq!(staller_result.commands_dropped, 0);

    for w in workers {
        w.join();
    }
    router.join();
}
