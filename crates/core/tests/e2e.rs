//! End-to-end tests of the framework: real server thread, real worker
//! threads, real MD commands — the in-process analogue of a Copernicus
//! deployment.

use copernicus_core::plugins::msm::TrajectoryArchive;
use copernicus_core::prelude::*;
use copernicus_core::{MdRunExecutor, MdRunSpec};
use mdsim::VillinModel;
use msm::Weighting;
use parking_lot::Mutex;
use serde_json::json;
use std::sync::Arc;
use std::time::Duration;

fn tiny_msm_config() -> MsmProjectConfig {
    MsmProjectConfig {
        mode: AdaptiveMode::Generational,
        chunks_per_segment: 1,
        n_starts: 2,
        sims_per_start: 3,
        segment_ns: 5.0,
        record_interval: 40,
        checkpoint_steps: 0,
        temperature: 0.55,
        n_clusters: 12,
        lag_frames: 1,
        weighting: Weighting::Adaptive,
        even_until_generation: 0,
        respawn_fraction: 0.3,
        generations: 2,
        folded_rmsd: 3.5,
        kinetics_horizon_ns: 500.0,
        stop_folded_pop_stderr: None,
        seed: 17,
        cores_per_sim: 1,
    }
}

fn md_registry(model: &Arc<VillinModel>) -> ExecutorRegistry {
    ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())))
}

#[test]
fn msm_project_runs_end_to_end_on_worker_pool() {
    let model = Arc::new(VillinModel::hp35());
    let archive: TrajectoryArchive = Arc::new(Mutex::new(Vec::new()));
    let controller = MsmController::new(tiny_msm_config()).with_archive(archive.clone());

    let result = run_project(
        Box::new(controller),
        md_registry(&model),
        RuntimeConfig {
            n_workers: 4,
            ..RuntimeConfig::default()
        },
    );

    // 2 generations × 6 lineages.
    assert_eq!(result.commands_completed, 12);
    // Archive: 2 lineages terminated at the gen-0 boundary (30 % of 6)
    // plus the 6 live lineages at the end.
    assert_eq!(archive.lock().len(), 8);
    assert!(result.bytes_received > 0);
    assert_eq!(result.workers_lost, 0);

    let report = MsmProjectReport::from_value(&result.result).unwrap();
    assert_eq!(report.generations.len(), 2);
    assert!(report.min_rmsd_to_native.is_finite());
    assert!(report.generations[1].n_states > 1);
}

#[test]
fn project_result_is_deterministic_across_worker_counts() {
    // The adaptive decisions depend only on the accumulated trajectory
    // set (sorted by content, seeded RNG), so 1 worker and 4 workers must
    // reach the same scientific result.
    let model = Arc::new(VillinModel::hp35());
    let run_with = |n_workers: usize| -> MsmProjectReport {
        let controller = MsmController::new(tiny_msm_config());
        let result = run_project(
            Box::new(controller),
            md_registry(&model),
            RuntimeConfig {
                n_workers,
                ..RuntimeConfig::default()
            },
        );
        MsmProjectReport::from_value(&result.result).unwrap()
    };
    let a = run_with(1);
    let b = run_with(4);
    assert_eq!(a.generations.len(), b.generations.len());
    // Trajectory data is identical; only arrival order differs. Min RMSD
    // is order-independent.
    assert!((a.min_rmsd_to_native - b.min_rmsd_to_native).abs() < 1e-9);
}

#[test]
fn fep_project_recovers_analytic_free_energy() {
    let cfg = FepProjectConfig {
        k_a: 1.0,
        k_b: 16.0,
        temperature: 1.0,
        n_windows: 4,
        equil_steps: 1_000,
        n_steps: 60_000,
        record_interval: 50,
        seed: 23,
    };
    let exact = cfg.analytic_delta_f();
    let controller = FepController::new(cfg);
    let registry = ExecutorRegistry::new().with(Arc::new(FepSampleExecutor));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 4,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(result.commands_completed, 8);
    let report = FepProjectReport::from_value(&result.result).unwrap();
    assert!(
        (report.delta_f - exact).abs() < 6.0 * report.std_err.max(0.03),
        "BAR ΔF {} vs analytic {exact} (σ {})",
        report.delta_f,
        report.std_err
    );
    assert_eq!(report.n_windows, 4);
    assert!(report.total_samples > 0);
}

/// A controller that spawns `n` mdrun commands, one of which crashes its
/// first worker mid-run, then finishes when all have completed.
struct CrashyController {
    model: Arc<VillinModel>,
    n: usize,
    done: usize,
    failures_seen: usize,
}

impl Controller for CrashyController {
    fn name(&self) -> &str {
        "crashy"
    }
    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                let mut specs = Vec::new();
                for i in 0..self.n {
                    let spec = MdRunSpec {
                        start_positions: self.model.unfolded_start(i as u64 + 1),
                        temperature: 0.55,
                        n_steps: 400,
                        record_interval: 100,
                        seed: i as u64,
                        checkpoint_steps: 100,
                        // Command 0 crashes its first worker at step 200.
                        inject_crash_at_step: if i == 0 { Some(200) } else { None },
                        tag: json!({ "i": i }),
                        kernel: None,
                    };
                    specs.push(CommandSpec::new(
                        "mdrun",
                        Resources::new(1, 16),
                        spec.to_value(),
                    ));
                }
                vec![Action::Spawn(specs)]
            }
            ControllerEvent::CommandFinished(_) => {
                self.done += 1;
                if self.done == self.n {
                    vec![Action::FinishProject {
                        result: json!({ "failures_seen": self.failures_seen }),
                    }]
                } else {
                    vec![]
                }
            }
            ControllerEvent::WorkerFailed { .. } => {
                self.failures_seen += 1;
                vec![]
            }
            // Not expected in this test; counted as done so a regression
            // fails the completion assert instead of hanging the project.
            ControllerEvent::CommandDropped { .. } => {
                self.done += 1;
                if self.done == self.n {
                    vec![Action::FinishProject {
                        result: json!({ "failures_seen": self.failures_seen }),
                    }]
                } else {
                    vec![]
                }
            }
        }
    }
}

#[test]
fn worker_crash_is_detected_and_command_resumes_from_checkpoint() {
    let model = Arc::new(VillinModel::hp35());
    let controller = CrashyController {
        model: model.clone(),
        n: 3,
        done: 0,
        failures_seen: 0,
    };
    // Short heartbeats so the watchdog fires quickly in the test.
    let config = RuntimeConfig {
        n_workers: 3,
        worker: WorkerConfig {
            heartbeat_interval: Duration::from_millis(30),
            ..WorkerConfig::default()
        },
        server: ServerConfig {
            heartbeat_interval: Duration::from_millis(30),
            watchdog_period: Duration::from_millis(15),
            max_attempts: 5,
            ..ServerConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let running = start_project(Box::new(controller), md_registry(&model), config);
    let shared_fs = running.shared_fs.clone();
    let result = running.join();

    assert_eq!(result.commands_completed, 3, "all commands must complete");
    assert_eq!(result.workers_lost, 1, "exactly one worker died");
    assert_eq!(result.commands_requeued, 1, "its command was re-queued");
    assert_eq!(result.commands_dropped, 0);
    let report = result.result;
    assert_eq!(report["failures_seen"], 1);
    // Terminal transitions must retire checkpoints: the shared filesystem
    // ends empty even though the crashed command deposited checkpoints.
    assert_eq!(
        shared_fs.n_checkpoints(),
        0,
        "leaked checkpoints for {:?}",
        shared_fs.checkpointed_commands()
    );
}

#[test]
fn monitor_reports_progress_and_finishes() {
    let model = Arc::new(VillinModel::hp35());
    let controller = MsmController::new(tiny_msm_config());
    let running = start_project(
        Box::new(controller),
        md_registry(&model),
        RuntimeConfig {
            n_workers: 2,
            ..RuntimeConfig::default()
        },
    );
    let monitor = running.monitor.clone();
    let result = running.join();
    let status = monitor.status();
    assert!(status.finished);
    assert_eq!(status.commands_completed, result.commands_completed);
    assert!(
        status.log.iter().any(|l| l.contains("generation")),
        "controller logs should be visible: {:?}",
        status.log
    );
}

#[test]
fn heterogeneous_workers_only_get_matching_commands() {
    // A pool where only some workers have the mdrun executable: the
    // project must still complete, with sleep-only workers idling.
    let model = Arc::new(VillinModel::hp35());
    let controller = MsmController::new(MsmProjectConfig {
        generations: 1,
        ..tiny_msm_config()
    });

    let (hub, server_transport) = copernicus_core::transport::channel();
    let shared_fs = SharedFs::new();
    let monitor = Monitor::new();
    let server = copernicus_core::Server::new(
        ProjectId(0),
        Box::new(controller),
        ServerConfig::default(),
        shared_fs.clone(),
        monitor,
        Box::new(server_transport),
    );
    let server_thread = std::thread::spawn(move || server.run());

    let md_reg = md_registry(&model);
    let sleep_reg = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let mut handles = Vec::new();
    for (i, reg) in [md_reg.clone(), md_reg, sleep_reg].into_iter().enumerate() {
        let mut wc = WorkerConfig::default();
        wc.shared_fs = Some(shared_fs.clone());
        let id = WorkerId(i as u64);
        handles.push(copernicus_core::spawn_worker(
            id,
            wc,
            reg,
            Box::new(hub.attach(id)),
        ));
    }
    drop(hub);
    let result = server_thread.join().unwrap();
    for h in handles {
        h.join();
    }
    assert_eq!(result.commands_completed, 6);
}
