//! Seeded property-style tests for the message codec, and for the
//! codec stacked on the wire framing layer. Random messages must
//! round-trip byte-exactly; random corruption of valid encodings must
//! decode or fail with a clean `CodecError` — never panic, never
//! produce a frame the router would misroute.
//!
//! The generator is a splitmix64 seeded from `COPERNICUS_TEST_SEED`
//! (default `0xC0FFEE`), the same convention as the chaos tests in
//! `faults.rs`, so the CI seed matrix sweeps this file too.

use copernicus_core::codec::{
    decode_inbound, decode_peer, decode_to_server, decode_to_worker, encode_peer, encode_to_server,
    encode_to_worker, Inbound,
};
use copernicus_core::messages::{PeerMsg, ToServer, ToWorker};
use copernicus_core::wire::frame::{read_frame, write_frame};
use copernicus_core::{
    Command, CommandId, CommandOutput, ExecutableSpec, Platform, ProjectId, Resources,
    WorkerDescription, WorkerId,
};
use copernicus_core::telemetry::TraceContext;
use serde_json::json;
use std::io::Cursor;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9e3779b97f4a7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn seed() -> u64 {
    std::env::var("COPERNICUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn rand_string(rng: &mut Rng, max: usize) -> String {
    let len = rng.below(max + 1);
    (0..len)
        .map(|_| char::from(b'a' + (rng.below(26) as u8)))
        .collect()
}

fn rand_platform(rng: &mut Rng) -> Platform {
    match rng.below(3) {
        0 => Platform::Smp,
        1 => Platform::Mpi,
        _ => Platform::Gpu,
    }
}

fn rand_desc(rng: &mut Rng) -> WorkerDescription {
    let n_exec = rng.below(4);
    WorkerDescription {
        platform: rand_platform(rng),
        // The codec rejects zero-core resources, so generate ≥ 1.
        resources: Resources::new(1 + rng.below(128), rng.next_u64() % (1 << 20)),
        executables: (0..n_exec)
            .map(|_| {
                ExecutableSpec::new(
                    rand_string(rng, 12),
                    rand_platform(rng),
                    rand_string(rng, 8),
                )
            })
            .collect(),
    }
}

fn rand_command(rng: &mut Rng) -> Command {
    Command {
        id: CommandId(rng.next_u64()),
        project: ProjectId(rng.next_u64()),
        command_type: rand_string(rng, 16),
        priority: rng.next_u64() as i32,
        required: Resources::new(1 + rng.below(64), rng.next_u64() % (1 << 16)),
        payload: json!({ "steps": rng.below(1 << 20) }),
        checkpoint: if rng.below(2) == 0 {
            None
        } else {
            Some(json!({ "frame": rng.below(1 << 16) }))
        },
        attempts: rng.below(10) as u32,
        trace: rand_trace(rng),
        // Deliberately not encoded (dispatch-local state); keep None so
        // re-encode equality is meaningful.
        not_before: None,
    }
}

/// Absent / root / child trace contexts, so the sweep exercises every
/// shape of the codec's trailing optional trace field.
fn rand_trace(rng: &mut Rng) -> Option<TraceContext> {
    match rng.below(3) {
        0 => None,
        1 => Some(TraceContext {
            trace_id: rng.next_u64(),
            span_id: rng.next_u64(),
            parent_span_id: None,
        }),
        _ => Some(TraceContext {
            trace_id: rng.next_u64(),
            span_id: rng.next_u64(),
            parent_span_id: Some(rng.next_u64()),
        }),
    }
}

fn rand_output(rng: &mut Rng) -> CommandOutput {
    let cmd = rand_command(rng);
    let mut out = CommandOutput::new(
        &cmd,
        WorkerId(rng.next_u64()),
        json!({ "ok": rng.below(2) }),
        (rng.below(1000) as f64) / 64.0,
    );
    out.bytes = rng.next_u64() % (1 << 24);
    out
}

fn rand_to_server(rng: &mut Rng) -> ToServer {
    match rng.below(6) {
        // One level only: the codec flattens nested batches at encode
        // and rejects them on decode, so leaves keep the re-encode
        // equality property meaningful.
        5 => ToServer::Batch(
            (0..1 + rng.below(4))
                .map(|_| rand_to_server_leaf(rng))
                .collect(),
        ),
        _ => rand_to_server_leaf(rng),
    }
}

fn rand_to_server_leaf(rng: &mut Rng) -> ToServer {
    match rng.below(6) {
        0 => ToServer::Announce {
            worker: WorkerId(rng.next_u64()),
            desc: rand_desc(rng),
        },
        1 => ToServer::RequestWork {
            worker: WorkerId(rng.next_u64()),
        },
        2 => ToServer::Completed {
            output: rand_output(rng),
        },
        3 => ToServer::CommandError {
            worker: WorkerId(rng.next_u64()),
            project: ProjectId(rng.next_u64()),
            command: CommandId(rng.next_u64()),
            epoch: rng.below(100) as u32,
            error: rand_string(rng, 40),
        },
        4 => ToServer::WorkerDeparted {
            worker: WorkerId(rng.next_u64()),
        },
        _ => ToServer::Heartbeat {
            worker: WorkerId(rng.next_u64()),
        },
    }
}

fn rand_to_worker(rng: &mut Rng) -> ToWorker {
    match rng.below(3) {
        0 => {
            let n = rng.below(4);
            ToWorker::Workload((0..n).map(|_| rand_command(rng)).collect())
        }
        1 => ToWorker::NoWork,
        _ => ToWorker::Shutdown,
    }
}

fn rand_peer(rng: &mut Rng) -> PeerMsg {
    match rng.below(8) {
        7 => PeerMsg::Heartbeats {
            workers: (0..rng.below(6)).map(|_| WorkerId(rng.next_u64())).collect(),
        },
        0 => PeerMsg::Hello {
            server: rand_string(rng, 24),
            projects: (0..rng.below(4)).map(|_| ProjectId(rng.next_u64())).collect(),
        },
        1 => PeerMsg::OfferWork {
            offer: rng.next_u64(),
            worker: WorkerId(rng.next_u64()),
            desc: rand_desc(rng),
        },
        2 => PeerMsg::DelegateCommand {
            offer: rng.next_u64(),
            worker: WorkerId(rng.next_u64()),
            commands: (0..rng.below(3)).map(|_| rand_command(rng)).collect(),
        },
        3 => PeerMsg::DelegatedResult {
            output: rand_output(rng),
        },
        4 => PeerMsg::DelegatedError {
            worker: WorkerId(rng.next_u64()),
            project: ProjectId(rng.next_u64()),
            command: CommandId(rng.next_u64()),
            epoch: rng.below(100) as u32,
            error: rand_string(rng, 40),
        },
        5 => PeerMsg::Heartbeat {
            worker: WorkerId(rng.next_u64()),
        },
        _ => PeerMsg::Shutdown,
    }
}

const ROUNDS: usize = 120;

#[test]
fn random_messages_roundtrip_byte_exactly() {
    let mut rng = Rng::new(seed());
    for round in 0..ROUNDS {
        let msg = rand_to_server(&mut rng);
        let bytes = encode_to_server(&msg);
        let back = decode_to_server(&bytes)
            .unwrap_or_else(|e| panic!("round {round}: {e} for {msg:?}"));
        // The message types carry no PartialEq; byte equality of the
        // re-encoding is the stronger property anyway.
        assert_eq!(encode_to_server(&back), bytes, "round {round}: {msg:?}");

        let msg = rand_to_worker(&mut rng);
        let bytes = encode_to_worker(&msg);
        let back = decode_to_worker(&bytes)
            .unwrap_or_else(|e| panic!("round {round}: {e} for {msg:?}"));
        assert_eq!(encode_to_worker(&back), bytes, "round {round}: {msg:?}");

        let msg = rand_peer(&mut rng);
        let bytes = encode_peer(&msg);
        let back =
            decode_peer(&bytes).unwrap_or_else(|e| panic!("round {round}: {e} for {msg:?}"));
        assert_eq!(encode_peer(&back), bytes, "round {round}: {msg:?}");

        // The inbound demultiplexer must route by tag namespace.
        match decode_inbound(&encode_peer(&back)) {
            Ok(Inbound::Peer(_)) => {}
            other => panic!("round {round}: peer frame misrouted: {other:?}"),
        }
    }
}

#[test]
fn mutated_encodings_decode_or_error_cleanly() {
    let mut rng = Rng::new(seed().rotate_left(13));
    for _round in 0..ROUNDS {
        let mut bytes = match rng.below(3) {
            0 => encode_to_server(&rand_to_server(&mut rng)),
            1 => encode_to_worker(&rand_to_worker(&mut rng)),
            _ => encode_peer(&rand_peer(&mut rng)),
        };
        if bytes.is_empty() {
            continue;
        }
        match rng.below(3) {
            // Bit flip anywhere.
            0 => {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
            // Truncate.
            1 => bytes.truncate(rng.below(bytes.len())),
            // Append garbage (trailing bytes must be rejected, not
            // silently ignored — the wire gives exactly one message
            // per frame).
            _ => bytes.extend((0..1 + rng.below(8)).map(|_| rng.next_u64() as u8)),
        }
        // Any outcome but a panic is acceptable; a decode that
        // succeeds must itself re-encode without panicking.
        match decode_inbound(&bytes) {
            Ok(Inbound::Worker(msg)) => {
                let _ = encode_to_server(&msg);
            }
            Ok(Inbound::Peer(msg)) => {
                let _ = encode_peer(&msg);
            }
            Err(_) => {}
        }
        let _ = decode_to_worker(&bytes);
    }
}

#[test]
fn random_garbage_never_decodes_to_half_parsed_messages() {
    let mut rng = Rng::new(seed().rotate_left(29));
    for _ in 0..ROUNDS {
        let len = rng.below(256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // All three decoders must be total functions of the input.
        let _ = decode_to_server(&bytes);
        let _ = decode_to_worker(&bytes);
        let _ = decode_peer(&bytes);
        let _ = decode_inbound(&bytes);
    }
}

#[test]
fn codec_survives_the_framing_layer() {
    let mut rng = Rng::new(seed().rotate_left(41));
    for round in 0..24 {
        // A realistic wire session: several messages framed back to
        // back into one stream, then read and decoded in order.
        let msgs: Vec<PeerMsg> = (0..6).map(|_| rand_peer(&mut rng)).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            write_frame(&mut stream, &encode_peer(m)).expect("frame fits");
        }
        let mut cursor = Cursor::new(stream);
        for (i, m) in msgs.iter().enumerate() {
            let payload = read_frame(&mut cursor)
                .unwrap_or_else(|e| panic!("round {round} frame {i}: {e}"));
            let back = decode_peer(&payload)
                .unwrap_or_else(|e| panic!("round {round} frame {i}: {e}"));
            assert_eq!(
                encode_peer(&back),
                encode_peer(m),
                "round {round} frame {i} corrupted in transit"
            );
        }
    }
}
