//! Kill-and-restart-the-*server* chaos suite.
//!
//! The fault suites in `tests/faults.rs` and `tests/overlay.rs` only
//! ever kill workers and delegates; here the project server itself is
//! the victim. Every test runs with a `state_dir`, SIGKILLs the server
//! (kill switch: the loop stops dead, no shutdown broadcast, nothing
//! flushed beyond what the WAL fsync policy already forced), restarts
//! it on the same directory and asserts the recovery invariants:
//!
//! * queued work is re-queued, in-flight work is re-orphaned through
//!   the ordinary watchdog, attempt epochs survive so pre-crash results
//!   from surviving workers are still judged by epoch;
//! * the terminal set survives: a command that completed before the
//!   crash is never dispatched again, and duplicate results for it are
//!   dropped as stale;
//! * checkpoints move with the commands they belong to and the shared
//!   filesystem ends empty (the leak regression from the
//!   decline/re-queue audit);
//! * replaying the same WAL twice yields byte-identical state;
//! * a worker evicted at the write-backlog cap is observed by the
//!   server *immediately* (transport-synthesized departure), not after
//!   the heartbeat watchdog finally times out.

use copernicus_core::faults::{ChaosExecutor, ChaosProfile, ExecutionLog};
use copernicus_core::prelude::*;
use copernicus_core::transport::{self, ChannelWorkerTransport};
use copernicus_core::wire::{auth, frame, LinkStats, ListenerConfig};
use copernicus_core::{
    codec,
    messages::{ToServer, ToWorker},
    spawn_worker, wal, ChannelHub, ExecutorRegistry, OverlayConfig, RetryPolicy, Server,
    SleepExecutor, TcpServerTransport, WorkerHandle,
};
use parking_lot::Mutex;
use serde_json::json;
use std::collections::HashMap;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Scaffolding (mirrors tests/faults.rs, plus durability)
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Fresh scratch state directory; the WAL creates it on open.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus_chaos_{}_{}_{}",
        tag,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Default)]
struct Accounting {
    finished: HashMap<u64, u32>,
    dropped: HashMap<u64, (u32, u32)>,
}

impl Accounting {
    fn terminal_events(&self, id: u64) -> u32 {
        self.finished.get(&id).copied().unwrap_or(0)
            + self.dropped.get(&id).map(|&(n, _)| n).unwrap_or(0)
    }
}

/// Spawn-and-gather controller like the one in `tests/faults.rs`, but
/// *durable*: it snapshots its progress counter into the WAL and
/// restores it on recovery, so a restarted server finishes the project
/// on the n-th terminal event counted across incarnations.
struct Gather {
    specs: Vec<CommandSpec>,
    n: usize,
    seen: usize,
    accounting: Arc<Mutex<Accounting>>,
}

impl Gather {
    fn new(specs: Vec<CommandSpec>, accounting: Arc<Mutex<Accounting>>) -> Self {
        let n = specs.len();
        Gather {
            specs,
            n,
            seen: 0,
            accounting,
        }
    }

    fn step(&mut self) -> Vec<Action> {
        self.seen += 1;
        if self.seen == self.n {
            vec![Action::FinishProject {
                result: json!("accounted"),
            }]
        } else {
            vec![]
        }
    }
}

impl Controller for Gather {
    fn name(&self) -> &str {
        "durable-gather"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                vec![Action::Spawn(std::mem::take(&mut self.specs))]
            }
            ControllerEvent::CommandFinished(output) => {
                *self
                    .accounting
                    .lock()
                    .finished
                    .entry(output.command.0)
                    .or_insert(0) += 1;
                self.step()
            }
            ControllerEvent::CommandDropped {
                command, attempts, ..
            } => {
                let mut acc = self.accounting.lock();
                let entry = acc.dropped.entry(command.0).or_insert((0, 0));
                entry.0 += 1;
                entry.1 = attempts;
                drop(acc);
                self.step()
            }
            ControllerEvent::WorkerFailed { .. } => vec![],
        }
    }

    fn snapshot(&self) -> Option<serde_json::Value> {
        Some(json!({ "seen": self.seen as u64 }))
    }

    fn restore(&mut self, snapshot: serde_json::Value) -> bool {
        match snapshot.get("seen").and_then(|v| v.as_u64()) {
            Some(seen) => {
                self.seen = seen as usize;
                true
            }
            None => false,
        }
    }
}

fn specs(command_type: &str, n: usize) -> Vec<CommandSpec> {
    (0..n)
        .map(|i| {
            CommandSpec::new(command_type, Resources::new(1, 1), json!({ "i": i }))
                .with_priority((n - i) as i32)
        })
        .collect()
}

fn scripted_config(max_attempts: u32) -> ServerConfig {
    ServerConfig {
        heartbeat_interval: Duration::from_millis(25),
        watchdog_period: Duration::from_millis(10),
        max_attempts,
        retry_backoff_base: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

/// A durable server incarnation over an in-process channel transport,
/// with the crash-test kill switch exposed.
struct Rig {
    hub: ChannelHub,
    monitor: Monitor,
    shared_fs: SharedFs,
    kill: Arc<AtomicBool>,
    server_thread: std::thread::JoinHandle<ProjectResult>,
}

impl Rig {
    /// SIGKILL stand-in: stop the loop dead and return the counters as
    /// they stood. No shutdown broadcast reaches the workers.
    fn kill(self) -> (ProjectResult, ChannelHub) {
        self.kill.store(true, Ordering::Relaxed);
        let result = self.server_thread.join().unwrap();
        (result, self.hub)
    }
}

fn durable_rig(
    specs: Vec<CommandSpec>,
    accounting: Arc<Mutex<Accounting>>,
    dir: &PathBuf,
    mut config: ServerConfig,
) -> Rig {
    config.state_dir = Some(dir.display().to_string());
    let (hub, server_transport) = transport::channel();
    let shared_fs = SharedFs::new();
    let monitor = Monitor::new();
    let controller = Gather::new(specs, accounting);
    let kill = Arc::new(AtomicBool::new(false));
    let server = Server::new(
        ProjectId(0),
        Box::new(controller),
        config,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(server_transport),
    )
    .with_kill_switch(kill.clone());
    let server_thread = std::thread::spawn(move || server.run());
    Rig {
        hub,
        monitor,
        shared_fs,
        kill,
        server_thread,
    }
}

fn announce(rig: &Rig, worker: WorkerId) -> ChannelWorkerTransport {
    let mut link = rig.hub.attach(worker);
    link.announce(ToServer::Announce {
        worker,
        desc: WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(1, 1_000_000),
            executables: vec![ExecutableSpec::new("fault", Platform::Smp, "1")],
        },
    })
    .unwrap();
    link
}

fn fetch_command(link: &mut ChannelWorkerTransport, worker: WorkerId) -> Command {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        link.send(ToServer::RequestWork { worker }).unwrap();
        match link.recv_timeout(Duration::from_millis(100)) {
            Ok(ToWorker::Workload(mut cmds)) => {
                assert_eq!(cmds.len(), 1, "scripted workers take one command");
                return cmds.pop().unwrap();
            }
            Ok(_) | Err(_) => {
                assert!(Instant::now() < deadline, "no workload within 5s");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn wait_status(
    monitor: &Monitor,
    mut pred: impl FnMut(&ProjectStatus) -> bool,
    what: &str,
    deadline: Duration,
) {
    let t0 = Instant::now();
    loop {
        if pred(&monitor.status()) {
            return;
        }
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(3));
    }
}

fn complete(rig: &Rig, cmd: &Command, worker: WorkerId) {
    let output = CommandOutput::new(cmd, worker, json!({ "by": worker.0 }), 0.01);
    rig.hub.send(ToServer::Completed { output }).unwrap();
}

fn chaos_seed() -> u64 {
    std::env::var("COPERNICUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn assert_exactly_once(accounting: &Arc<Mutex<Accounting>>, n: usize) {
    let acc = accounting.lock();
    let ids: Vec<u64> = acc
        .finished
        .keys()
        .chain(acc.dropped.keys())
        .copied()
        .collect();
    assert_eq!(ids.len(), n, "every command reaches a terminal event");
    for id in ids {
        assert_eq!(
            acc.terminal_events(id),
            1,
            "command {id}: expected exactly one terminal event"
        );
    }
}

// ---------------------------------------------------------------------------
// Scripted crash/restart: queue, epochs and checkpoints survive
// ---------------------------------------------------------------------------

#[test]
fn restart_restores_queue_epochs_and_checkpoints() {
    let dir = state_dir("restart");
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let r = durable_rig(
        specs("fault", 3),
        accounting.clone(),
        &dir,
        scripted_config(5),
    );

    // A takes the head command and deposits a mid-run checkpoint, as a
    // real executor would; then the server dies with X in flight and
    // the other two commands still queued.
    let a = WorkerId(101);
    let mut a_link = announce(&r, a);
    let cmd_x = fetch_command(&mut a_link, a);
    assert_eq!(cmd_x.attempts, 1, "first dispatch is epoch 1");
    r.shared_fs
        .store_checkpoint(cmd_x.id, json!({ "frame": 17 }));
    let (dead, old_hub) = r.kill();
    assert_eq!(dead.commands_completed, 0);
    assert!(dead.result.is_null(), "a killed server reports no result");
    drop(old_hub);
    drop(a_link);

    // Restart on the same directory. X is re-orphaned through the
    // watchdog (its placeholder worker never heartbeats again) and must
    // come back at epoch 2 with the checkpoint re-attached; Y and Z
    // come back queued. A brand-new worker drains all three.
    let r2 = durable_rig(
        specs("fault", 3),
        accounting.clone(),
        &dir,
        scripted_config(5),
    );
    let b = WorkerId(202);
    let mut b_link = announce(&r2, b);
    let mut saw_x = false;
    for _ in 0..3 {
        let cmd = fetch_command(&mut b_link, b);
        if cmd.id == cmd_x.id {
            saw_x = true;
            assert_eq!(cmd.attempts, 2, "epoch must survive the crash");
            assert_eq!(
                cmd.checkpoint,
                Some(json!({ "frame": 17 })),
                "checkpoint must be re-attached after recovery"
            );
        }
        complete(&r2, &cmd, b);
    }
    assert!(saw_x, "the in-flight command must be re-dispatched");

    let shared_fs = r2.shared_fs.clone();
    let result = r2.server_thread.join().unwrap();
    assert_eq!(result.result, json!("accounted"));
    assert_eq!(result.commands_completed, 3);
    assert_eq!(result.commands_requeued, 1, "exactly one re-orphan for X");
    assert_eq!(result.workers_lost, 1, "only A's ghost is ever lost");
    assert_eq!(result.commands_dropped, 0);
    assert_exactly_once(&accounting, 3);
    assert_eq!(shared_fs.n_checkpoints(), 0, "checkpoints must be retired");
}

// ---------------------------------------------------------------------------
// Terminal set survives: completed work is never redone, stale results
// from surviving workers are dropped
// ---------------------------------------------------------------------------

#[test]
fn terminal_set_survives_restart_and_dedupes_stale_results() {
    let dir = state_dir("dedupe");
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let r = durable_rig(
        specs("fault", 2),
        accounting.clone(),
        &dir,
        scripted_config(5),
    );

    // A completes X, then the server dies.
    let a = WorkerId(11);
    let mut a_link = announce(&r, a);
    let cmd_x = fetch_command(&mut a_link, a);
    complete(&r, &cmd_x, a);
    wait_status(
        &r.monitor,
        |s| s.commands_completed == 1,
        "X accepted",
        Duration::from_secs(5),
    );
    let (dead, old_hub) = r.kill();
    assert_eq!(dead.commands_completed, 1);
    drop(old_hub);
    drop(a_link);

    // A survived the server. It reconnects and re-delivers X's result
    // — the terminal set replayed from the WAL must drop it as stale —
    // then drains Y, which is the only live command left.
    let r2 = durable_rig(
        specs("fault", 2),
        accounting.clone(),
        &dir,
        scripted_config(5),
    );
    let mut a2 = announce(&r2, a);
    complete(&r2, &cmd_x, a);
    let cmd_y = fetch_command(&mut a2, a);
    assert_ne!(cmd_y.id, cmd_x.id, "X must never be dispatched again");
    complete(&r2, &cmd_y, a);

    let shared_fs = r2.shared_fs.clone();
    let result = r2.server_thread.join().unwrap();
    assert_eq!(result.result, json!("accounted"));
    assert_eq!(
        result.commands_completed, 2,
        "one restored completion + one fresh"
    );
    assert_eq!(
        result.stale_results_dropped, 1,
        "the re-delivered pre-crash result must be deduped"
    );
    assert_exactly_once(&accounting, 2);
    assert_eq!(shared_fs.n_checkpoints(), 0);
}

// ---------------------------------------------------------------------------
// Surviving-worker amnesia: a worker that outlives the server but lost
// its result with it must not strand its command
// ---------------------------------------------------------------------------

/// The wire layer replays a worker's pinned announce on reconnect, so a
/// worker that survives the server crash redials the restarted server
/// and announces while the recovered ledger still attributes its old
/// command to it. If the result died with the old server, heartbeats
/// from the (idle) worker must not keep the placeholder alive forever:
/// the re-announce itself re-queues the recovered attribution. The
/// heartbeat budget here is 10 minutes, so only that reconciliation —
/// not the watchdog — can explain the command coming back.
#[test]
fn surviving_worker_reannounce_unsticks_recovered_commands() {
    let dir = state_dir("amnesia");
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let r = durable_rig(
        specs("fault", 2),
        accounting.clone(),
        &dir,
        scripted_config(5),
    );

    // A takes X; the server dies; A's execution result is lost with it.
    let a = WorkerId(77);
    let mut a_link = announce(&r, a);
    let cmd_x = fetch_command(&mut a_link, a);
    let (_, old_hub) = r.kill();
    drop(old_hub);
    drop(a_link);

    // Restart with an enormous heartbeat budget: the watchdog cannot
    // reap the placeholder inside the test window.
    let slow_watchdog = ServerConfig {
        heartbeat_interval: Duration::from_secs(600),
        watchdog_period: Duration::from_millis(10),
        max_attempts: 5,
        retry_backoff_base: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let r2 = durable_rig(specs("fault", 2), accounting.clone(), &dir, slow_watchdog);

    // The surviving worker redials idle — its announce must re-queue X.
    let mut a2 = announce(&r2, a);
    let mut saw_x = false;
    for _ in 0..2 {
        let cmd = fetch_command(&mut a2, a);
        if cmd.id == cmd_x.id {
            saw_x = true;
            assert_eq!(cmd.attempts, 2, "the re-queued copy keeps its epoch");
        }
        complete(&r2, &cmd, a);
    }
    assert!(saw_x, "X must be re-dispatched after the re-announce");

    let shared_fs = r2.shared_fs.clone();
    let result = r2.server_thread.join().unwrap();
    assert_eq!(result.result, json!("accounted"));
    assert_eq!(result.commands_completed, 2);
    assert_eq!(
        result.commands_requeued, 1,
        "X re-queued by the re-announce"
    );
    assert_eq!(
        result.workers_lost, 0,
        "the worker was never lost: the announce, not the watchdog, reconciled"
    );
    assert_exactly_once(&accounting, 2);
    assert_eq!(shared_fs.n_checkpoints(), 0);
}

// ---------------------------------------------------------------------------
// Seeded chaos with repeated server kills (pool of real workers)
// ---------------------------------------------------------------------------

#[test]
fn chaos_survives_repeated_server_kills_with_exactly_once_ledger() {
    const N_COMMANDS: usize = 16;
    const KILLS: usize = 2;
    let seed = chaos_seed();
    let dir = state_dir("chaos");
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let log = ExecutionLog::new();
    let registry = ExecutorRegistry::new().with(Arc::new(ChaosExecutor::new(
        ChaosProfile {
            seed,
            error_pct: 20,
            crash_pct: 10,
        },
        log,
    )));
    let config = || ServerConfig {
        heartbeat_interval: Duration::from_millis(20),
        watchdog_period: Duration::from_millis(8),
        max_attempts: 8,
        retry_backoff_base: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..ServerConfig::default()
    };

    let mut next_worker = 0u64;
    let mut result: Option<ProjectResult> = None;
    let mut final_fs: Option<SharedFs> = None;

    for incarnation in 0..=KILLS {
        let r = durable_rig(
            specs(ChaosExecutor::COMMAND_TYPE, N_COMMANDS),
            accounting.clone(),
            &dir,
            config(),
        );
        let worker_config = WorkerConfig {
            heartbeat_interval: Duration::from_millis(20),
            poll_interval: Duration::from_millis(2),
            shared_fs: Some(r.shared_fs.clone()),
            ..WorkerConfig::default()
        };
        // Real clusters never reuse a dead node's identity: fresh ids
        // across respawns *and* across server incarnations.
        let mut pool: Vec<WorkerHandle> = Vec::new();
        let mut spawn_one = |pool: &mut Vec<WorkerHandle>, next: &mut u64| {
            let id = WorkerId(*next);
            pool.push(spawn_worker(
                id,
                worker_config.clone(),
                registry.clone(),
                Box::new(r.hub.attach(id)),
            ));
            *next += 1;
        };
        for _ in 0..3 {
            spawn_one(&mut pool, &mut next_worker);
        }

        // Earlier incarnations run until some progress lands, then get
        // killed; the last one is supervised to completion. Chaos may
        // finish the project before the kill quota is spent — fine, we
        // just take the result early.
        let progress_target = ((incarnation + 1) * 3) as u64;
        let t0 = Instant::now();
        loop {
            let status = r.monitor.status();
            if status.finished {
                break;
            }
            if incarnation < KILLS
                && (status.commands_completed + status.commands_dropped >= progress_target
                    || t0.elapsed() > Duration::from_secs(5))
            {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "chaos run stuck (incarnation {incarnation})"
            );
            let (dead, live): (Vec<_>, Vec<_>) = pool.drain(..).partition(|h| h.is_finished());
            pool = live;
            for h in dead {
                h.join();
                spawn_one(&mut pool, &mut next_worker);
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        let finished = r.monitor.status().finished;
        let shared_fs = r.shared_fs.clone();
        let (res, hub) = if finished {
            let res = r.server_thread.join().unwrap();
            (res, r.hub)
        } else {
            r.kill()
        };
        drop(hub); // workers lose their transport and exit
        for h in pool {
            h.join();
        }
        if finished {
            result = Some(res);
            final_fs = Some(shared_fs);
            break;
        }
        if incarnation == KILLS {
            // Supervised-to-completion incarnation can only leave the
            // loop via `finished`; the 60 s guard above fires first.
            unreachable!("final incarnation must finish");
        }
    }

    // An extra incarnation after completion must replay straight to the
    // finished state and return the same verdict without any workers.
    let (result, final_fs) = (result.unwrap(), final_fs.unwrap());
    let replayed = durable_rig(
        specs(ChaosExecutor::COMMAND_TYPE, N_COMMANDS),
        accounting.clone(),
        &dir,
        config(),
    );
    let replay_result = replayed.server_thread.join().unwrap();
    drop(replayed.hub);
    assert_eq!(replay_result.result, result.result);
    assert_eq!(
        replay_result.commands_completed, result.commands_completed,
        "a post-completion restart must not re-run anything"
    );

    assert_eq!(
        result.commands_completed + result.commands_dropped,
        N_COMMANDS as u64,
        "completed + dropped must equal spawned (seed {seed})"
    );
    assert_exactly_once(&accounting, N_COMMANDS);
    assert_eq!(
        final_fs.n_checkpoints(),
        0,
        "chaos run leaked checkpoints: {:?}",
        final_fs.checkpointed_commands()
    );
}

// ---------------------------------------------------------------------------
// WAL replay determinism (the CI job replays twice and diffs)
// ---------------------------------------------------------------------------

#[test]
fn wal_replay_is_deterministic() {
    let dir = state_dir("determinism");
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let r = durable_rig(
        specs("fault", 2),
        accounting.clone(),
        &dir,
        scripted_config(5),
    );

    // Cover a representative record mix: dispatch, checkpoint store,
    // worker loss + requeue, completion, project finish.
    let a = WorkerId(1);
    let mut a_link = announce(&r, a);
    let cmd_x = fetch_command(&mut a_link, a);
    r.shared_fs.store_checkpoint(cmd_x.id, json!({ "t": 3 }));
    drop(a_link); // A falls silent; the watchdog re-queues X
    wait_status(
        &r.monitor,
        |s| s.commands_requeued == 1,
        "X re-queued",
        Duration::from_secs(5),
    );
    let b = WorkerId(2);
    let mut b_link = announce(&r, b);
    for _ in 0..2 {
        let cmd = fetch_command(&mut b_link, b);
        complete(&r, &cmd, b);
    }
    let result = r.server_thread.join().unwrap();
    drop(r.hub);
    assert_eq!(result.commands_completed, 2);

    let first = wal::replay_dir(&dir).expect("replay must succeed").dump();
    let second = wal::replay_dir(&dir).expect("replay must succeed").dump();
    assert!(!first.is_empty(), "the run must leave a non-trivial ledger");
    assert_eq!(
        first, second,
        "two replays of the same log must agree byte for byte"
    );
}

// ---------------------------------------------------------------------------
// Write-backlog eviction is observed immediately (not via the watchdog)
// ---------------------------------------------------------------------------

/// A worker that stops draining its socket while a 12 MiB workload is
/// on the way breaches the listener's (tiny, for this test) write
/// backlog cap. The event loop evicts it; the transport synthesizes a
/// departure; the server must re-queue the in-flight command *promptly*
/// — the heartbeat budget here is 10 minutes, so only the synthesized
/// departure can explain a re-queue within the test deadline.
#[test]
fn write_backlog_eviction_requeues_in_flight_promptly() {
    let key = AuthKey::from_passphrase("flood");
    let listener_config = ListenerConfig {
        write_backlog_cap: 64 * 1024,
        ..ListenerConfig::default()
    };
    let transport =
        TcpServerTransport::bind("127.0.0.1:0", key, listener_config, LinkStats::detached())
            .expect("bind must succeed");
    let addr = transport.local_addr();

    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let blob = "x".repeat(12 * 1024 * 1024);
    let flood_specs = vec![CommandSpec::new(
        "flood",
        Resources::new(1, 1),
        json!({ "blob": blob }),
    )];
    let controller = Gather::new(flood_specs, accounting.clone());
    let config = ServerConfig {
        // The watchdog must be irrelevant: a 10-minute heartbeat budget
        // means any worker loss inside the test window came from the
        // transport's synthesized departure.
        heartbeat_interval: Duration::from_secs(600),
        watchdog_period: Duration::from_millis(10),
        max_attempts: 5,
        retry_backoff_base: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let shared_fs = SharedFs::new();
    let monitor = Monitor::new();
    let kill = Arc::new(AtomicBool::new(false));
    let server = Server::new(
        ProjectId(0),
        Box::new(controller),
        config,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(transport),
    )
    .with_kill_switch(kill.clone());
    let server_thread = std::thread::spawn(move || server.run());

    // Hand-rolled worker: authenticate, announce, ask for work — then
    // never read again. The workload frame has nowhere to go.
    let mut stream = TcpStream::connect(addr).expect("connect must succeed");
    auth::client_handshake(&mut stream, &key).expect("handshake must succeed");
    let w = WorkerId(1);
    let send = |stream: &mut TcpStream, msg: &ToServer| {
        // Post-eviction writes may hit a closed socket; that's fine.
        let _ = frame::write_frame(stream, &codec::encode_to_server(msg));
    };
    send(
        &mut stream,
        &ToServer::Announce {
            worker: w,
            desc: WorkerDescription {
                platform: Platform::Smp,
                resources: Resources::new(1, 1_000_000),
                executables: vec![ExecutableSpec::new("flood", Platform::Smp, "1")],
            },
        },
    );
    for _ in 0..3 {
        send(&mut stream, &ToServer::RequestWork { worker: w });
        std::thread::sleep(Duration::from_millis(30));
    }

    wait_status(
        &monitor,
        |s| s.workers_lost == 1 && s.commands_requeued == 1,
        "flooded worker evicted and its command re-queued",
        Duration::from_secs(10),
    );

    kill.store(true, Ordering::Relaxed);
    let result = server_thread.join().unwrap();
    assert_eq!(result.workers_lost, 1);
    assert_eq!(result.commands_requeued, 1);
    assert_eq!(result.commands_completed, 0);
    assert_eq!(shared_fs.n_checkpoints(), 0);
}

// ---------------------------------------------------------------------------
// End to end over TCP: SIGKILL mid-run with live workers and a peered
// delegate, restart on the same state dir, exactly-once ledger
// ---------------------------------------------------------------------------

/// The delegate's own project: nothing to do, which frees its router to
/// offer every local worker to the peered owner.
struct Idle;

impl Controller for Idle {
    fn name(&self) -> &str {
        "chaos-idle"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => vec![Action::FinishProject {
                result: json!("idle"),
            }],
            _ => vec![],
        }
    }
}

fn sleep_specs(n: usize, millis: u64) -> Vec<CommandSpec> {
    (0..n)
        .map(|i| {
            CommandSpec::new("sleep", Resources::new(1, 1), json!({ "millis": millis }))
                .with_priority((n - i) as i32)
        })
        .collect()
}

fn tcp_worker_config() -> WorkerConfig {
    WorkerConfig {
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(2),
        ..WorkerConfig::default()
    }
}

fn owner_runtime(key: AuthKey, bind: &str, dir: &str) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 0,
        worker: tcp_worker_config(),
        server: ServerConfig::builder()
            .heartbeat_interval(Duration::from_millis(50))
            .watchdog_period(Duration::from_millis(10))
            .retry(RetryPolicy {
                max_attempts: 6,
                backoff_base: Duration::from_millis(5),
                backoff_max: Duration::from_millis(40),
            })
            .bind(bind, key)
            .name("owner")
            .state_dir(dir)
            .build()
            .expect("owner config must validate"),
        telemetry: None,
        ..RuntimeConfig::default()
    }
}

fn delegate_runtime(key: AuthKey, owner_addr: &str) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 0,
        worker: tcp_worker_config(),
        server: ServerConfig::builder()
            .heartbeat_interval(Duration::from_millis(50))
            .watchdog_period(Duration::from_millis(10))
            .bind("127.0.0.1:0", key)
            .name("delegate")
            .peer(owner_addr)
            .build()
            .expect("delegate config must validate"),
        overlay: OverlayConfig {
            offer_patience: Duration::from_millis(200),
            ..OverlayConfig::default()
        },
        telemetry: None,
        ..RuntimeConfig::default()
    }
}

#[test]
fn sigkill_mid_run_with_workers_and_peer_completes_after_restart() {
    const N_COMMANDS: usize = 12;
    let key = AuthKey::from_passphrase("durable-e2e");
    let dir = state_dir("e2e").display().to_string();
    let accounting = Arc::new(Mutex::new(Accounting::default()));
    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));

    // Owner with a durable backlog; two direct workers plus a peered
    // delegate contributing two more.
    let owner = serve_project(
        Box::new(Gather::new(sleep_specs(N_COMMANDS, 30), accounting.clone())),
        owner_runtime(key, "127.0.0.1:0", &dir),
    )
    .expect("owner must bind");
    let owner_addr = owner.local_addr.to_string();
    let delegate = serve_project(Box::new(Idle), delegate_runtime(key, &owner_addr))
        .expect("delegate must bind");
    let delegate_addr = delegate.local_addr.to_string();
    let delegate_workers = connect_workers(
        &delegate_addr,
        key,
        2,
        tcp_worker_config(),
        registry.clone(),
    )
    .expect("delegate workers must connect");
    let direct_workers =
        connect_workers(&owner_addr, key, 2, tcp_worker_config(), registry.clone())
            .expect("direct workers must connect");

    // Pull the plug mid-run: some completions are in, some commands are
    // in flight across both the direct and the delegated path.
    let t0 = Instant::now();
    loop {
        let s = owner.monitor.status();
        if s.commands_completed >= 3 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(30) && !s.finished,
            "expected a mid-run kill window (completed {})",
            s.commands_completed
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    owner.kill();
    let dead = owner.join();
    assert!(dead.result.is_null(), "a killed server reports no result");
    assert!(dead.commands_completed >= 3);

    // Restart on the *same* address and state dir. The listener socket
    // is released when the killed server's thread is joined; a short
    // retry absorbs any lingering kernel-side release latency.
    let mut restarted = None;
    for _ in 0..50 {
        match serve_project(
            Box::new(Gather::new(sleep_specs(N_COMMANDS, 30), accounting.clone())),
            owner_runtime(key, &owner_addr, &dir),
        ) {
            Ok(s) => {
                restarted = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    let owner2 = restarted.expect("owner must rebind its address");

    // The pre-crash pools may or may not find their way back through
    // wire-level reconnect; a fresh pair of direct workers guarantees
    // progress either way.
    let fresh_workers = connect_workers(&owner_addr, key, 2, tcp_worker_config(), registry)
        .expect("fresh workers must connect");

    let shared_fs = owner2.shared_fs.clone();
    let result = owner2.join();
    assert_eq!(result.result, json!("accounted"));
    assert_eq!(
        result.commands_completed, N_COMMANDS as u64,
        "restored + fresh completions must cover the whole backlog"
    );
    assert_eq!(result.commands_dropped, 0);
    assert_exactly_once(&accounting, N_COMMANDS);
    assert_eq!(shared_fs.n_checkpoints(), 0);

    for w in fresh_workers {
        w.join();
    }
    // The killed server never broadcast a shutdown, so the old pools
    // may idle until their links give up; detach rather than join.
    drop(direct_workers);
    drop(delegate_workers);
    delegate.stop_router();
    let _ = delegate.join();
}
