//! Loopback-TCP integration suite: a real project server listening on
//! an ephemeral port, real worker threads dialing it over authenticated
//! links. Exercises the paths that in-process channels cannot — key
//! rejection, garbage frames from an authenticated peer, a connection
//! dying with a command in flight — and re-asserts the lifecycle
//! invariants (exactly-once accounting, retry budgets) over the wire.

use copernicus_core::faults::{ExecutionLog, FlakyExecutor};
use copernicus_core::prelude::*;
use copernicus_core::wire::{ConnectError, LinkStats, ReconnectPolicy, WireClient};
use copernicus_core::{codec, connect_workers, serve_project, RetryPolicy};
use parking_lot::Mutex;
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Shared scaffolding
// ---------------------------------------------------------------------

/// Terminal-event ledger: command id → number of terminal events seen.
type Ledger = Arc<Mutex<HashMap<u64, u32>>>;

/// Spawns `specs`, records every terminal event, finishes when all
/// commands are accounted for.
struct Gather {
    specs: Vec<CommandSpec>,
    n: usize,
    seen: usize,
    ledger: Ledger,
}

impl Gather {
    fn new(specs: Vec<CommandSpec>, ledger: Ledger) -> Self {
        let n = specs.len();
        Gather {
            specs,
            n,
            seen: 0,
            ledger,
        }
    }

    fn step(&mut self) -> Vec<Action> {
        self.seen += 1;
        if self.seen == self.n {
            vec![Action::FinishProject {
                result: json!("done"),
            }]
        } else {
            vec![]
        }
    }
}

impl Controller for Gather {
    fn name(&self) -> &str {
        "tcp-gather"
    }

    fn on_event(&mut self, _ctx: ControllerCtx<'_>, event: ControllerEvent<'_>) -> Vec<Action> {
        match event {
            ControllerEvent::ProjectStarted => {
                vec![Action::Spawn(std::mem::take(&mut self.specs))]
            }
            ControllerEvent::CommandFinished(output) => {
                *self.ledger.lock().entry(output.command.0).or_insert(0) += 1;
                self.step()
            }
            ControllerEvent::CommandDropped { command, .. } => {
                *self.ledger.lock().entry(command.0).or_insert(0) += 1;
                self.step()
            }
            ControllerEvent::WorkerFailed { .. } => vec![],
        }
    }
}

fn specs(command_type: &str, n: usize, millis: u64) -> Vec<CommandSpec> {
    (0..n)
        .map(|i| {
            CommandSpec::new(
                command_type,
                Resources::new(1, 1),
                json!({ "millis": millis }),
            )
            .with_priority((n - i) as i32)
        })
        .collect()
}

fn tcp_config(key: AuthKey) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 0, // serve_project spawns no workers; they dial in
        worker: worker_config(),
        server: ServerConfig::builder()
            .heartbeat_interval(Duration::from_millis(50))
            .watchdog_period(Duration::from_millis(10))
            .retry(RetryPolicy {
                max_attempts: 5,
                backoff_base: Duration::from_millis(5),
                backoff_max: Duration::from_millis(40),
            })
            .bind("127.0.0.1:0", key)
            .build()
            .expect("test config must validate"),
        telemetry: None,
        ..RuntimeConfig::default()
    }
}

fn worker_config() -> WorkerConfig {
    WorkerConfig {
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(2),
        ..WorkerConfig::default()
    }
}

fn assert_exactly_once(ledger: &Ledger, n: usize) {
    let ledger = ledger.lock();
    assert_eq!(ledger.len(), n, "every command reaches a terminal event");
    for (id, &events) in ledger.iter() {
        assert_eq!(
            events, 1,
            "command {id}: expected exactly one terminal event"
        );
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn tcp_pool_runs_a_project_to_completion() {
    let key = AuthKey::from_passphrase("tcp-pool");
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));
    // Long enough that the queue cannot drain (and the project finish,
    // taking the listener with it) before the last worker has dialed in.
    let controller = Gather::new(specs("sleep", 8, 50), ledger.clone());

    let serving = serve_project(Box::new(controller), tcp_config(key)).unwrap();
    let addr = serving.local_addr.to_string();
    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let workers = connect_workers(&addr, key, 3, worker_config(), registry).unwrap();

    let result = serving.join();
    for w in workers {
        w.join();
    }

    assert_eq!(result.commands_completed, 8);
    assert_eq!(result.commands_dropped, 0);
    assert_eq!(result.workers_lost, 0);
    assert_exactly_once(&ledger, 8);
}

#[test]
fn wrong_key_is_rejected_and_right_key_still_works() {
    let key = AuthKey::from_passphrase("the real key");
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));
    let controller = Gather::new(specs("sleep", 4, 50), ledger.clone());

    let serving = serve_project(Box::new(controller), tcp_config(key)).unwrap();
    let addr = serving.local_addr.to_string();
    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));

    // An impostor with the wrong key is turned away at the handshake —
    // fatal immediately, no reconnect storm.
    let impostor = AuthKey::from_passphrase("the wrong key");
    let Err(rejection) = connect_workers(&addr, impostor, 1, worker_config(), registry.clone())
    else {
        panic!("wrong key must fail authentication");
    };
    assert!(
        matches!(rejection, ConnectError::Auth(_)),
        "rejection must be an auth failure, got {rejection:?}"
    );

    // The rejection left the listener healthy: real workers still work.
    let workers = connect_workers(&addr, key, 2, worker_config(), registry).unwrap();
    let result = serving.join();
    for w in workers {
        w.join();
    }
    assert_eq!(result.commands_completed, 4);
    assert_exactly_once(&ledger, 4);
}

#[test]
fn garbage_frames_get_the_connection_kicked_but_the_project_survives() {
    let key = AuthKey::from_passphrase("garbage test");
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));
    let controller = Gather::new(specs("sleep", 4, 50), ledger.clone());

    let serving = serve_project(Box::new(controller), tcp_config(key)).unwrap();
    let addr = serving.local_addr.to_string();

    // An authenticated peer that speaks garbage: every undecodable frame
    // costs it the connection, and none of it reaches the server loop.
    let vandal = WireClient::connect(
        &addr,
        key,
        ReconnectPolicy {
            max_attempts: 1,
            ..ReconnectPolicy::default()
        },
        LinkStats::detached(),
    )
    .unwrap();
    let _ = vandal.send(b"this is not a ToServer message");
    let _ = vandal.send(&[0xFF; 64]);

    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let workers = connect_workers(&addr, key, 2, worker_config(), registry).unwrap();
    let result = serving.join();
    vandal.close();
    for w in workers {
        w.join();
    }

    assert_eq!(result.commands_completed, 4);
    assert_eq!(result.commands_dropped, 0);
    assert_exactly_once(&ledger, 4);
}

#[test]
fn connection_killed_with_a_command_in_flight_is_absorbed() {
    let key = AuthKey::from_passphrase("kill test");
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));
    // Long enough that the saboteur can grab one before the pool drains
    // the queue.
    let controller = Gather::new(specs("sleep", 4, 20), ledger.clone());

    let serving = serve_project(Box::new(controller), tcp_config(key)).unwrap();
    let addr = serving.local_addr.to_string();

    // A hand-played worker dials in, announces, takes the top-priority
    // command — then its connection dies without a result.
    let saboteur = WireClient::connect(
        &addr,
        key,
        ReconnectPolicy::default(),
        LinkStats::detached(),
    )
    .unwrap();
    let sab_id = WorkerId(saboteur.session_id());
    saboteur
        .send_session(&codec::encode_to_server(
            &copernicus_core::messages::ToServer::Announce {
                worker: sab_id,
                desc: WorkerDescription {
                    platform: Platform::Smp,
                    resources: Resources::new(1, 1_000_000),
                    executables: vec![ExecutableSpec::new("sleep", Platform::Smp, "1")],
                },
            },
        ))
        .unwrap();
    let stolen = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            saboteur
                .send(&codec::encode_to_server(
                    &copernicus_core::messages::ToServer::RequestWork { worker: sab_id },
                ))
                .unwrap();
            if let Ok(payload) = saboteur.recv_timeout(Duration::from_millis(100)) {
                if let Ok(copernicus_core::messages::ToWorker::Workload(mut cmds)) =
                    codec::decode_to_worker(&payload)
                {
                    break cmds.pop().expect("workload carries a command");
                }
            }
            assert!(
                Instant::now() < deadline,
                "saboteur got no workload within 5s"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    };
    // The kill: socket torn down mid-command, no result, no heartbeat.
    saboteur.close();

    // A healthy pool arrives and must finish everything, including the
    // stolen command once the watchdog orphans it.
    let registry = ExecutorRegistry::new().with(Arc::new(SleepExecutor));
    let workers = connect_workers(&addr, key, 2, worker_config(), registry).unwrap();
    let result = serving.join();
    for w in workers {
        w.join();
    }

    assert_eq!(
        result.commands_completed, 4,
        "stolen command must be re-run"
    );
    assert_eq!(result.commands_dropped, 0);
    assert!(
        result.workers_lost >= 1,
        "the saboteur must be declared lost"
    );
    assert!(
        result.commands_requeued >= 1,
        "the stolen command must re-queue"
    );
    assert_eq!(
        ledger.lock().get(&stolen.id.0),
        Some(&1),
        "stolen command exactly once"
    );
    assert_exactly_once(&ledger, 4);
}

#[test]
fn flaky_commands_retry_over_tcp_with_exact_accounting() {
    let key = AuthKey::from_passphrase("flaky tcp");
    let log = ExecutionLog::new();
    let ledger: Ledger = Arc::new(Mutex::new(HashMap::new()));
    let controller = Gather::new(
        (0..4)
            .map(|i| {
                CommandSpec::new(
                    FlakyExecutor::COMMAND_TYPE,
                    Resources::new(1, 1),
                    json!({ "i": i }),
                )
            })
            .collect(),
        ledger.clone(),
    );

    // Stretch the retry embargo so the project outlives the connect
    // phase even though flaky commands themselves run instantly.
    let mut config = tcp_config(key);
    config.server.retry_backoff_base = Duration::from_millis(60);
    config.server.retry_backoff_max = Duration::from_millis(120);
    let serving = serve_project(Box::new(controller), config).unwrap();
    let addr = serving.local_addr.to_string();
    let registry = ExecutorRegistry::new().with(Arc::new(FlakyExecutor::new(1, log.clone())));
    let workers = connect_workers(&addr, key, 2, worker_config(), registry).unwrap();

    let result = serving.join();
    for w in workers {
        w.join();
    }

    assert_eq!(
        result.commands_completed, 4,
        "every flaky command must recover"
    );
    assert_eq!(result.commands_dropped, 0);
    assert_eq!(
        result.commands_requeued, 4,
        "one injected failure per command"
    );
    assert_exactly_once(&ledger, 4);
    for id in ledger.lock().keys() {
        assert_eq!(
            log.executions(CommandId(*id)),
            2,
            "command {id}: one failure + one clean run"
        );
    }
}
