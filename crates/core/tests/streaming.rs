//! Streaming-mode fault suite: the continuous adaptive loop under the
//! same abuse the generational path gets in `tests/faults.rs` and
//! `tests/server_chaos.rs`.
//!
//! The streaming controller has no generation barrier to hide behind:
//! every segment completion immediately mutates the incremental
//! estimator and decides a lineage's fate, and a single in-flight
//! background recluster may be outstanding at any time. The hazards
//! these tests pin down:
//!
//! * a *permanently failing* lineage (every attempt errors until the
//!   retry budget drops the command) must not wedge the stream — the
//!   slot stays in rotation, deciding from the frames that did arrive,
//!   and the project drains to a parseable report;
//! * a worker that dies mid-segment is re-orphaned through the watchdog
//!   and the chunk resumes elsewhere, with no duplicate observation of
//!   the lost chunk (exactly-once delivery into the estimator);
//! * a dropped `msm-build` must clear the single-flight rebuild ticket,
//!   or `maybe_finish` waits forever on a result that can never come;
//! * the whole continuously-mutated decision state — lineages, stream
//!   counts, rebuild ticket, budget counters — survives a server
//!   SIGKILL via the write-ahead log, and a restarted server finishes
//!   the project; a post-completion restart replays straight to the
//!   same verdict without re-running anything.

use copernicus_core::messages::{ToServer, ToWorker};
use copernicus_core::prelude::*;
use copernicus_core::transport::{self, ChannelWorkerTransport};
use copernicus_core::{spawn_worker, ExecContext, ExecError, Server, WorkerHandle};
use mdsim::VillinModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Scaffolding
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Fresh scratch state directory; the WAL creates it on open.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus_streaming_{}_{}_{}",
        tag,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A laptop-instant streaming project: 4 live lineages, a budget of 12
/// segments, 2 chunks per segment so mid-segment faults are reachable.
fn streaming_config() -> MsmProjectConfig {
    MsmProjectConfig {
        mode: AdaptiveMode::Streaming,
        chunks_per_segment: 2,
        n_starts: 2,
        sims_per_start: 2,
        segment_ns: 5.0,
        record_interval: 40,
        temperature: 0.55,
        n_clusters: 10,
        lag_frames: 1,
        respawn_fraction: 0.5,
        generations: 3,
        seed: 3,
        ..MsmProjectConfig::default()
    }
}

/// Wraps a real executor and lets a policy veto individual executions
/// with an injected [`ExecError`]; everything else is delegated.
struct Saboteur {
    inner: Arc<dyn CommandExecutor>,
    policy: Arc<dyn Fn(&Command) -> Option<ExecError> + Send + Sync>,
}

impl CommandExecutor for Saboteur {
    fn executables(&self) -> Vec<ExecutableSpec> {
        self.inner.executables()
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        if let Some(err) = (self.policy)(ctx.command) {
            return Err(err);
        }
        self.inner.execute(ctx)
    }
}

fn lineage_of(cmd: &Command) -> Option<u64> {
    cmd.payload
        .get("tag")
        .and_then(|t| t.get("lineage"))
        .and_then(|l| l.as_u64())
}

fn fault_runtime(max_attempts: u32, backoff: Duration) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 4,
        worker: WorkerConfig {
            heartbeat_interval: Duration::from_millis(30),
            ..WorkerConfig::default()
        },
        server: ServerConfig {
            heartbeat_interval: Duration::from_millis(30),
            watchdog_period: Duration::from_millis(15),
            max_attempts,
            retry_backoff_base: backoff,
            retry_backoff_max: 4 * backoff,
            ..ServerConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

// ---------------------------------------------------------------------------
// Permanent lineage failure: the stream drains around the cursed slot
// ---------------------------------------------------------------------------

#[test]
fn permanently_failing_lineage_does_not_wedge_the_stream() {
    let model = Arc::new(VillinModel::hp35());
    let failures = Arc::new(AtomicUsize::new(0));
    let counted = failures.clone();
    // Lineage 0 never completes a single chunk: every dispatch errors
    // until the retry budget gives up and drops the command. The drop
    // handler must keep the slot in rotation (deciding from whatever
    // frames arrived), so the rest of the ensemble spends the budget.
    let mdrun = Saboteur {
        inner: Arc::new(MdRunExecutor::new(model)),
        policy: Arc::new(move |cmd: &Command| {
            if lineage_of(cmd) == Some(0) {
                counted.fetch_add(1, Ordering::Relaxed);
                Some(ExecError::Failed("injected: lineage 0 is cursed".into()))
            } else {
                None
            }
        }),
    };
    let registry = ExecutorRegistry::new()
        .with(Arc::new(mdrun))
        .with(Arc::new(MsmBuildExecutor));

    // A generous backoff keeps the cursed lineage's fail/drop/extend
    // cycle slower than real segments, so the healthy lineages make
    // progress between drops.
    let result = run_project(
        Box::new(MsmController::new(streaming_config())),
        registry,
        fault_runtime(2, Duration::from_millis(25)),
    );

    assert!(
        result.commands_dropped >= 1,
        "lineage 0 must exhaust its retry budget at least once"
    );
    assert!(
        failures.load(Ordering::Relaxed) >= 2,
        "each drop takes max_attempts = 2 failed executions"
    );
    assert_eq!(result.workers_lost, 0, "errors are reported, not crashes");
    let report = MsmProjectReport::from_value(&result.result)
        .expect("a stream with a dead lineage must still produce a report");
    assert!(!report.generations.is_empty());
    assert!(report.min_rmsd_to_native.is_finite());
}

// ---------------------------------------------------------------------------
// Worker crash mid-segment: watchdog re-orphans, the chunk resumes
// ---------------------------------------------------------------------------

#[test]
fn worker_crash_mid_stream_requeues_and_completes() {
    let model = Arc::new(VillinModel::hp35());
    let crashes = Arc::new(AtomicUsize::new(0));
    let budget = crashes.clone();
    // The first two mdrun executions take their workers down with them
    // (silence, not an error report): the heartbeat watchdog must
    // re-queue both chunks and the surviving workers finish the stream.
    let mdrun = Saboteur {
        inner: Arc::new(MdRunExecutor::new(model)),
        policy: Arc::new(move |_cmd: &Command| {
            if budget.fetch_add(1, Ordering::Relaxed) < 2 {
                Some(ExecError::SimulatedCrash)
            } else {
                None
            }
        }),
    };
    let registry = ExecutorRegistry::new()
        .with(Arc::new(mdrun))
        .with(Arc::new(MsmBuildExecutor));

    let result = run_project(
        Box::new(MsmController::new(streaming_config())),
        registry,
        fault_runtime(5, Duration::from_millis(1)),
    );

    assert_eq!(result.workers_lost, 2, "both sabotaged workers must die");
    assert!(
        result.commands_requeued >= 2,
        "each crashed worker's chunk must be re-orphaned"
    );
    assert_eq!(result.commands_dropped, 0);
    // Budget: 3 rounds × 4 lineages × 2 chunks, plus any reclusters —
    // every chunk lands exactly once despite the crashes.
    assert!(result.commands_completed >= 24);
    let report = MsmProjectReport::from_value(&result.result).expect("report must parse");
    assert!(!report.generations.is_empty());
}

// ---------------------------------------------------------------------------
// Dropped recluster: the single-flight ticket must clear
// ---------------------------------------------------------------------------

#[test]
fn dead_recluster_cannot_wedge_the_stream() {
    let model = Arc::new(VillinModel::hp35());
    let build_attempts = Arc::new(AtomicUsize::new(0));
    let counted = build_attempts.clone();
    // Every background recluster fails until dropped. The drop handler
    // must clear the rebuild ticket — `maybe_finish` refuses to finish
    // while one is outstanding — and the stream keeps estimating on the
    // founding partitioning.
    let builds = Saboteur {
        inner: Arc::new(MsmBuildExecutor),
        policy: Arc::new(move |_cmd: &Command| {
            counted.fetch_add(1, Ordering::Relaxed);
            Some(ExecError::Failed(
                "injected: recluster node is cursed".into(),
            ))
        }),
    };
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(model)))
        .with(Arc::new(builds));

    // The long-run/tiny-model shape that provably drifts past the
    // rebuild threshold (see `streaming_background_rebuild_triggers_on_
    // drift` in the controller's unit tests).
    let config = MsmProjectConfig {
        generations: 6,
        n_clusters: 5,
        ..streaming_config()
    };
    let result = run_project(
        Box::new(MsmController::new(config)),
        registry,
        fault_runtime(2, Duration::from_millis(1)),
    );

    assert!(
        build_attempts.load(Ordering::Relaxed) >= 1,
        "drift must have dispatched at least one recluster"
    );
    assert!(
        result.commands_dropped >= 1,
        "the recluster must be dropped"
    );
    let report = MsmProjectReport::from_value(&result.result).expect("report must parse");
    assert_eq!(
        report.n_rebuilds, 0,
        "no recluster ever landed, so none may be swapped in"
    );
    assert!(!report.generations.is_empty());
}

// ---------------------------------------------------------------------------
// Server SIGKILL mid-stream: the WAL carries the whole decision state
// ---------------------------------------------------------------------------

/// A durable streaming server incarnation with the kill switch exposed,
/// mirroring the rig in `tests/server_chaos.rs` but with the real MSM
/// controller and real MD workers.
struct StreamRig {
    hub: transport::ChannelHub,
    monitor: Monitor,
    shared_fs: SharedFs,
    kill: Arc<AtomicBool>,
    server_thread: std::thread::JoinHandle<ProjectResult>,
}

fn stream_rig(dir: &PathBuf, config: MsmProjectConfig) -> StreamRig {
    let server_config = ServerConfig {
        heartbeat_interval: Duration::from_millis(25),
        watchdog_period: Duration::from_millis(10),
        max_attempts: 5,
        retry_backoff_base: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        state_dir: Some(dir.display().to_string()),
        ..ServerConfig::default()
    };
    let (hub, server_transport) = transport::channel();
    let shared_fs = SharedFs::new();
    let monitor = Monitor::new();
    let kill = Arc::new(AtomicBool::new(false));
    let server = Server::new(
        ProjectId(0),
        Box::new(MsmController::new(config)),
        server_config,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(server_transport),
    )
    .with_kill_switch(kill.clone());
    let server_thread = std::thread::spawn(move || server.run());
    StreamRig {
        hub,
        monitor,
        shared_fs,
        kill,
        server_thread,
    }
}

fn md_workers(
    rig: &StreamRig,
    model: &Arc<VillinModel>,
    base_id: u64,
    n: usize,
) -> Vec<WorkerHandle> {
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(model.clone())))
        .with(Arc::new(MsmBuildExecutor));
    let wc = WorkerConfig {
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(2),
        shared_fs: Some(rig.shared_fs.clone()),
        ..WorkerConfig::default()
    };
    (0..n)
        .map(|i| {
            let id = WorkerId(base_id + i as u64);
            spawn_worker(
                id,
                wc.clone(),
                registry.clone(),
                Box::new(rig.hub.attach(id)),
            )
        })
        .collect()
}

/// Scripted channel worker: announce with the real mdrun executable
/// spec, so the dispatcher matches it exactly like a pool worker.
fn announce_md(
    rig: &StreamRig,
    worker: WorkerId,
    model: &Arc<VillinModel>,
) -> ChannelWorkerTransport {
    let mut link = rig.hub.attach(worker);
    link.announce(ToServer::Announce {
        worker,
        desc: WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(1, 1_000_000),
            executables: MdRunExecutor::new(model.clone()).executables(),
        },
    })
    .unwrap();
    link
}

fn fetch_command(link: &mut ChannelWorkerTransport, worker: WorkerId) -> Command {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        link.send(ToServer::RequestWork { worker }).unwrap();
        match link.recv_timeout(Duration::from_millis(100)) {
            Ok(ToWorker::Workload(mut cmds)) => {
                assert_eq!(cmds.len(), 1, "scripted workers take one command");
                return cmds.pop().unwrap();
            }
            Ok(_) | Err(_) => {
                assert!(Instant::now() < deadline, "no workload within 5s");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

#[test]
fn streaming_project_survives_server_kill_and_restart() {
    let dir = state_dir("restart");
    let model = Arc::new(VillinModel::hp35());
    let config = streaming_config();

    // Incarnation 1 is scripted for a deterministic kill point: one
    // hand-driven worker completes exactly 5 chunks (real MD outputs,
    // so the streaming state is genuine), takes a 6th in flight, and
    // then the server is killed — provably mid-stream, before the
    // bootstrap threshold, with work both queued and running.
    let r = stream_rig(&dir, config.clone());
    let md = MdRunExecutor::new(model.clone());
    let a = WorkerId(900);
    let mut a_link = announce_md(&r, a, &model);
    for _ in 0..5 {
        let cmd = fetch_command(&mut a_link, a);
        let data = md
            .execute(ExecContext {
                command: &cmd,
                worker: a,
                shared_fs: None,
                telemetry: None,
            })
            .expect("scripted mdrun must succeed");
        let output = CommandOutput::new(&cmd, a, data, 0.01);
        r.hub.send(ToServer::Completed { output }).unwrap();
    }
    let t0 = Instant::now();
    loop {
        let s = r.monitor.status();
        if s.commands_completed >= 5 {
            assert!(!s.finished, "5 of 24 chunks cannot finish the project");
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "completions not absorbed within 10s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let in_flight = fetch_command(&mut a_link, a);
    r.kill.store(true, Ordering::Relaxed);
    let dead = r.server_thread.join().unwrap();
    assert!(dead.result.is_null(), "a killed server reports no result");
    assert_eq!(dead.commands_completed, 5);
    drop(a_link);
    drop(r.hub);
    // The in-flight chunk dies with its scripted worker: incarnation 2
    // must re-orphan it through the watchdog and run it elsewhere.
    drop(in_flight);

    // Incarnation 2: fresh controller, same directory. Recovery must
    // restore the streaming snapshot (lineages, incremental counts,
    // budget counters) and the terminal set, then finish the project.
    let r2 = stream_rig(&dir, config.clone());
    let workers2 = md_workers(&r2, &model, 100, 3);
    let result = r2.server_thread.join().unwrap();
    drop(r2.hub);
    for w in workers2 {
        w.join();
    }

    // 12 segments × 2 chunks, fault-free: nothing may be dropped, the
    // 5 restored completions carry over, and the full budget is spent
    // across both incarnations.
    assert_eq!(result.commands_dropped, 0);
    assert!(
        result.commands_requeued >= 1,
        "the in-flight chunk must be re-orphaned"
    );
    assert!(result.commands_completed >= 24);
    let report = MsmProjectReport::from_value(&result.result)
        .expect("streaming report must parse after recovery");
    assert!(!report.generations.is_empty());
    assert!(report.min_rmsd_to_native.is_finite());

    // Incarnation 3: a post-completion restart replays the ledger to
    // the identical verdict without any workers attached.
    let r3 = stream_rig(&dir, config);
    let replay = r3.server_thread.join().unwrap();
    drop(r3.hub);
    assert_eq!(replay.result, result.result);
    assert_eq!(
        replay.commands_completed, result.commands_completed,
        "a post-completion restart must not re-run anything"
    );
}
