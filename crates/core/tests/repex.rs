//! Replica-exchange suite: the sync-point workload under the streaming
//! lifecycle, plus the exchange-statistics harness.
//!
//! Replica exchange is the first workload where commands *rendezvous*:
//! a slot cannot advance past leg k until its exchange partner reports
//! leg k (or provably never will). That traffic shape is what these
//! tests abuse:
//!
//! * a seeded end-to-end ladder must produce an acceptance rate that
//!   matches the analytic Metropolis expectation `E[min(1, e^{Δβ·ΔE})]`
//!   within 10% relative error — in both sync and async modes — and
//!   its temperature-swap bookkeeping must be a permutation at every
//!   sync point;
//! * a worker crashing mid-leg must re-orphan the leg without
//!   deadlocking the crashed replica's exchange partner;
//! * a permanently failing replica must be dropped, with the ladder
//!   degrading to N−1 and its neighbors re-linked across the gap;
//! * a server SIGKILL mid-ladder must recover from the WAL with an
//!   exactly-once ledger and a bit-identical exchange history;
//! * controller WAL snapshots must stay bounded per event — for repex
//!   *and* for streaming MSM (the DESIGN.md §16 O(trajectory-bytes)
//!   cliff), so a long project cannot grind the ledger into the disk.

use copernicus_core::messages::ToServer;
use copernicus_core::plugins::repex::ExchangeRecord;
use copernicus_core::prelude::*;
use copernicus_core::transport::{self, ChannelWorkerTransport};
use copernicus_core::{spawn_worker, ExecContext, ExecError, Server, WorkerHandle};
use mdsim::VillinModel;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Scaffolding
// ---------------------------------------------------------------------------

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "copernicus_repex_{}_{}_{}",
        tag,
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// CI sweeps this seed through the whole matrix; locally it defaults.
fn test_seed() -> u64 {
    std::env::var("COPERNICUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12648430)
}

/// The 6-replica ladder of the acceptance criterion: enough legs for
/// the empirical acceptance fraction to converge on the Metropolis
/// expectation, short enough legs to stay laptop-instant.
fn stats_config(mode: ExchangeMode) -> RepexProjectConfig {
    RepexProjectConfig {
        n_replicas: 6,
        t_min: 0.5,
        t_max: 0.8,
        n_legs: 320,
        steps_per_leg: 120,
        checkpoint_steps: 0,
        mode,
        seed: test_seed(),
    }
}

/// A small ladder for the fault scenarios: long enough for exchanges
/// on both parities, short enough to finish fast under sabotage.
fn fault_config(mode: ExchangeMode) -> RepexProjectConfig {
    RepexProjectConfig {
        n_replicas: 6,
        n_legs: 8,
        steps_per_leg: 150,
        mode,
        seed: test_seed(),
        ..RepexProjectConfig::default()
    }
}

fn fault_runtime(max_attempts: u32, backoff: Duration) -> RuntimeConfig {
    RuntimeConfig {
        n_workers: 4,
        worker: WorkerConfig {
            heartbeat_interval: Duration::from_millis(30),
            ..WorkerConfig::default()
        },
        server: ServerConfig {
            heartbeat_interval: Duration::from_millis(30),
            watchdog_period: Duration::from_millis(15),
            max_attempts,
            retry_backoff_base: backoff,
            retry_backoff_max: 4 * backoff,
            ..ServerConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

/// Wraps a real executor and lets a policy veto individual executions
/// with an injected [`ExecError`]; everything else is delegated.
struct Saboteur {
    inner: Arc<dyn CommandExecutor>,
    policy: Arc<dyn Fn(&Command) -> Option<ExecError> + Send + Sync>,
}

impl CommandExecutor for Saboteur {
    fn executables(&self) -> Vec<ExecutableSpec> {
        self.inner.executables()
    }

    fn execute(&self, ctx: ExecContext<'_>) -> Result<serde_json::Value, ExecError> {
        if let Some(err) = (self.policy)(ctx.command) {
            return Err(err);
        }
        self.inner.execute(ctx)
    }
}

fn slot_of(cmd: &Command) -> Option<u64> {
    cmd.payload
        .get("tag")
        .and_then(|t| t.get("slot"))
        .and_then(|s| s.as_u64())
}

/// Replays the exchange history from the identity occupancy, asserting
/// the walker bookkeeping is a permutation at every sync point: the two
/// recorded pre-swap walkers match the evolving occupancy, and no
/// walker is ever lost or duplicated. Returns the final occupancy.
fn replay_history(n: usize, history: &[ExchangeRecord]) -> Vec<u64> {
    let mut occupancy: Vec<u64> = (0..n as u64).collect();
    for (i, r) in history.iter().enumerate() {
        assert!(r.slot_lo < r.slot_hi && r.slot_hi < n, "record {i}: slots");
        assert_eq!(
            (occupancy[r.slot_lo], occupancy[r.slot_hi]),
            (r.walker_lo, r.walker_hi),
            "record {i}: recorded walkers must match the replayed occupancy"
        );
        if r.accepted {
            occupancy.swap(r.slot_lo, r.slot_hi);
        }
        let mut sorted = occupancy.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..n as u64).collect::<Vec<_>>(),
            "record {i}: occupancy must stay a permutation of the walkers"
        );
    }
    occupancy
}

/// Every record must be internally consistent: the stored probability
/// is the Metropolis value for the stored energies and ladder, and the
/// verdict is exactly `draw < prob`.
fn assert_metropolis_consistent(ladder: &[f64], history: &[ExchangeRecord]) {
    for (i, r) in history.iter().enumerate() {
        let beta_lo = 1.0 / ladder[r.slot_lo];
        let beta_hi = 1.0 / ladder[r.slot_hi];
        let p = ((beta_lo - beta_hi) * (r.e_lo - r.e_hi)).exp().min(1.0);
        assert!(
            (r.prob - p).abs() < 1e-9,
            "record {i}: stored prob {} vs recomputed {p}",
            r.prob
        );
        assert!((0.0..1.0).contains(&r.draw), "record {i}: draw in [0,1)");
        assert_eq!(r.accepted, r.draw < r.prob, "record {i}: verdict");
    }
}

/// Where the exchange-history artifact goes (CI uploads it on failure).
fn artifact_path(name: &str) -> PathBuf {
    let dir = std::env::var("COPERNICUS_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

// ---------------------------------------------------------------------------
// Exchange statistics: seeded e2e acceptance vs Metropolis expectation
// ---------------------------------------------------------------------------

fn run_stats_ladder(mode: ExchangeMode) -> RepexProjectReport {
    let controller = RepexController::new(stats_config(mode));
    let registry =
        ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(controller.model())));
    let result = run_project(
        Box::new(controller),
        registry,
        RuntimeConfig {
            n_workers: 4,
            ..RuntimeConfig::default()
        },
    );
    assert_eq!(result.commands_dropped, 0, "fault-free ladder drops nothing");
    let report =
        RepexProjectReport::from_value(&result.result).expect("repex report must parse");
    let artifact = artifact_path(&format!(
        "repex_history_{}_{}.json",
        report.mode,
        test_seed()
    ));
    let _ = std::fs::write(
        &artifact,
        serde_json::to_string_pretty(&result.result).expect("report serializes"),
    );
    report
}

fn assert_stats(report: &RepexProjectReport, mode: ExchangeMode) {
    let cfg = stats_config(mode);
    assert_eq!(report.n_alive, 6, "no replica may die in a fault-free run");
    assert_eq!(report.mode, mode.as_str());
    // Alternating parity over 6 replicas: even legs carry 3 pairs and
    // odd legs 2; async resolves the same schedule as sync.
    let expected_attempts = cfg.n_legs.div_ceil(2) * 3 + cfg.n_legs / 2 * 2;
    assert_eq!(
        report.attempts, expected_attempts,
        "the full exchange schedule must run"
    );
    assert_metropolis_consistent(&report.ladder, &report.history);
    let final_occupancy = replay_history(cfg.n_replicas, &report.history);
    assert_eq!(
        final_occupancy, report.walkers,
        "reported walkers must equal the replayed history"
    );
    // The acceptance criterion: empirical rate within 10% relative
    // error of the analytic Metropolis expectation over the same
    // attempts (a seeded, deterministic comparison).
    let expected = report.expected_acceptance;
    assert!(
        expected > 0.05,
        "degenerate ladder: expected acceptance {expected} too small to test"
    );
    let rel = (report.acceptance_rate - expected).abs() / expected;
    assert!(
        rel <= 0.10,
        "{} mode: acceptance {:.4} vs Metropolis expectation {:.4} \
         (relative error {:.3} > 0.10) over {} attempts",
        report.mode,
        report.acceptance_rate,
        expected,
        rel,
        report.attempts
    );
    assert!(
        report.round_trips >= 1,
        "{} mode: walkers must traverse the ladder at least once \
         (got {} round trips)",
        report.mode,
        report.round_trips
    );
}

#[test]
fn seeded_sync_acceptance_matches_metropolis_expectation() {
    let report = run_stats_ladder(ExchangeMode::Sync);
    assert_stats(&report, ExchangeMode::Sync);
}

#[test]
fn seeded_async_acceptance_matches_metropolis_expectation() {
    let report = run_stats_ladder(ExchangeMode::Async);
    assert_stats(&report, ExchangeMode::Async);
    // Async mode resolves the identical deterministic schedule: the
    // decision draws are keyed by (leg, slot), not arrival order, so
    // sync and async histories agree record-for-record modulo order.
    let sync = run_stats_ladder(ExchangeMode::Sync);
    let mut a: Vec<ExchangeRecord> = report.history.clone();
    let mut s: Vec<ExchangeRecord> = sync.history.clone();
    let key = |r: &ExchangeRecord| (r.leg, r.slot_lo);
    a.sort_by_key(key);
    s.sort_by_key(key);
    assert_eq!(
        a, s,
        "sync and async must produce the same exchange history"
    );
}

// ---------------------------------------------------------------------------
// Faults: crashes and permanent failures against the rendezvous shape
// ---------------------------------------------------------------------------

#[test]
fn worker_crash_mid_leg_requeues_without_deadlocking_partner() {
    let controller = RepexController::new(fault_config(ExchangeMode::Async));
    // The first two mdrun executions take their workers down with them
    // (silence, not an error report). The watchdog re-orphans both legs;
    // the crashed replicas' partners hold their sync points until the
    // re-run lands — and must then exchange and finish normally.
    let crashes = Arc::new(AtomicUsize::new(0));
    let budget = crashes.clone();
    let mdrun = Saboteur {
        inner: Arc::new(MdRunExecutor::new(controller.model())),
        policy: Arc::new(move |_cmd: &Command| {
            if budget.fetch_add(1, Ordering::Relaxed) < 2 {
                Some(ExecError::SimulatedCrash)
            } else {
                None
            }
        }),
    };
    let registry = ExecutorRegistry::new().with(Arc::new(mdrun));
    let result = run_project(
        Box::new(controller),
        registry,
        fault_runtime(5, Duration::from_millis(1)),
    );

    assert_eq!(result.workers_lost, 2, "both sabotaged workers must die");
    assert!(result.commands_requeued >= 2, "crashed legs must re-orphan");
    assert_eq!(result.commands_dropped, 0);
    // 6 replicas × 8 legs, exactly once each despite the crashes.
    assert_eq!(result.commands_completed, 48);
    let report = RepexProjectReport::from_value(&result.result).expect("report must parse");
    assert_eq!(report.n_alive, 6, "a crash is not a drop: no replica dies");
    assert_metropolis_consistent(&report.ladder, &report.history);
    replay_history(6, &report.history);
}

#[test]
fn permanently_failing_replica_drops_and_ladder_degrades() {
    let controller = RepexController::new(fault_config(ExchangeMode::Async));
    // Ladder slot 3 never completes a leg: every attempt errors until
    // the retry budget drops the command. The controller must retire
    // the replica, re-link slots 2 and 4 across the gap, and finish the
    // ladder at N−1 — without wedging 3's former partners.
    let failures = Arc::new(AtomicUsize::new(0));
    let counted = failures.clone();
    let mdrun = Saboteur {
        inner: Arc::new(MdRunExecutor::new(controller.model())),
        policy: Arc::new(move |cmd: &Command| {
            if slot_of(cmd) == Some(3) {
                counted.fetch_add(1, Ordering::Relaxed);
                Some(ExecError::Failed("injected: slot 3 is cursed".into()))
            } else {
                None
            }
        }),
    };
    let registry = ExecutorRegistry::new().with(Arc::new(mdrun));
    let result = run_project(
        Box::new(controller),
        registry,
        fault_runtime(2, Duration::from_millis(1)),
    );

    assert_eq!(result.commands_dropped, 1, "slot 3's leg must be dropped");
    assert_eq!(failures.load(Ordering::Relaxed), 2, "max_attempts failures");
    let report = RepexProjectReport::from_value(&result.result).expect("report must parse");
    assert_eq!(report.n_alive, 5, "the ladder degrades to N-1");
    assert_eq!(report.dead_slots, vec![3]);
    assert_metropolis_consistent(&report.ladder, &report.history);
    // Neighbors re-linked: with slot 3 gone, even-parity pairing over
    // the survivors [0,1,2,4,5] couples 2 with 4 across the gap.
    assert!(
        report
            .history
            .iter()
            .any(|r| (r.slot_lo, r.slot_hi) == (2, 4)),
        "slots 2 and 4 must exchange across the dead slot"
    );
    // No exchange may involve the dead slot after it died at leg 0
    // (it fails its very first leg, so it never exchanges at all).
    assert!(
        report
            .history
            .iter()
            .all(|r| r.slot_lo != 3 && r.slot_hi != 3),
        "a replica that never completed a leg cannot have exchanged"
    );
}

// ---------------------------------------------------------------------------
// Server SIGKILL mid-ladder: WAL recovery with identical exchange history
// ---------------------------------------------------------------------------

struct RepexRig {
    hub: transport::ChannelHub,
    monitor: Monitor,
    shared_fs: SharedFs,
    kill: Arc<AtomicBool>,
    server_thread: std::thread::JoinHandle<ProjectResult>,
}

fn repex_rig(dir: &PathBuf, config: RepexProjectConfig) -> RepexRig {
    let server_config = ServerConfig {
        heartbeat_interval: Duration::from_millis(25),
        watchdog_period: Duration::from_millis(10),
        max_attempts: 5,
        retry_backoff_base: Duration::from_millis(1),
        retry_backoff_max: Duration::from_millis(10),
        state_dir: Some(dir.display().to_string()),
        ..ServerConfig::default()
    };
    let (hub, server_transport) = transport::channel();
    let shared_fs = SharedFs::new();
    let monitor = Monitor::new();
    let kill = Arc::new(AtomicBool::new(false));
    let server = Server::new(
        ProjectId(0),
        Box::new(RepexController::new(config)),
        server_config,
        shared_fs.clone(),
        monitor.clone(),
        Box::new(server_transport),
    )
    .with_kill_switch(kill.clone());
    let server_thread = std::thread::spawn(move || server.run());
    RepexRig {
        hub,
        monitor,
        shared_fs,
        kill,
        server_thread,
    }
}

fn md_workers(rig: &RepexRig, model: &Arc<VillinModel>, base_id: u64, n: usize) -> Vec<WorkerHandle> {
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(model.clone())));
    let wc = WorkerConfig {
        heartbeat_interval: Duration::from_millis(25),
        poll_interval: Duration::from_millis(2),
        shared_fs: Some(rig.shared_fs.clone()),
        ..WorkerConfig::default()
    };
    (0..n)
        .map(|i| {
            let id = WorkerId(base_id + i as u64);
            spawn_worker(
                id,
                wc.clone(),
                registry.clone(),
                Box::new(rig.hub.attach(id)),
            )
        })
        .collect()
}

fn announce_md(
    rig: &RepexRig,
    worker: WorkerId,
    model: &Arc<VillinModel>,
) -> ChannelWorkerTransport {
    let mut link = rig.hub.attach(worker);
    link.announce(ToServer::Announce {
        worker,
        desc: WorkerDescription {
            platform: Platform::Smp,
            resources: Resources::new(1, 1_000_000),
            executables: MdRunExecutor::new(model.clone()).executables(),
        },
    })
    .unwrap();
    link
}

fn fetch_command(link: &mut ChannelWorkerTransport, worker: WorkerId) -> Command {
    use copernicus_core::messages::ToWorker;
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        link.send(ToServer::RequestWork { worker }).unwrap();
        match link.recv_timeout(Duration::from_millis(100)) {
            Ok(ToWorker::Workload(mut cmds)) => {
                assert_eq!(cmds.len(), 1, "scripted workers take one command");
                return cmds.pop().unwrap();
            }
            Ok(_) | Err(_) => {
                assert!(Instant::now() < deadline, "no workload within 5s");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

#[test]
fn repex_project_survives_server_kill_and_restart() {
    let dir = state_dir("restart");
    let model = Arc::new(VillinModel::hp35());
    let config = fault_config(ExchangeMode::Async);

    // Incarnation 1 is scripted for a deterministic kill point: one
    // hand-driven worker completes 7 legs (real MD outputs, so energies
    // and exchange decisions are genuine — with 6 replicas that is at
    // least one resolved leg-0 exchange), takes an 8th leg in flight,
    // and then the server is killed — provably mid-ladder.
    let r = repex_rig(&dir, config.clone());
    let md = MdRunExecutor::new(model.clone());
    let a = WorkerId(900);
    let mut a_link = announce_md(&r, a, &model);
    for _ in 0..7 {
        let cmd = fetch_command(&mut a_link, a);
        let data = md
            .execute(ExecContext {
                command: &cmd,
                worker: a,
                shared_fs: None,
                telemetry: None,
            })
            .expect("scripted mdrun must succeed");
        let output = CommandOutput::new(&cmd, a, data, 0.01);
        r.hub.send(ToServer::Completed { output }).unwrap();
    }
    let t0 = Instant::now();
    loop {
        let s = r.monitor.status();
        if s.commands_completed >= 7 {
            assert!(!s.finished, "7 of 48 legs cannot finish the ladder");
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "completions not absorbed within 10s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let in_flight = fetch_command(&mut a_link, a);
    r.kill.store(true, Ordering::Relaxed);
    let dead = r.server_thread.join().unwrap();
    assert!(dead.result.is_null(), "a killed server reports no result");
    assert_eq!(dead.commands_completed, 7);
    drop(a_link);
    drop(r.hub);
    // The in-flight leg dies with its scripted worker: incarnation 2
    // must re-orphan it through the watchdog and run it elsewhere.
    drop(in_flight);

    // Incarnation 2: fresh controller, same directory. Recovery must
    // restore the mid-ladder snapshot — slot occupancy, pending
    // energies, the exchange history so far — and finish the ladder.
    let r2 = repex_rig(&dir, config.clone());
    let workers2 = md_workers(&r2, &model, 100, 3);
    let result = r2.server_thread.join().unwrap();
    drop(r2.hub);
    for w in workers2 {
        w.join();
    }

    // 6 replicas × 8 legs, exactly once across both incarnations.
    assert_eq!(result.commands_dropped, 0);
    assert!(
        result.commands_requeued >= 1,
        "the in-flight leg must be re-orphaned"
    );
    assert_eq!(result.commands_completed, 48);
    let report =
        RepexProjectReport::from_value(&result.result).expect("report must parse after recovery");
    assert_eq!(report.n_alive, 6);
    assert_metropolis_consistent(&report.ladder, &report.history);
    replay_history(6, &report.history);

    // The recovered ladder must make the *same* decisions a never-killed
    // server makes: draws are keyed by (leg, slot), energies by the
    // deterministic MD seeds, so the full exchange history is identical.
    let undisturbed = {
        let controller = RepexController::new(config.clone());
        let registry =
            ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(controller.model())));
        let result = run_project(
            Box::new(controller),
            registry,
            RuntimeConfig {
                n_workers: 3,
                ..RuntimeConfig::default()
            },
        );
        RepexProjectReport::from_value(&result.result).expect("report must parse")
    };
    let key = |r: &ExchangeRecord| (r.leg, r.slot_lo);
    let mut got = report.history.clone();
    let mut want = undisturbed.history.clone();
    got.sort_by_key(key);
    want.sort_by_key(key);
    assert_eq!(
        got, want,
        "recovery must not change a single exchange decision"
    );

    // Incarnation 3: a post-completion restart replays the ledger to
    // the identical verdict without any workers attached.
    let r3 = repex_rig(&dir, config);
    let replay = r3.server_thread.join().unwrap();
    drop(r3.hub);
    assert_eq!(replay.result, result.result);
    assert_eq!(
        replay.commands_completed, result.commands_completed,
        "a post-completion restart must not re-run anything"
    );
}

// ---------------------------------------------------------------------------
// WAL snapshot-size regression (ROADMAP §16 follow-up)
// ---------------------------------------------------------------------------

/// Runs a controller inline against real executors, recording the
/// serialized snapshot size after every event delivery (exactly what
/// the server writes to the WAL).
fn drive_inline(
    controller: &mut dyn Controller,
    registry: &ExecutorRegistry,
    max_events: usize,
) -> Vec<usize> {
    let shared_fs = SharedFs::new();
    let mut sizes = Vec::new();
    let mut queue: Vec<CommandSpec> = Vec::new();
    let mut next_id = 1u64;
    let mut absorb = |actions: Vec<Action>, queue: &mut Vec<CommandSpec>| {
        for a in actions {
            if let Action::Spawn(specs) = a {
                queue.extend(specs);
            }
        }
    };
    let actions = controller.on_event(ControllerCtx::test(), ControllerEvent::ProjectStarted);
    absorb(actions, &mut queue);
    sizes.push(snapshot_bytes(controller));
    while !queue.is_empty() && sizes.len() < max_events {
        let spec = queue.remove(0);
        let command = Command::from_spec(CommandId(next_id), ProjectId(0), spec);
        next_id += 1;
        let executor = registry
            .lookup(&command.command_type)
            .expect("registered executor");
        let data = executor
            .execute(ExecContext {
                command: &command,
                worker: WorkerId(1),
                shared_fs: Some(&shared_fs),
                telemetry: None,
            })
            .expect("inline execution succeeds");
        let output = CommandOutput::new(&command, WorkerId(1), data, 0.01);
        let actions = controller.on_event(
            ControllerCtx::test(),
            ControllerEvent::CommandFinished(&output),
        );
        absorb(actions, &mut queue);
        sizes.push(snapshot_bytes(controller));
    }
    sizes
}

fn snapshot_bytes(controller: &dyn Controller) -> usize {
    controller
        .snapshot()
        .map(|v| serde_json::to_string(&v).expect("snapshot serializes").len())
        .unwrap_or(0)
}

#[test]
fn controller_wal_snapshots_stay_bounded_per_event() {
    // Repex: the snapshot carries current configurations and the
    // exchange history — never trajectories. Budget: 64 KiB absolute
    // for this ladder, and under 1 KiB of growth per event once the
    // slots exist (history appends ~200 bytes per attempt).
    let mut repex = RepexController::new(RepexProjectConfig {
        n_replicas: 4,
        n_legs: 6,
        steps_per_leg: 100,
        mode: ExchangeMode::Sync,
        seed: test_seed(),
        ..RepexProjectConfig::default()
    });
    let registry = ExecutorRegistry::new().with(Arc::new(MdRunExecutor::new(repex.model())));
    let sizes = drive_inline(&mut repex, &registry, 40);
    assert!(sizes.len() >= 20, "the inline drive must make progress");
    let max = *sizes.iter().max().unwrap();
    assert!(
        max < 64 * 1024,
        "repex snapshot reached {max} bytes; the O(N·beads + attempts) \
         contract is broken"
    );
    let first_full = sizes[1];
    let growth = (max.saturating_sub(first_full)) / (sizes.len() - 1);
    assert!(
        growth < 1024,
        "repex snapshot grows {growth} bytes/event; history records \
         must stay compact"
    );

    // Streaming MSM: the snapshot *does* carry live trajectories (the
    // DESIGN.md §16 cliff), so it is bounded by the lineage budget, not
    // by event count. Pin today's envelope for this small config so a
    // regression that starts accreting per-event state (dead segments,
    // duplicated frames) fails loudly rather than melting the WAL.
    let msm_config = MsmProjectConfig {
        mode: AdaptiveMode::Streaming,
        n_starts: 2,
        sims_per_start: 2,
        segment_ns: 5.0,
        record_interval: 40,
        temperature: 0.55,
        n_clusters: 10,
        lag_frames: 1,
        generations: 3,
        seed: test_seed(),
        ..MsmProjectConfig::default()
    };
    let mut msm = MsmController::new(msm_config);
    let registry = ExecutorRegistry::new()
        .with(Arc::new(MdRunExecutor::new(msm.model())))
        .with(Arc::new(MsmBuildExecutor));
    let sizes = drive_inline(&mut msm, &registry, 14);
    assert!(sizes.len() >= 10, "the inline drive must make progress");
    let max = *sizes.iter().max().unwrap();
    // 12 segments × ~94 frames × 35 beads × 3 coords ≈ 3 MB of JSON at
    // full budget; 8 MiB leaves headroom without hiding a 2× regression.
    assert!(
        max < 8 * 1024 * 1024,
        "streaming MSM snapshot reached {max} bytes for a 12-segment \
         project; the WAL write path cannot absorb this per event"
    );
}
