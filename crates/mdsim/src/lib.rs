//! # mdsim — the molecular-dynamics substrate
//!
//! A from-scratch MD engine playing the role Gromacs 4.5 plays in the
//! Copernicus paper (SC11): the "command" a worker executes. It provides
//!
//! - vector math, periodic boundary conditions, topologies;
//! - Verlet/cell neighbour lists;
//! - Lennard-Jones + reaction-field non-bonded interactions (the paper's
//!   villin electrostatics setup) with serial and rayon-threaded kernels;
//! - harmonic bonds/angles, periodic dihedrals, restraints, and a Gō-type
//!   structure-based potential;
//! - velocity-Verlet, Langevin (BAOAB) and Brownian integrators;
//! - Nosé-Hoover, Berendsen and stochastic velocity-rescale thermostats;
//! - deterministic seeding, trajectory recording, and checkpoint/resume
//!   (required for the framework's transparent worker fail-over);
//! - ready-made systems: the coarse-grained villin HP35 Gō model and an
//!   LJ fluid.
//!
//! See `DESIGN.md` at the repository root for how this substitutes for the
//! paper's all-atom setup.

pub mod barostat;
pub mod constraints;
pub mod engine;
pub mod forces;
pub mod integrate;
pub mod io;
pub mod jsonv;
pub mod minimize;
pub mod model;
pub mod neighbor;
pub mod observables;
pub mod pbc;
pub mod rng;
pub mod state;
pub mod thermostat;
pub mod topology;
pub mod trajectory;
pub mod units;
pub mod vec3;

pub use barostat::{lj_pair_virial, BerendsenBarostat};
pub use constraints::{ConstrainedVerlet, Constraints};
pub use engine::{Checkpoint, RunStats, Simulation};
pub use forces::{
    BondedForce, Energies, ForceField, ForceTerm, GoContact, GoModelForce, HarmonicRestraint,
    NonbondedForce,
};
pub use integrate::{Brownian, Integrator, Langevin, VelocityVerlet};
pub use minimize::{steepest_descent, MinimizeResult};
pub use model::{lj_fluid, LjFluidSpec, VillinModel, VillinParams};
pub use neighbor::NeighborList;
pub use observables::{
    diffusion_coefficient, end_to_end, mean_squared_displacement, radius_of_gyration,
    virial_pressure,
};
pub use pbc::SimBox;
pub use rng::{rng_for_stream, rng_from_seed, SimRng};
pub use state::State;
pub use thermostat::{Berendsen, NoseHoover, Thermostat, VRescale};
pub use topology::{Angle, Bond, Dihedral, LjParams, Particle, Topology};
pub use trajectory::Trajectory;
pub use vec3::{v3, Vec3};

// Re-export the sink types so engine callers can instrument runs without
// depending on the telemetry crate directly.
pub use copernicus_telemetry::{NullSink, RecordingSink, StepPhase, TelemetrySink};
