//! Molecular topology: particles, bonded terms, and exclusions.
//!
//! A [`Topology`] is the static description of a molecular system — what
//! Gromacs keeps in its `.tpr`: masses, charges, Lennard-Jones types, the
//! bonded-interaction lists, and the non-bonded exclusion table derived from
//! them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-particle Lennard-Jones parameters (σ, ε).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LjParams {
    pub sigma: f64,
    pub epsilon: f64,
}

impl LjParams {
    pub const fn new(sigma: f64, epsilon: f64) -> Self {
        LjParams { sigma, epsilon }
    }

    /// Lorentz-Berthelot combination rule.
    #[inline]
    pub fn combine(self, other: LjParams) -> LjParams {
        LjParams {
            sigma: 0.5 * (self.sigma + other.sigma),
            epsilon: (self.epsilon * other.epsilon).sqrt(),
        }
    }

    /// The (σ, ε) parameters in C6/C12 form: `c6 = 4εσ⁶`, `c12 = 4εσ¹²`,
    /// so `V(r) = c12/r¹² − c6/r⁶`. This is the representation the packed
    /// pair kernel streams over — combining and conversion happen once per
    /// neighbour-list build, never in the inner loop.
    #[inline]
    pub fn c6_c12(self) -> (f64, f64) {
        let s6 = self.sigma.powi(6);
        let c6 = 4.0 * self.epsilon * s6;
        (c6, c6 * s6)
    }
}

/// One particle (an atom, or a coarse-grained bead).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    pub mass: f64,
    pub charge: f64,
    pub lj: LjParams,
}

impl Particle {
    pub fn new(mass: f64, charge: f64, lj: LjParams) -> Self {
        assert!(mass > 0.0, "particle mass must be positive, got {mass}");
        Particle { mass, charge, lj }
    }

    /// Uncharged particle with the given mass and LJ parameters.
    pub fn neutral(mass: f64, lj: LjParams) -> Self {
        Self::new(mass, 0.0, lj)
    }
}

/// Harmonic bond: `V = 1/2 k (r - r0)^2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bond {
    pub i: usize,
    pub j: usize,
    pub r0: f64,
    pub k: f64,
}

/// Harmonic angle: `V = 1/2 k (θ - θ0)^2` over particles i-j-k (j central).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Angle {
    pub i: usize,
    pub j: usize,
    pub k: usize,
    pub theta0: f64,
    pub kf: f64,
}

/// Periodic (cosine) dihedral: `V = kφ (1 + cos(n φ - φ0))` over i-j-k-l.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dihedral {
    pub i: usize,
    pub j: usize,
    pub k: usize,
    pub l: usize,
    pub phi0: f64,
    pub kphi: f64,
    pub mult: i32,
}

/// Static system description.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    pub particles: Vec<Particle>,
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
    pub dihedrals: Vec<Dihedral>,
    /// Pairs excluded from non-bonded interactions (normalized to i < j).
    exclusions: BTreeSet<(usize, usize)>,
}

impl Topology {
    pub fn new() -> Self {
        Topology::default()
    }

    pub fn n_particles(&self) -> usize {
        self.particles.len()
    }

    /// Append a particle and return its index.
    pub fn add_particle(&mut self, p: Particle) -> usize {
        self.particles.push(p);
        self.particles.len() - 1
    }

    pub fn add_bond(&mut self, i: usize, j: usize, r0: f64, k: f64) {
        self.check_pair(i, j);
        self.bonds.push(Bond { i, j, r0, k });
    }

    pub fn add_angle(&mut self, i: usize, j: usize, k: usize, theta0: f64, kf: f64) {
        assert!(i != j && j != k && i != k, "angle indices must be distinct");
        self.check_index(i);
        self.check_index(j);
        self.check_index(k);
        self.angles.push(Angle {
            i,
            j,
            k,
            theta0,
            kf,
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub fn add_dihedral(
        &mut self,
        i: usize,
        j: usize,
        k: usize,
        l: usize,
        phi0: f64,
        kphi: f64,
        mult: i32,
    ) {
        for &a in &[i, j, k, l] {
            self.check_index(a);
        }
        self.dihedrals.push(Dihedral {
            i,
            j,
            k,
            l,
            phi0,
            kphi,
            mult,
        });
    }

    /// Exclude the non-bonded interaction between `i` and `j`.
    pub fn add_exclusion(&mut self, i: usize, j: usize) {
        self.check_pair(i, j);
        self.exclusions.insert(normalize(i, j));
    }

    /// Is the non-bonded interaction between `i` and `j` excluded?
    #[inline]
    pub fn is_excluded(&self, i: usize, j: usize) -> bool {
        self.exclusions.contains(&normalize(i, j))
    }

    pub fn n_exclusions(&self) -> usize {
        self.exclusions.len()
    }

    /// Generate exclusions for all pairs within `n_bonds` bonds of each
    /// other (the usual "exclude 1-2, 1-3, 1-4 neighbours" rule is
    /// `n_bonds = 3`). Exclusions are derived from the bond list only.
    pub fn exclude_bonded_neighbors(&mut self, n_bonds: usize) {
        let n = self.n_particles();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for b in &self.bonds {
            adj[b.i].push(b.j);
            adj[b.j].push(b.i);
        }
        for start in 0..n {
            // BFS out to n_bonds hops.
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                if dist[u] >= n_bonds {
                    continue;
                }
                for &w in &adj[u] {
                    if dist[w] == usize::MAX {
                        dist[w] = dist[u] + 1;
                        queue.push_back(w);
                    }
                }
            }
            for (other, &d) in dist.iter().enumerate() {
                if other != start && d != usize::MAX && d <= n_bonds {
                    self.exclusions.insert(normalize(start, other));
                }
            }
        }
    }

    /// Total mass of the system.
    pub fn total_mass(&self) -> f64 {
        self.particles.iter().map(|p| p.mass).sum()
    }

    /// Per-particle masses as a vector (convenient for integrators).
    pub fn masses(&self) -> Vec<f64> {
        self.particles.iter().map(|p| p.mass).collect()
    }

    /// Number of kinetic degrees of freedom, after removing `n_constrained`
    /// global degrees (3 for COM-motion removal).
    pub fn dof(&self, n_constrained: usize) -> usize {
        (3 * self.n_particles()).saturating_sub(n_constrained)
    }

    fn check_index(&self, i: usize) {
        assert!(
            i < self.n_particles(),
            "particle index {i} out of range (n = {})",
            self.n_particles()
        );
    }

    fn check_pair(&self, i: usize, j: usize) {
        assert!(i != j, "pair indices must be distinct, got ({i}, {j})");
        self.check_index(i);
        self.check_index(j);
    }
}

#[inline]
fn normalize(i: usize, j: usize) -> (usize, usize) {
    if i < j {
        (i, j)
    } else {
        (j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Topology {
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        for i in 0..n - 1 {
            top.add_bond(i, i + 1, 1.0, 100.0);
        }
        top
    }

    #[test]
    fn lorentz_berthelot() {
        let a = LjParams::new(1.0, 4.0);
        let b = LjParams::new(3.0, 1.0);
        let c = a.combine(b);
        assert_eq!(c.sigma, 2.0);
        assert_eq!(c.epsilon, 2.0);
    }

    #[test]
    fn c6_c12_reproduces_sigma_epsilon_form() {
        let lj = LjParams::new(1.3, 0.7);
        let (c6, c12) = lj.c6_c12();
        // V(r) in both representations at a few radii.
        for r in [1.0, 1.3, 2.0] {
            let sr6 = (lj.sigma / r).powi(6);
            let v_se = 4.0 * lj.epsilon * (sr6 * sr6 - sr6);
            let r6 = r.powi(6);
            let v_c = c12 / (r6 * r6) - c6 / r6;
            assert!((v_se - v_c).abs() < 1e-12 * v_se.abs().max(1.0));
        }
    }

    #[test]
    fn exclusion_is_symmetric() {
        let mut top = chain(3);
        top.add_exclusion(2, 0);
        assert!(top.is_excluded(0, 2));
        assert!(top.is_excluded(2, 0));
        assert!(!top.is_excluded(0, 1));
    }

    #[test]
    fn bonded_neighbor_exclusions() {
        let mut top = chain(6);
        top.exclude_bonded_neighbors(3);
        // 1-2, 1-3, 1-4 neighbours of particle 0 are 1, 2, 3.
        assert!(top.is_excluded(0, 1));
        assert!(top.is_excluded(0, 2));
        assert!(top.is_excluded(0, 3));
        assert!(!top.is_excluded(0, 4));
        assert!(!top.is_excluded(0, 5));
    }

    #[test]
    fn exclusions_count_no_duplicates() {
        let mut top = chain(3);
        top.add_exclusion(0, 1);
        top.add_exclusion(1, 0);
        assert_eq!(top.n_exclusions(), 1);
    }

    #[test]
    fn dof_counts() {
        let top = chain(10);
        assert_eq!(top.dof(0), 30);
        assert_eq!(top.dof(3), 27);
        assert_eq!(Topology::new().dof(3), 0);
    }

    #[test]
    fn mass_accounting() {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(2.0, LjParams::new(1.0, 1.0)));
        top.add_particle(Particle::neutral(3.0, LjParams::new(1.0, 1.0)));
        assert_eq!(top.total_mass(), 5.0);
        assert_eq!(top.masses(), vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_self_bond() {
        let mut top = chain(3);
        top.add_bond(1, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let mut top = chain(3);
        top.add_bond(0, 7, 1.0, 1.0);
    }
}
