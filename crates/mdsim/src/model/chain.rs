//! Unfolded-conformation generators.
//!
//! The paper's villin runs start from nine *unfolded* conformations
//! (§3.1). These helpers produce extended and self-avoiding random-coil
//! chains with prescribed bond lengths, which the adaptive-sampling layer
//! uses as generation-0 starting structures.

use crate::rng::{sample_normal, SimRng};
use crate::vec3::{v3, Vec3};

/// A fully extended zig-zag chain in the xy-plane with the given bond
/// lengths (one per bond; `bond_lengths.len() + 1` beads).
pub fn extended_chain(bond_lengths: &[f64]) -> Vec<Vec3> {
    let n = bond_lengths.len() + 1;
    let mut pos = Vec::with_capacity(n);
    let mut cur = Vec3::ZERO;
    pos.push(cur);
    // Alternate ±25° off the x-axis so consecutive bonds are not collinear
    // (collinear geometry makes angle/dihedral terms singular).
    let tilt = 25.0_f64.to_radians();
    for (k, &b) in bond_lengths.iter().enumerate() {
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        let dir = v3(tilt.cos(), sign * tilt.sin(), 0.0);
        cur += dir * b;
        pos.push(cur);
    }
    pos
}

/// A self-avoiding random coil: directions follow a persistent random walk
/// and any bead closer than `min_separation` to a previous non-neighbour
/// bead is re-drawn (up to a bounded number of attempts per bead).
pub fn self_avoiding_chain(
    bond_lengths: &[f64],
    min_separation: f64,
    rng: &mut SimRng,
) -> Vec<Vec3> {
    let n = bond_lengths.len() + 1;
    let mut pos: Vec<Vec3> = Vec::with_capacity(n);
    pos.push(Vec3::ZERO);
    let mut dir = random_unit(rng);
    for (k, &b) in bond_lengths.iter().enumerate() {
        let prev = pos[k];
        let mut placed = false;
        for _attempt in 0..200 {
            // Persistent walk: perturb the previous direction.
            let trial_dir = (dir
                + v3(
                    0.7 * sample_normal(rng),
                    0.7 * sample_normal(rng),
                    0.7 * sample_normal(rng),
                ))
            .normalized();
            let trial = prev + trial_dir * b;
            let clash = pos
                .iter()
                .take(k.saturating_sub(1)) // skip the direct predecessor
                .any(|&p| p.dist(trial) < min_separation);
            if !clash {
                pos.push(trial);
                dir = trial_dir;
                placed = true;
                break;
            }
        }
        if !placed {
            // Fall back to extending straight out — always clash-free for a
            // walk that got stuck in a pocket, since it moves away from the
            // centre of mass.
            let com: Vec3 = pos.iter().copied().sum::<Vec3>() / pos.len() as f64;
            let out = (prev - com).normalized();
            let out = if out == Vec3::ZERO {
                random_unit(rng)
            } else {
                out
            };
            pos.push(prev + out * b);
            dir = out;
        }
    }
    pos
}

fn random_unit(rng: &mut SimRng) -> Vec3 {
    loop {
        let v = v3(sample_normal(rng), sample_normal(rng), sample_normal(rng));
        if v.norm2() > 1e-12 {
            return v.normalized();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn extended_chain_has_exact_bond_lengths() {
        let bonds = vec![3.8; 34];
        let pos = extended_chain(&bonds);
        assert_eq!(pos.len(), 35);
        for i in 0..34 {
            let d = pos[i].dist(pos[i + 1]);
            assert!((d - 3.8).abs() < 1e-12, "bond {i}: {d}");
        }
    }

    #[test]
    fn extended_chain_is_extended() {
        let bonds = vec![3.8; 34];
        let pos = extended_chain(&bonds);
        let end_to_end = pos[0].dist(pos[34]);
        // cos(25°) ≈ 0.906: end-to-end ≈ 0.906 * contour length.
        assert!(end_to_end > 0.85 * 34.0 * 3.8, "end-to-end = {end_to_end}");
    }

    #[test]
    fn extended_chain_avoids_collinearity() {
        let bonds = vec![1.0; 10];
        let pos = extended_chain(&bonds);
        for i in 1..pos.len() - 1 {
            let a = (pos[i - 1] - pos[i]).normalized();
            let b = (pos[i + 1] - pos[i]).normalized();
            assert!(a.dot(b).abs() < 0.999, "collinear at bead {i}");
        }
    }

    #[test]
    fn self_avoiding_chain_respects_bond_lengths() {
        let bonds = vec![3.8; 34];
        let mut rng = rng_from_seed(9);
        let pos = self_avoiding_chain(&bonds, 4.0, &mut rng);
        assert_eq!(pos.len(), 35);
        for i in 0..34 {
            let d = pos[i].dist(pos[i + 1]);
            assert!((d - 3.8).abs() < 1e-9, "bond {i}: {d}");
        }
    }

    #[test]
    fn self_avoiding_chain_mostly_avoids_clashes() {
        let bonds = vec![3.8; 34];
        let mut rng = rng_from_seed(12);
        let pos = self_avoiding_chain(&bonds, 4.0, &mut rng);
        let mut clashes = 0;
        for i in 0..pos.len() {
            for j in (i + 2)..pos.len() {
                if pos[i].dist(pos[j]) < 4.0 {
                    clashes += 1;
                }
            }
        }
        // The fallback path may allow a handful; the walk must not be
        // collapsed.
        assert!(clashes <= 3, "too many steric clashes: {clashes}");
    }

    #[test]
    fn different_seeds_give_different_coils() {
        let bonds = vec![3.8; 20];
        let mut r1 = rng_from_seed(1);
        let mut r2 = rng_from_seed(2);
        let a = self_avoiding_chain(&bonds, 4.0, &mut r1);
        let b = self_avoiding_chain(&bonds, 4.0, &mut r2);
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_reproduces() {
        let bonds = vec![3.8; 20];
        let a = self_avoiding_chain(&bonds, 4.0, &mut rng_from_seed(33));
        let b = self_avoiding_chain(&bonds, 4.0, &mut rng_from_seed(33));
        assert_eq!(a, b);
    }
}
