//! Ready-made molecular systems.
//!
//! - [`villin`]: the coarse-grained Gō-model stand-in for the paper's
//!   9,864-atom villin headpiece (HP35 35-NleNle) — see DESIGN.md for the
//!   substitution argument.
//! - [`chain`]: unfolded-conformation generation (the paper's nine
//!   extended starting structures).
//! - [`ljfluid`]: an all-atom-style Lennard-Jones fluid used to exercise
//!   the periodic non-bonded path (neighbour lists, reaction field,
//!   thermostats).

pub mod chain;
pub mod ljfluid;
pub mod villin;

pub use chain::{extended_chain, self_avoiding_chain};
pub use ljfluid::{lj_fluid, LjFluidSpec};
pub use villin::{VillinModel, VillinParams};
