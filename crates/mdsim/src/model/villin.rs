//! Coarse-grained Gō model of the villin headpiece subdomain (HP35).
//!
//! One bead per residue (35 beads), a synthetic three-helix-bundle native
//! structure generated from ideal Cα-helix geometry, and a
//! structure-based potential whose global minimum is that structure:
//! native bonds/angles/dihedrals plus 12-10 native-contact wells
//! ([`GoModelForce`]). Lengths are in ångström-like units (Cα–Cα virtual
//! bond ≈ 3.8), so RMSD values are directly comparable to the paper's
//! figures.

use crate::engine::Simulation;
use crate::forces::{BondedForce, ForceField, GoContact, GoModelForce};
use crate::integrate::Langevin;
use crate::model::chain::{extended_chain, self_avoiding_chain};
use crate::pbc::SimBox;
use crate::rng::{rng_for_stream, rng_from_seed};
use crate::state::State;
use crate::topology::{LjParams, Particle, Topology};
use crate::vec3::{v3, Vec3};
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;
use std::sync::Arc;

/// Tunable parameters of the Gō model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VillinParams {
    /// Number of residues (beads). HP35 has 35.
    pub n_residues: usize,
    /// Depth of each native-contact well (sets the energy scale ε).
    pub eps_contact: f64,
    /// Non-native excluded-volume strength.
    pub eps_rep: f64,
    /// Non-native excluded-volume range (Å).
    pub sigma_rep: f64,
    /// Native-contact distance cutoff (Å).
    pub contact_cutoff: f64,
    /// Minimum sequence separation for non-local pairs.
    pub min_seq_sep: usize,
    /// Bond force constant (ε/Å²).
    pub bond_k: f64,
    /// Angle force constant (ε/rad²).
    pub angle_k: f64,
    /// Dihedral force constants for the n=1 and n=3 terms.
    pub dihedral_k1: f64,
    pub dihedral_k3: f64,
    /// Bead mass.
    pub mass: f64,
    /// Langevin friction (1/τ).
    pub gamma: f64,
    /// Integration time step (τ).
    pub dt: f64,
    /// Default simulation temperature (ε/kB). The model's folding midpoint
    /// is near T ≈ 0.65–0.7; the default sits below it (like the paper's
    /// 300 K vs villin's ≈340 K melting temperature) so unfolded starts
    /// fold on sampling timescales.
    pub temperature: f64,
}

impl Default for VillinParams {
    fn default() -> Self {
        VillinParams {
            n_residues: 35,
            eps_contact: 1.0,
            eps_rep: 1.0,
            sigma_rep: 4.0,
            contact_cutoff: 8.0,
            min_seq_sep: 4,
            bond_k: 100.0,
            angle_k: 20.0,
            dihedral_k1: 0.3,
            dihedral_k3: 0.15,
            mass: 1.0,
            gamma: 0.2,
            dt: 0.01,
            temperature: 0.55,
        }
    }
}

/// The coarse-grained villin system: native structure, topology, contacts.
#[derive(Clone)]
pub struct VillinModel {
    pub params: VillinParams,
    pub topology: Arc<Topology>,
    pub native: Vec<Vec3>,
    pub contacts: Vec<GoContact>,
}

impl VillinModel {
    /// The default 35-residue model (the paper's HP35 35-NleNle analogue).
    pub fn hp35() -> Self {
        Self::with_params(VillinParams::default())
    }

    pub fn with_params(params: VillinParams) -> Self {
        let native = native_structure(params.n_residues);
        let contacts = derive_contacts(&native, params.min_seq_sep, params.contact_cutoff);
        let topology = Arc::new(build_topology(&native, &params));
        VillinModel {
            params,
            topology,
            native,
            contacts,
        }
    }

    pub fn n_beads(&self) -> usize {
        self.params.n_residues
    }

    pub fn n_contacts(&self) -> usize {
        self.contacts.len()
    }

    /// Native-structure bond lengths (for chain generators).
    pub fn bond_lengths(&self) -> Vec<f64> {
        self.native.windows(2).map(|w| w[0].dist(w[1])).collect()
    }

    /// The structure-based force field: bonded terms + Gō non-local terms.
    pub fn forcefield(&self) -> ForceField {
        ForceField::new()
            .with(Box::new(BondedForce::from_topology(&self.topology)))
            .with(Box::new(self.go_force()))
    }

    pub fn go_force(&self) -> GoModelForce {
        GoModelForce::new(
            self.n_beads(),
            self.contacts.clone(),
            self.params.min_seq_sep,
            self.params.eps_contact,
            self.params.eps_rep,
            self.params.sigma_rep,
        )
    }

    /// Fraction of native contacts formed (reaction coordinate Q).
    pub fn fraction_native(&self, positions: &[Vec3]) -> f64 {
        let formed = self
            .contacts
            .iter()
            .filter(|c| positions[c.i].dist(positions[c.j]) <= 1.2 * c.r_nat)
            .count();
        if self.contacts.is_empty() {
            0.0
        } else {
            formed as f64 / self.contacts.len() as f64
        }
    }

    /// A Langevin simulation of this model starting at `positions`.
    ///
    /// `seed` controls both initial velocities and the Langevin noise
    /// stream; identical seeds reproduce trajectories bitwise.
    pub fn simulation(&self, positions: Vec<Vec3>, temperature: f64, seed: u64) -> Simulation {
        let mut state = State::new(positions, &self.topology, SimBox::Open);
        let dof = self.topology.dof(3);
        let mut vel_rng = rng_for_stream(seed, 0x5e11);
        state.init_velocities(temperature, dof, &mut vel_rng);
        let integrator = Langevin::new(
            temperature,
            self.params.gamma,
            rng_for_stream(seed, 0x10_c4),
        );
        Simulation::new(
            state,
            self.forcefield(),
            Box::new(integrator),
            self.params.dt,
            dof,
        )
    }

    /// The native-state simulation (for reference runs / validation).
    pub fn native_simulation(&self, temperature: f64, seed: u64) -> Simulation {
        self.simulation(self.native.clone(), temperature, seed)
    }

    /// An unfolded starting structure: a self-avoiding coil with native
    /// bond lengths, distinct per seed (the paper's "nine unfolded
    /// conformations" are nine seeds).
    pub fn unfolded_start(&self, seed: u64) -> Vec<Vec3> {
        let mut rng = rng_from_seed(seed);
        self_avoiding_chain(&self.bond_lengths(), self.params.sigma_rep, &mut rng)
    }

    /// A fully extended starting structure.
    pub fn extended_start(&self) -> Vec<Vec3> {
        extended_chain(&self.bond_lengths())
    }
}

/// Generate a synthetic three-helix-bundle Cα trace.
///
/// Ideal Cα helix geometry (radius 2.3 Å, rise 1.5 Å/residue,
/// 100°/residue) for three helices whose axes form a triangle with
/// ~9.5 Å sides, connected by two-residue loops. For `n != 35` the helix
/// lengths are scaled proportionally.
fn native_structure(n: usize) -> Vec<Vec3> {
    assert!(
        n >= 12,
        "need at least 12 residues for a three-helix bundle"
    );
    // Partition residues: h1, loop(2), h2, loop(2), h3.
    let n_loops = 4;
    let h_total = n - n_loops;
    let h1 = h_total / 3;
    let h2 = h_total / 3;
    let h3 = h_total - h1 - h2;

    const R: f64 = 2.3;
    const RISE: f64 = 1.5;
    const OMEGA: f64 = 100.0 * PI / 180.0;
    let d = 9.5; // inter-axis distance

    // Helix centres (xy) and axis directions (±z).
    let c1 = v3(0.0, 0.0, 0.0);
    let c2 = v3(d, 0.0, 0.0);
    let c3 = v3(0.5 * d, d * 0.866, 0.0);

    let helix = |center: Vec3, up: bool, z0: f64, len: usize, phase: f64| -> Vec<Vec3> {
        (0..len)
            .map(|k| {
                let ang = OMEGA * k as f64 + phase;
                let dz = if up {
                    z0 + RISE * k as f64
                } else {
                    z0 - RISE * k as f64
                };
                v3(center.x + R * ang.cos(), center.y + R * ang.sin(), dz)
            })
            .collect()
    };

    let mut pos: Vec<Vec3> = Vec::with_capacity(n);
    // Helix 1: rising. Phase chosen so the first helix faces the bundle
    // core.
    let p1 = helix(c1, true, 0.0, h1, 0.0);
    let z_top = RISE * (h1 - 1) as f64;
    // Helix 2: descending from near the top of helix 1.
    let p2 = helix(c2, false, z_top, h2, PI);
    // Helix 3: rising again.
    let p3 = helix(c3, true, 1.0, h3, -PI / 2.0);

    pos.extend_from_slice(&p1);
    push_loop(&mut pos, *p1.last().unwrap(), p2[0], 2);
    pos.extend_from_slice(&p2);
    push_loop(&mut pos, *p2.last().unwrap(), p3[0], 2);
    pos.extend_from_slice(&p3);
    debug_assert_eq!(pos.len(), n);
    pos
}

/// Insert `k` loop residues between two helix endpoints, bulging slightly
/// outward so loop beads don't collide with the helices.
fn push_loop(pos: &mut Vec<Vec3>, from: Vec3, to: Vec3, k: usize) {
    let mid = (from + to) * 0.5;
    // Bulge direction: away from the origin-ish bundle core, plus up.
    let out = (mid - v3(4.75, 2.7, mid.z)).normalized() + v3(0.0, 0.0, 0.35);
    for i in 1..=k {
        let f = i as f64 / (k + 1) as f64;
        let along = from + (to - from) * f;
        let bulge = out * 0.8 * (PI * f).sin();
        pos.push(along + bulge);
    }
}

/// Native contacts: non-local pairs within the cutoff in the native state.
fn derive_contacts(native: &[Vec3], min_seq_sep: usize, cutoff: f64) -> Vec<GoContact> {
    let mut contacts = Vec::new();
    for i in 0..native.len() {
        for j in (i + min_seq_sep)..native.len() {
            let r = native[i].dist(native[j]);
            if r <= cutoff {
                contacts.push(GoContact { i, j, r_nat: r });
            }
        }
    }
    contacts
}

/// Topology with native-value bonded terms.
fn build_topology(native: &[Vec3], params: &VillinParams) -> Topology {
    let n = native.len();
    let mut top = Topology::new();
    for _ in 0..n {
        // LJ parameters unused by the Gō force field but kept meaningful.
        top.add_particle(Particle::neutral(
            params.mass,
            LjParams::new(params.sigma_rep, 0.0),
        ));
    }
    for i in 0..n - 1 {
        top.add_bond(i, i + 1, native[i].dist(native[i + 1]), params.bond_k);
    }
    for i in 0..n.saturating_sub(2) {
        let theta0 = bend_angle(native[i], native[i + 1], native[i + 2]);
        top.add_angle(i, i + 1, i + 2, theta0, params.angle_k);
    }
    for i in 0..n.saturating_sub(3) {
        let phi = torsion_angle(native[i], native[i + 1], native[i + 2], native[i + 3]);
        // V = k (1 + cos(m φ - φ0)) is minimal where m φ - φ0 = π.
        top.add_dihedral(i, i + 1, i + 2, i + 3, phi - PI, params.dihedral_k1, 1);
        top.add_dihedral(
            i,
            i + 1,
            i + 2,
            i + 3,
            3.0 * phi - PI,
            params.dihedral_k3,
            3,
        );
    }
    top
}

/// Bend angle at `b` for the triple a-b-c.
pub fn bend_angle(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    let u = (a - b).normalized();
    let w = (c - b).normalized();
    u.dot(w).clamp(-1.0, 1.0).acos()
}

/// Torsion angle of the quadruple a-b-c-d (IUPAC sign convention).
pub fn torsion_angle(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    let b1 = b - a;
    let b2 = c - b;
    let b3 = d - c;
    let n1 = b1.cross(b2);
    let n2 = b2.cross(b3);
    (n1.cross(n2).dot(b2) / b2.norm()).atan2(n1.dot(n2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_structure_has_reasonable_geometry() {
        let model = VillinModel::hp35();
        assert_eq!(model.n_beads(), 35);
        for (k, w) in model.native.windows(2).enumerate() {
            let d = w[0].dist(w[1]);
            assert!(
                (2.5..=5.5).contains(&d),
                "bond {k} has unphysical length {d}"
            );
        }
        // No severe steric clash between non-neighbours.
        for i in 0..35 {
            for j in (i + 2)..35 {
                let d = model.native[i].dist(model.native[j]);
                assert!(d > 3.0, "clash between beads {i} and {j}: {d}");
            }
        }
    }

    #[test]
    fn model_has_tertiary_contacts() {
        let model = VillinModel::hp35();
        let long_range = model.contacts.iter().filter(|c| c.j - c.i > 8).count();
        assert!(
            model.n_contacts() >= 40,
            "expected a rich contact map, got {}",
            model.n_contacts()
        );
        assert!(
            long_range >= 10,
            "expected inter-helix contacts, got {long_range}"
        );
    }

    #[test]
    fn native_state_is_near_mechanical_equilibrium() {
        let model = VillinModel::hp35();
        let mut ff = model.forcefield();
        let mut forces = vec![Vec3::ZERO; model.n_beads()];
        ff.compute(&model.native, &SimBox::Open, &mut forces);
        let max_f = forces.iter().map(|f| f.max_abs()).fold(0.0, f64::max);
        // Bonded terms vanish exactly in the native structure; only the
        // soft non-native repulsion perturbs it.
        assert!(
            max_f < 2.0,
            "native-state residual force too large: {max_f}"
        );
    }

    #[test]
    fn q_is_one_in_native_and_low_when_extended() {
        let model = VillinModel::hp35();
        assert!(model.fraction_native(&model.native) > 0.99);
        let q_ext = model.fraction_native(&model.extended_start());
        assert!(q_ext < 0.35, "extended Q = {q_ext}");
    }

    #[test]
    fn native_state_is_stable_at_low_temperature() {
        let model = VillinModel::hp35();
        let mut sim = model.native_simulation(0.4, 7);
        sim.run(4000);
        let q = model.fraction_native(&sim.state.positions);
        assert!(q > 0.8, "native run unfolded: Q = {q}");
        assert!(sim.state.is_finite());
    }

    #[test]
    fn unfolded_start_is_unfolded_and_reproducible() {
        let model = VillinModel::hp35();
        let a = model.unfolded_start(1);
        let b = model.unfolded_start(1);
        let c = model.unfolded_start(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(model.fraction_native(&a) < 0.4);
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let model = VillinModel::hp35();
        let start = model.unfolded_start(3);
        let mut s1 = model.simulation(start.clone(), 0.9, 11);
        let mut s2 = model.simulation(start, 0.9, 11);
        s1.run(200);
        s2.run(200);
        assert_eq!(s1.state.positions, s2.state.positions);
    }

    #[test]
    fn torsion_angle_sign_convention() {
        // A right-handed 90° twist.
        let a = v3(1.0, 0.0, 0.0);
        let b = v3(0.0, 0.0, 0.0);
        let c = v3(0.0, 0.0, 1.0);
        let d = v3(0.0, 1.0, 1.0);
        let phi = torsion_angle(a, b, c, d);
        assert!((phi.abs() - PI / 2.0).abs() < 1e-12);
        // Trans is π.
        let d_trans = v3(-1.0, 0.0, 1.0);
        assert!((torsion_angle(a, b, c, d_trans).abs() - PI).abs() < 1e-12);
    }

    #[test]
    fn bend_angle_values() {
        let a = v3(1.0, 0.0, 0.0);
        let b = Vec3::ZERO;
        let c = v3(0.0, 1.0, 0.0);
        assert!((bend_angle(a, b, c) - PI / 2.0).abs() < 1e-12);
        assert!((bend_angle(a, b, v3(-1.0, 0.0, 0.0)) - PI).abs() < 1e-12);
    }

    #[test]
    fn smaller_models_build() {
        let params = VillinParams {
            n_residues: 16,
            ..VillinParams::default()
        };
        let model = VillinModel::with_params(params);
        assert_eq!(model.n_beads(), 16);
        assert!(model.n_contacts() > 0);
    }
}
