//! Lennard-Jones fluid builder.
//!
//! The all-atom-style test system: periodic box, shifted LJ with optional
//! reaction-field electrostatics, thermostatted velocity Verlet. Exercises
//! the neighbour-list, PBC and threading paths that the coarse-grained
//! folding model does not.

use crate::engine::Simulation;
use crate::forces::{ForceField, NonbondedForce};
use crate::integrate::VelocityVerlet;
use crate::pbc::SimBox;
use crate::rng::rng_for_stream;
use crate::state::State;
use crate::thermostat::VRescale;
use crate::topology::{LjParams, Particle, Topology};
use crate::vec3::v3;
use std::sync::Arc;

/// Specification of an LJ fluid in reduced units (σ = ε = m = 1).
#[derive(Debug, Clone, Copy)]
pub struct LjFluidSpec {
    pub n_particles: usize,
    /// Number density ρσ³.
    pub density: f64,
    /// Temperature in ε/kB.
    pub temperature: f64,
    /// Interaction cutoff in σ.
    pub cutoff: f64,
    /// Verlet buffer in σ.
    pub skin: f64,
    /// Per-particle charge magnitude; particles alternate ±q (kept 0 for a
    /// plain LJ fluid).
    pub charge: f64,
    /// Integration time step in τ.
    pub dt: f64,
    /// Enable the rayon-threaded pair loop.
    pub threaded: bool,
    /// Pair count above which the threaded pair loop engages (when
    /// `threaded` is set at all).
    pub parallel_threshold: usize,
    /// Run the pre-packing reference kernel (benchmark baseline).
    pub use_reference: bool,
}

impl Default for LjFluidSpec {
    fn default() -> Self {
        LjFluidSpec {
            n_particles: 256,
            density: 0.8,
            temperature: 1.0,
            cutoff: 2.5,
            skin: 0.3,
            charge: 0.0,
            dt: 0.004,
            threaded: true,
            parallel_threshold: crate::forces::nonbonded::DEFAULT_PAIR_PARALLEL_THRESHOLD,
            use_reference: false,
        }
    }
}

/// Build an equilibration-ready LJ fluid simulation.
///
/// Particles start on a simple cubic lattice (no overlaps) with
/// Maxwell-Boltzmann velocities; temperature is held with the stochastic
/// velocity-rescale thermostat.
pub fn lj_fluid(spec: LjFluidSpec, seed: u64) -> Simulation {
    assert!(spec.n_particles > 0 && spec.density > 0.0);
    let volume = spec.n_particles as f64 / spec.density;
    let l = volume.cbrt();
    let sim_box = SimBox::cubic(l);

    let mut top = Topology::new();
    for k in 0..spec.n_particles {
        let q = if k % 2 == 0 {
            spec.charge
        } else {
            -spec.charge
        };
        top.add_particle(Particle::new(1.0, q, LjParams::new(1.0, 1.0)));
    }
    let top = Arc::new(top);

    // Simple cubic lattice with enough sites.
    let per_side = (spec.n_particles as f64).cbrt().ceil() as usize;
    let spacing = l / per_side as f64;
    let mut positions = Vec::with_capacity(spec.n_particles);
    'fill: for ix in 0..per_side {
        for iy in 0..per_side {
            for iz in 0..per_side {
                if positions.len() == spec.n_particles {
                    break 'fill;
                }
                positions.push(v3(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                ));
            }
        }
    }

    let mut nb = NonbondedForce::new(top.clone(), spec.cutoff, spec.skin, 78.0);
    nb.set_threading(spec.threaded);
    nb.set_parallel_threshold(spec.parallel_threshold);
    nb.set_reference_kernel(spec.use_reference);
    let ff = ForceField::new().with(Box::new(nb));

    let mut state = State::new(positions, &top, sim_box);
    let dof = top.dof(3);
    let mut vel_rng = rng_for_stream(seed, 0xf1);
    state.init_velocities(spec.temperature, dof, &mut vel_rng);

    let thermostat = VRescale::new(spec.temperature, 0.2, rng_for_stream(seed, 0xf2));
    Simulation::new(
        state,
        ff,
        Box::new(VelocityVerlet::nvt(Box::new(thermostat))),
        spec.dt,
        dof,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_has_no_overlaps() {
        let sim = lj_fluid(LjFluidSpec::default(), 1);
        let n = sim.state.n_particles();
        assert_eq!(n, 256);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sim
                    .state
                    .sim_box
                    .dist(sim.state.positions[i], sim.state.positions[j]);
                assert!(d > 0.7, "particles {i},{j} overlap: {d}");
            }
        }
    }

    #[test]
    fn fluid_equilibrates_to_target_temperature() {
        let spec = LjFluidSpec {
            n_particles: 216,
            temperature: 1.2,
            threaded: false,
            ..LjFluidSpec::default()
        };
        let mut sim = lj_fluid(spec, 2);
        sim.run(300);
        let dof = sim.dof();
        let mut t_sum = 0.0;
        let n_samp = 300;
        sim.run_with(n_samp, |_, state, _| {
            t_sum += state.temperature(dof);
        });
        let t_avg = t_sum / n_samp as f64;
        assert!(
            (t_avg - 1.2).abs() < 0.1,
            "LJ fluid temperature: {t_avg}, target 1.2"
        );
        assert!(sim.state.is_finite());
    }

    #[test]
    fn liquid_potential_energy_is_negative() {
        // At ρ=0.8, T=1.0 the LJ liquid is cohesive: U/N ≈ -5…-6 ε.
        let mut sim = lj_fluid(
            LjFluidSpec {
                n_particles: 216,
                threaded: false,
                ..LjFluidSpec::default()
            },
            3,
        );
        sim.run(500);
        let u_per_n = sim.potential_energy() / 216.0;
        assert!(
            (-7.0..=-3.0).contains(&u_per_n),
            "U/N = {u_per_n}, expected a cohesive liquid"
        );
    }

    #[test]
    fn box_size_matches_density() {
        let sim = lj_fluid(
            LjFluidSpec {
                n_particles: 100,
                density: 0.5,
                ..LjFluidSpec::default()
            },
            4,
        );
        let v = sim.state.sim_box.volume().unwrap();
        assert!((100.0 / v - 0.5).abs() < 1e-9);
    }
}
