//! Unit conventions.
//!
//! The engine works in *reduced units*: the Boltzmann constant is 1, so
//! temperature is measured in energy units. For the coarse-grained villin
//! model, lengths are calibrated so one unit is 1 Å (the Cα–Cα virtual bond
//! is 3.8), which lets RMSD values be quoted in ångströms like the paper.
//! Time is measured in the intrinsic unit τ = sqrt(m σ²/ε); the mapping to
//! the paper's nanoseconds is a fixed, documented conversion
//! ([`TAU_PER_NS`]), chosen so a "50 ns" Copernicus segment is a laptop-scale
//! number of integration steps.

/// Boltzmann constant in reduced units.
pub const KB: f64 = 1.0;

/// Intrinsic time units per nominal "nanosecond" of the coarse-grained
/// villin model. Calibrated so the model's mean first-folding time
/// (≈480 τ at T = 0.55) maps to the ≈600 ns villin folding time the paper
/// reports. With dt = 0.01 τ, one nominal ns is 80 integration steps, so a
/// 50-ns Copernicus segment is 4,000 steps.
pub const TAU_PER_NS: f64 = 0.8;

/// Convert a nominal trajectory length in "ns" to integration steps.
pub fn ns_to_steps(ns: f64, dt: f64) -> u64 {
    assert!(dt > 0.0, "dt must be positive");
    (ns * TAU_PER_NS / dt).round() as u64
}

/// Convert a number of integration steps to nominal "ns".
pub fn steps_to_ns(steps: u64, dt: f64) -> f64 {
    steps as f64 * dt / TAU_PER_NS
}

/// Instantaneous kinetic temperature from kinetic energy and degrees of
/// freedom: `T = 2 Ekin / (kB · dof)`.
pub fn kinetic_temperature(ekin: f64, dof: usize) -> f64 {
    if dof == 0 {
        0.0
    } else {
        2.0 * ekin / (KB * dof as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_step_roundtrip() {
        let dt = 0.01;
        let steps = ns_to_steps(50.0, dt);
        assert_eq!(steps, 4000);
        assert!((steps_to_ns(steps, dt) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_from_kinetic_energy() {
        // Ekin = dof/2 kB T  =>  T = 2 Ekin / dof.
        assert!((kinetic_temperature(15.0, 30) - 1.0).abs() < 1e-12);
        assert_eq!(kinetic_temperature(1.0, 0), 0.0);
    }
}
