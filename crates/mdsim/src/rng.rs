//! Deterministic random-number helpers.
//!
//! All stochastic components (initial velocities, Langevin noise, unfolded
//! conformation generation) draw from a seeded ChaCha8 stream so every
//! Copernicus command is exactly reproducible from `(seed, step)` — the
//! property that lets a worker resume another worker's checkpoint, as §2.3
//! of the paper requires.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The engine's RNG type.
pub type SimRng = ChaCha8Rng;

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derive a stream-separated RNG for a substream (e.g. one trajectory of a
/// project): mixes `seed` and `stream` through SplitMix64 so nearby stream
/// ids give statistically independent sequences.
pub fn rng_for_stream(seed: u64, stream: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(stream)))
}

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit hash.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Sample a standard normal deviate via the Box-Muller transform.
#[inline]
pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
    // Reject u1 == 0 so ln(u1) is finite.
    let mut u1: f64 = rng.random();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.random();
    }
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a normal deviate with the given mean and standard deviation.
#[inline]
pub fn sample_gaussian<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * sample_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = rng_for_stream(7, 0);
        let mut b = rng_for_stream(7, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(123);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn gaussian_shifts_and_scales() {
        let mut rng = rng_from_seed(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sample_gaussian(&mut rng, 3.0, 2.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn splitmix_avalanche() {
        // Adjacent inputs produce very different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
