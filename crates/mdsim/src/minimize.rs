//! Energy minimization: steepest descent with adaptive step size, the
//! standard preparation step before dynamics (relaxes steric clashes in
//! generated starting structures).

use crate::forces::ForceField;
use crate::pbc::SimBox;
use crate::vec3::Vec3;

/// Result of a minimization.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    pub initial_energy: f64,
    pub final_energy: f64,
    pub iterations: usize,
    /// Largest force component at exit.
    pub max_force: f64,
    pub converged: bool,
}

/// Steepest-descent minimization in place.
///
/// Takes downhill steps of adaptive length (grow 1.2× on success, shrink
/// 0.5× on an uphill trial, Gromacs-style) until the largest force
/// component drops below `f_tol` or `max_iter` iterations pass.
pub fn steepest_descent(
    positions: &mut [Vec3],
    forcefield: &mut ForceField,
    sim_box: &SimBox,
    f_tol: f64,
    max_iter: usize,
) -> MinimizeResult {
    assert!(f_tol > 0.0);
    let n = positions.len();
    let mut forces = vec![Vec3::ZERO; n];
    let mut energy = forcefield.compute(positions, sim_box, &mut forces).total();
    let initial_energy = energy;

    let mut step = 0.01;
    let mut iterations = 0;
    let mut max_f = max_component(&forces);

    for _ in 0..max_iter {
        if max_f <= f_tol {
            break;
        }
        iterations += 1;
        // Trial move along the force direction, scaled so the largest
        // displacement is `step`.
        let scale = step / max_f;
        let trial: Vec<Vec3> = positions
            .iter()
            .zip(&forces)
            .map(|(p, f)| *p + *f * scale)
            .collect();
        let mut trial_forces = vec![Vec3::ZERO; n];
        let trial_energy = forcefield
            .compute(&trial, sim_box, &mut trial_forces)
            .total();
        if trial_energy < energy {
            positions.copy_from_slice(&trial);
            forces = trial_forces;
            energy = trial_energy;
            max_f = max_component(&forces);
            step *= 1.2;
        } else {
            step *= 0.5;
            if step < 1e-12 {
                break; // stuck at numerical precision
            }
        }
    }

    MinimizeResult {
        initial_energy,
        final_energy: energy,
        iterations,
        max_force: max_f,
        converged: max_f <= f_tol,
    }
}

fn max_component(forces: &[Vec3]) -> f64 {
    forces.iter().map(|f| f.max_abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::{BondedForce, HarmonicRestraint};
    use crate::topology::{LjParams, Particle, Topology};
    use crate::vec3::v3;

    #[test]
    fn quadratic_well_minimizes_to_center() {
        let mut ff = ForceField::new().with(Box::new(HarmonicRestraint::new(
            vec![(0, v3(1.0, -2.0, 3.0))],
            5.0,
        )));
        let mut pos = vec![v3(10.0, 10.0, 10.0)];
        let result = steepest_descent(&mut pos, &mut ff, &SimBox::Open, 1e-8, 10_000);
        assert!(result.converged, "did not converge: {result:?}");
        assert!((pos[0] - v3(1.0, -2.0, 3.0)).norm() < 1e-6);
        assert!(result.final_energy < 1e-10);
        assert!(result.final_energy <= result.initial_energy);
    }

    #[test]
    fn stretched_chain_relaxes_to_bond_lengths() {
        let mut top = Topology::new();
        for _ in 0..5 {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        for i in 0..4 {
            top.add_bond(i, i + 1, 1.0, 100.0);
        }
        let mut ff = ForceField::new().with(Box::new(BondedForce::from_topology(&top)));
        // Over-stretched chain (spacing 1.8).
        let mut pos: Vec<_> = (0..5).map(|i| v3(i as f64 * 1.8, 0.0, 0.0)).collect();
        let result = steepest_descent(&mut pos, &mut ff, &SimBox::Open, 1e-6, 50_000);
        assert!(result.converged, "{result:?}");
        for w in pos.windows(2) {
            assert!((w[0].dist(w[1]) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn villin_unfolded_start_relaxes_downhill() {
        use crate::model::villin::VillinModel;
        let model = VillinModel::hp35();
        let mut ff = model.forcefield();
        let mut pos = model.unfolded_start(5);
        let result = steepest_descent(&mut pos, &mut ff, &SimBox::Open, 1e-3, 2_000);
        assert!(result.final_energy < result.initial_energy);
        assert!(pos.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn already_minimal_exits_immediately() {
        let mut ff =
            ForceField::new().with(Box::new(HarmonicRestraint::new(vec![(0, Vec3::ZERO)], 1.0)));
        let mut pos = vec![Vec3::ZERO];
        let result = steepest_descent(&mut pos, &mut ff, &SimBox::Open, 1e-6, 100);
        assert_eq!(result.iterations, 0);
        assert!(result.converged);
    }
}
