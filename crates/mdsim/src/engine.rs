//! The simulation engine: the Gromacs-equivalent "command" a Copernicus
//! worker executes.
//!
//! [`Simulation`] ties a [`State`], a [`ForceField`] and an [`Integrator`]
//! together, runs for a requested number of steps, records trajectory
//! frames, and can checkpoint/resume — the property §2.3 of the paper relies
//! on for transparent worker fail-over.

use crate::forces::{Energies, ForceField, KernelConfig, KernelStats};
use crate::integrate::Integrator;
use crate::state::State;
use crate::trajectory::Trajectory;
use copernicus_telemetry::{NullSink, StepPhase, TelemetrySink};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A point-in-time snapshot sufficient to continue a run on another worker.
///
/// The checkpoint deliberately contains only the dynamic state plus the
/// clock; the static setup (topology, force field, integrator parameters)
/// is rebuilt from the command specification, mirroring Gromacs'
/// `.tpr` + `.cpt` split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub state: State,
    /// Steps completed when the checkpoint was taken.
    pub step: u64,
    /// Seed stream to reinitialize stochastic integrators deterministically.
    pub rng_reseed: u64,
}

impl Checkpoint {
    /// Wire encoding (hand-rolled: checkpoints travel inside command
    /// payloads and the shared filesystem, see `crate::jsonv`).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "state": self.state.to_value(),
            "step": self.step,
            "rng_reseed": self.rng_reseed,
        })
    }

    pub fn from_value(v: &serde_json::Value) -> Result<Checkpoint, String> {
        Ok(Checkpoint {
            state: State::from_value(crate::jsonv::field(v, "state")?)?,
            step: crate::jsonv::int(v, "step")?,
            rng_reseed: crate::jsonv::int(v, "rng_reseed")?,
        })
    }

    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    pub fn from_json(s: &str) -> Result<Checkpoint, String> {
        let v: serde_json::Value =
            serde_json::from_str(s).map_err(|e| format!("checkpoint is not JSON: {e}"))?;
        Checkpoint::from_value(&v)
    }
}

/// Summary statistics of a completed run segment.
#[derive(Debug, Clone)]
pub struct RunStats {
    pub steps: u64,
    pub final_potential: f64,
    pub final_kinetic: f64,
    pub mean_potential: f64,
    pub neighbor_rebuilds: u64,
}

/// A runnable MD simulation.
pub struct Simulation {
    pub state: State,
    pub forcefield: ForceField,
    integrator: Box<dyn Integrator>,
    pub dt: f64,
    dof: usize,
    last_energies: Option<Energies>,
}

impl Simulation {
    pub fn new(
        state: State,
        forcefield: ForceField,
        integrator: Box<dyn Integrator>,
        dt: f64,
        dof: usize,
    ) -> Self {
        assert!(dt > 0.0, "time step must be positive, got {dt}");
        let mut sim = Simulation {
            state,
            forcefield,
            integrator,
            dt,
            dof,
            last_energies: None,
        };
        sim.prime_forces();
        sim
    }

    /// Evaluate forces at the current positions (called once at
    /// construction and after a state restore).
    fn prime_forces(&mut self) {
        let (positions, sim_box) = (&self.state.positions, &self.state.sim_box);
        let energies = self
            .forcefield
            .compute(positions, sim_box, &mut self.state.forces);
        self.last_energies = Some(energies);
    }

    pub fn dof(&self) -> usize {
        self.dof
    }

    /// Push kernel tuning knobs (threading, parallel threshold, reference
    /// kernel) down to every force term.
    pub fn configure_kernel(&mut self, cfg: &KernelConfig) {
        self.forcefield.configure_kernel(cfg);
    }

    /// Aggregate kernel counters (pairs streamed, packed-list bytes)
    /// across the force field's instrumented terms.
    pub fn kernel_stats(&self) -> KernelStats {
        self.forcefield.kernel_stats()
    }

    /// Energy breakdown from the most recent force evaluation.
    pub fn energies(&self) -> &Energies {
        self.last_energies
            .as_ref()
            .expect("forces are primed at construction")
    }

    pub fn potential_energy(&self) -> f64 {
        self.energies().total()
    }

    pub fn total_energy(&self) -> f64 {
        self.potential_energy() + self.state.kinetic_energy()
    }

    /// Advance `n_steps` without recording frames.
    pub fn run(&mut self, n_steps: u64) -> RunStats {
        self.run_with(n_steps, |_, _, _| {})
    }

    /// Advance `n_steps`, invoking `observe(step, state, energies)` after
    /// every step.
    pub fn run_with(
        &mut self,
        n_steps: u64,
        observe: impl FnMut(u64, &State, &Energies),
    ) -> RunStats {
        self.run_with_sink(n_steps, &NullSink, observe)
    }

    /// Advance `n_steps`, streaming per-step force/integrate/neighbour
    /// timings into `sink`. With [`NullSink`] (`S::ENABLED == false`) the
    /// instrumentation compiles out and this is exactly [`Self::run_with`]
    /// — the inner loop carries no timing branches.
    pub fn run_with_sink<S: TelemetrySink>(
        &mut self,
        n_steps: u64,
        sink: &S,
        mut observe: impl FnMut(u64, &State, &Energies),
    ) -> RunStats {
        let (builds_before, _) = self.forcefield.neighbor_stats();
        let mut builds_seen = builds_before;
        if S::ENABLED {
            self.forcefield.set_timing(true);
            // Drain anything a previous timed run left behind.
            self.forcefield.take_force_ns();
            self.forcefield.take_neighbor_ns();
        }
        let mut pot_sum = 0.0;
        for _ in 0..n_steps {
            let step_start = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            let energies =
                self.integrator
                    .step(&mut self.state, &mut self.forcefield, self.dt, self.dof);
            if S::ENABLED {
                let step_ns = step_start
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0);
                let neighbor_ns = self.forcefield.take_neighbor_ns();
                // ForceField::compute measures the whole evaluation,
                // neighbour refresh included; report the pure pair-loop
                // time and let integration be the remainder of the step.
                let force_ns = self.forcefield.take_force_ns().saturating_sub(neighbor_ns);
                sink.record_phase_ns(StepPhase::Force, force_ns);
                sink.record_phase_ns(
                    StepPhase::Integrate,
                    step_ns.saturating_sub(force_ns + neighbor_ns),
                );
                if neighbor_ns > 0 {
                    sink.record_phase_ns(StepPhase::Neighbor, neighbor_ns);
                }
                let (builds_now, _) = self.forcefield.neighbor_stats();
                for _ in builds_seen..builds_now {
                    sink.record_neighbor_rebuild();
                }
                builds_seen = builds_now;
            }
            pot_sum += energies.total();
            observe(self.state.step, &self.state, &energies);
            self.last_energies = Some(energies);
        }
        if S::ENABLED {
            self.forcefield.set_timing(false);
        }
        let (builds_after, _) = self.forcefield.neighbor_stats();
        RunStats {
            steps: n_steps,
            final_potential: self.potential_energy(),
            final_kinetic: self.state.kinetic_energy(),
            mean_potential: if n_steps > 0 {
                pot_sum / n_steps as f64
            } else {
                self.potential_energy()
            },
            neighbor_rebuilds: builds_after - builds_before,
        }
    }

    /// Advance `n_steps` on the force-only fast path: no energy breakdown
    /// is assembled per step, so terms with a dedicated force-only kernel
    /// (the non-bonded pair loop) skip energy arithmetic entirely. The
    /// trajectory is bitwise identical to [`Self::run`]; a single full
    /// evaluation at the end refreshes [`Self::energies`], so the final
    /// potential in [`RunStats`] is exact. `mean_potential` is not
    /// accumulated (it would cost the energies) and reports the final
    /// potential instead.
    pub fn run_fast(&mut self, n_steps: u64) -> RunStats {
        self.run_fast_with_sink(n_steps, &NullSink, |_, _| {})
    }

    /// [`Self::run_fast`] with per-step timings streamed into `sink` and
    /// `observe(step, state)` invoked after every step. The observer gets
    /// no energies — that is the point of the fast path; use
    /// [`Self::run_with_sink`] when an observable reads them.
    pub fn run_fast_with_sink<S: TelemetrySink>(
        &mut self,
        n_steps: u64,
        sink: &S,
        mut observe: impl FnMut(u64, &State),
    ) -> RunStats {
        let (builds_before, _) = self.forcefield.neighbor_stats();
        let mut builds_seen = builds_before;
        if S::ENABLED {
            self.forcefield.set_timing(true);
            self.forcefield.take_force_ns();
            self.forcefield.take_neighbor_ns();
        }
        for _ in 0..n_steps {
            let step_start = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            self.integrator.step_force_only(
                &mut self.state,
                &mut self.forcefield,
                self.dt,
                self.dof,
            );
            if S::ENABLED {
                let step_ns = step_start
                    .map(|t| t.elapsed().as_nanos() as u64)
                    .unwrap_or(0);
                let neighbor_ns = self.forcefield.take_neighbor_ns();
                let force_ns = self.forcefield.take_force_ns().saturating_sub(neighbor_ns);
                sink.record_phase_ns(StepPhase::Force, force_ns);
                sink.record_phase_ns(
                    StepPhase::Integrate,
                    step_ns.saturating_sub(force_ns + neighbor_ns),
                );
                if neighbor_ns > 0 {
                    sink.record_phase_ns(StepPhase::Neighbor, neighbor_ns);
                }
                let (builds_now, _) = self.forcefield.neighbor_stats();
                for _ in builds_seen..builds_now {
                    sink.record_neighbor_rebuild();
                }
                builds_seen = builds_now;
            }
            observe(self.state.step, &self.state);
        }
        if S::ENABLED {
            self.forcefield.set_timing(false);
        }
        // One full evaluation refreshes the energy breakdown; forces are
        // bitwise unchanged (force-only == full forces), so the dynamic
        // state stays identical to the slow path.
        if n_steps > 0 {
            self.prime_forces();
        }
        let (builds_after, _) = self.forcefield.neighbor_stats();
        RunStats {
            steps: n_steps,
            final_potential: self.potential_energy(),
            final_kinetic: self.state.kinetic_energy(),
            mean_potential: self.potential_energy(),
            neighbor_rebuilds: builds_after - builds_before,
        }
    }

    /// Advance `n_steps`, recording a frame every `record_interval` steps
    /// (plus the initial frame at the current time).
    pub fn run_recording(&mut self, n_steps: u64, record_interval: u64) -> Trajectory {
        self.run_recording_with_sink(n_steps, record_interval, &NullSink)
    }

    /// [`Self::run_recording`] with per-step timings streamed into `sink`.
    ///
    /// Frame recording reads only positions, so this rides the force-only
    /// fast path — energies are skipped on every step and refreshed once
    /// at the end of the segment.
    pub fn run_recording_with_sink<S: TelemetrySink>(
        &mut self,
        n_steps: u64,
        record_interval: u64,
        sink: &S,
    ) -> Trajectory {
        assert!(record_interval > 0, "record interval must be positive");
        let expected = (n_steps / record_interval + 2) as usize;
        let mut traj = Trajectory::with_capacity(expected);
        traj.push(self.state.time, self.state.positions.clone());
        let mut count = 0u64;
        self.run_fast_with_sink(n_steps, sink, |_, state| {
            count += 1;
            if count % record_interval == 0 {
                traj.push(state.time, state.positions.clone());
            }
        });
        traj
    }

    /// Take a checkpoint of the dynamic state.
    pub fn checkpoint(&self, rng_reseed: u64) -> Checkpoint {
        Checkpoint {
            state: self.state.clone(),
            step: self.state.step,
            rng_reseed,
        }
    }

    /// Restore the dynamic state from a checkpoint. The caller is
    /// responsible for rebuilding stochastic integrators with
    /// `checkpoint.rng_reseed` (see the `model` builders).
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        assert_eq!(
            checkpoint.state.n_particles(),
            self.state.n_particles(),
            "checkpoint particle count mismatch"
        );
        self.state = checkpoint.state.clone();
        self.prime_forces();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::HarmonicRestraint;
    use crate::integrate::{Langevin, VelocityVerlet};
    use crate::pbc::SimBox;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle, Topology};
    use crate::vec3::{v3, Vec3};

    fn oscillator() -> Simulation {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        let state = State::new(vec![v3(1.0, 0.0, 0.0)], &top, SimBox::Open);
        let ff =
            ForceField::new().with(Box::new(HarmonicRestraint::new(vec![(0, Vec3::ZERO)], 1.0)));
        Simulation::new(state, ff, Box::new(VelocityVerlet::nve()), 0.01, 3)
    }

    #[test]
    fn forces_are_primed_at_construction() {
        let sim = oscillator();
        assert!((sim.state.forces[0].x + 1.0).abs() < 1e-12);
        assert!((sim.potential_energy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn run_advances_and_reports() {
        let mut sim = oscillator();
        let stats = sim.run(100);
        assert_eq!(stats.steps, 100);
        assert_eq!(sim.state.step, 100);
        assert!(stats.mean_potential > 0.0);
        // NVE total energy conserved.
        assert!((sim.total_energy() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn recording_interval_counts_frames() {
        let mut sim = oscillator();
        let traj = sim.run_recording(100, 10);
        // initial frame + 10 recorded frames
        assert_eq!(traj.len(), 11);
        assert_eq!(traj.time(0), 0.0);
        assert!((traj.time(10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_every_step() {
        let mut sim = oscillator();
        let mut seen = 0;
        sim.run_with(50, |_, _, _| seen += 1);
        assert_eq!(seen, 50);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identically() {
        let mut sim = oscillator();
        sim.run(37);
        let cp = sim.checkpoint(42);
        let json = cp.to_json();
        let cp2 = Checkpoint::from_json(&json).unwrap();
        assert_eq!(cp2.step, 37);
        assert_eq!(cp2.rng_reseed, 42);

        // Continue the original 10 more steps.
        sim.run(10);
        let pos_direct = sim.state.positions[0];

        // Restore a fresh simulation from the checkpoint and continue.
        let mut sim2 = oscillator();
        sim2.restore(&cp2);
        assert_eq!(sim2.state.step, 37);
        sim2.run(10);
        let pos_resumed = sim2.state.positions[0];

        // Deterministic integrator ⇒ bitwise-identical continuation.
        assert_eq!(pos_direct, pos_resumed);
    }

    #[test]
    fn langevin_engine_runs_stably() {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        let state = State::new(vec![v3(1.0, 0.0, 0.0)], &top, SimBox::Open);
        let ff =
            ForceField::new().with(Box::new(HarmonicRestraint::new(vec![(0, Vec3::ZERO)], 1.0)));
        let mut sim = Simulation::new(
            state,
            ff,
            Box::new(Langevin::new(1.0, 1.0, rng_from_seed(5))),
            0.01,
            3,
        );
        sim.run(1000);
        assert!(sim.state.is_finite());
    }

    #[test]
    fn recording_sink_sees_every_step() {
        use copernicus_telemetry::Telemetry;
        let t = Telemetry::new();
        let sink = t.step_sink(copernicus_telemetry::Labels::new());
        let mut sim = oscillator();
        let stats = sim.run_with_sink(50, &sink, |_, _, _| {});
        assert_eq!(stats.steps, 50);
        assert_eq!(sink.force_ns.count(), 50);
        assert_eq!(sink.integrate_ns.count(), 50);
        // No neighbour list in the oscillator: no neighbour samples.
        assert_eq!(sink.neighbor_ns.count(), 0);
        assert_eq!(stats.neighbor_rebuilds, 0);
        // The sink path must not leave the force field in timing mode.
        assert_eq!(sim.forcefield.take_force_ns(), 0);
        sim.run(10);
        assert_eq!(sim.forcefield.take_force_ns(), 0);
    }

    #[test]
    fn neighbor_rebuilds_are_counted() {
        use crate::model::{lj_fluid, LjFluidSpec};
        let mut sim = lj_fluid(
            LjFluidSpec {
                n_particles: 64,
                density: 0.6,
                temperature: 1.5,
                cutoff: 1.8,
                skin: 0.2,
                threaded: false,
                ..LjFluidSpec::default()
            },
            7,
        );
        // The initial build happens at construction (prime_forces), so a
        // segment long enough to exhaust the skin must rebuild at least
        // once and RunStats must report it.
        let stats = sim.run(400);
        assert!(
            stats.neighbor_rebuilds >= 1,
            "expected rebuilds over 400 hot steps, got {}",
            stats.neighbor_rebuilds
        );
    }

    #[test]
    fn fast_path_matches_full_path_bitwise() {
        use crate::model::{lj_fluid, LjFluidSpec};
        let spec = LjFluidSpec {
            n_particles: 64,
            density: 0.6,
            temperature: 1.5,
            cutoff: 1.8,
            skin: 0.2,
            threaded: false,
            ..LjFluidSpec::default()
        };
        let mut full = lj_fluid(spec, 7);
        let mut fast = lj_fluid(spec, 7);
        full.run(50);
        let stats = fast.run_fast(50);
        assert_eq!(stats.steps, 50);
        // Bitwise-identical trajectory and refreshed energies.
        assert_eq!(full.state.positions, fast.state.positions);
        assert_eq!(full.state.velocities, fast.state.velocities);
        assert_eq!(full.state.forces, fast.state.forces);
        assert_eq!(full.potential_energy(), fast.potential_energy());
    }

    #[test]
    fn recording_rides_fast_path_identically() {
        use crate::model::{lj_fluid, LjFluidSpec};
        let spec = LjFluidSpec {
            n_particles: 64,
            density: 0.6,
            temperature: 1.5,
            cutoff: 1.8,
            skin: 0.2,
            threaded: false,
            ..LjFluidSpec::default()
        };
        let mut plain = lj_fluid(spec, 3);
        let mut recording = lj_fluid(spec, 3);
        plain.run(40);
        let traj = recording.run_recording(40, 10);
        assert_eq!(traj.len(), 5);
        assert_eq!(plain.state.positions, recording.state.positions);
        assert_eq!(
            traj.frame(traj.len() - 1),
            recording.state.positions.as_slice()
        );
    }

    #[test]
    fn kernel_config_is_plumbed_to_terms() {
        use crate::model::{lj_fluid, LjFluidSpec};
        let mut sim = lj_fluid(
            LjFluidSpec {
                n_particles: 64,
                density: 0.6,
                temperature: 1.5,
                cutoff: 1.8,
                skin: 0.2,
                threaded: false,
                ..LjFluidSpec::default()
            },
            1,
        );
        sim.configure_kernel(&KernelConfig {
            threaded: false,
            parallel_threshold: 123,
            use_reference: false,
        });
        sim.run(5);
        let stats = sim.kernel_stats();
        assert!(stats.pairs_evaluated > 0, "pair counter should advance");
        assert!(stats.packed_bytes > 0, "packed list should be resident");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dt() {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        let state = State::new(vec![Vec3::ZERO], &top, SimBox::Open);
        let _ = Simulation::new(
            state,
            ForceField::new(),
            Box::new(VelocityVerlet::nve()),
            0.0,
            3,
        );
    }
}
