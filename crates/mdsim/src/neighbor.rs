//! Verlet neighbour list with cell-list construction.
//!
//! The list stores all non-excluded pairs within `cutoff + skin` and is
//! rebuilt only when some particle has moved more than `skin / 2` since the
//! last build — the standard Verlet-buffer scheme used by Gromacs. For
//! periodic boxes large enough to hold a 3×3×3 cell grid the build is O(N)
//! via binning; otherwise it falls back to the exact O(N²) double loop
//! (always correct, and faster for the small coarse-grained systems).

use crate::pbc::SimBox;
use crate::topology::Topology;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Pair list with automatic rebuild tracking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborList {
    cutoff: f64,
    skin: f64,
    pairs: Vec<(u32, u32)>,
    ref_positions: Vec<Vec3>,
    n_builds: u64,
    n_updates: u64,
}

impl NeighborList {
    /// `cutoff` is the interaction cutoff; `skin` the Verlet buffer width.
    pub fn new(cutoff: f64, skin: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive, got {cutoff}");
        assert!(skin >= 0.0, "skin must be non-negative, got {skin}");
        NeighborList {
            cutoff,
            skin,
            pairs: Vec::new(),
            ref_positions: Vec::new(),
            n_builds: 0,
            n_updates: 0,
        }
    }

    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// The pair list from the last build. Pairs are `(i, j)` with `i < j`.
    /// Distances are guaranteed ≤ `cutoff + skin` *at build time*; callers
    /// must still apply the true cutoff when evaluating interactions.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// How many times the list has been (re)built.
    pub fn n_builds(&self) -> u64 {
        self.n_builds
    }

    /// How many times `update` has been called.
    pub fn n_updates(&self) -> u64 {
        self.n_updates
    }

    /// Rebuild the list if any particle moved more than `skin/2` since the
    /// last build (or if it was never built). Returns `true` on rebuild.
    pub fn update(&mut self, positions: &[Vec3], bx: &SimBox, top: &Topology) -> bool {
        self.n_updates += 1;
        if !self.needs_rebuild(positions, bx) {
            return false;
        }
        self.build(positions, bx, top);
        true
    }

    /// Force an unconditional rebuild.
    pub fn build(&mut self, positions: &[Vec3], bx: &SimBox, top: &Topology) {
        assert_eq!(
            positions.len(),
            top.n_particles(),
            "positions/topology length mismatch"
        );
        let r_list = self.cutoff + self.skin;
        if let Some(l) = bx.lengths() {
            assert!(
                r_list <= bx.max_cutoff() + 1e-12,
                "cutoff + skin ({r_list}) exceeds half the shortest box edge \
                 ({}); minimum image would be violated",
                bx.max_cutoff()
            );
            let n_cells = [
                (l.x / r_list).floor() as usize,
                (l.y / r_list).floor() as usize,
                (l.z / r_list).floor() as usize,
            ];
            if n_cells.iter().all(|&c| c >= 3) {
                self.build_celllist(positions, bx, top, n_cells);
            } else {
                self.build_allpairs(positions, bx, top);
            }
        } else {
            self.build_allpairs(positions, bx, top);
        }
        self.ref_positions.clear();
        self.ref_positions.extend_from_slice(positions);
        self.n_builds += 1;
    }

    fn needs_rebuild(&self, positions: &[Vec3], bx: &SimBox) -> bool {
        if self.ref_positions.len() != positions.len() {
            return true;
        }
        if self.skin == 0.0 {
            return true;
        }
        let half_skin2 = (0.5 * self.skin) * (0.5 * self.skin);
        positions
            .iter()
            .zip(&self.ref_positions)
            .any(|(&p, &q)| bx.dist2(p, q) > half_skin2)
    }

    fn build_allpairs(&mut self, positions: &[Vec3], bx: &SimBox, top: &Topology) {
        self.pairs.clear();
        let r2 = (self.cutoff + self.skin).powi(2);
        let n = positions.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if bx.dist2(positions[i], positions[j]) <= r2 && !top.is_excluded(i, j) {
                    self.pairs.push((i as u32, j as u32));
                }
            }
        }
    }

    fn build_celllist(
        &mut self,
        positions: &[Vec3],
        bx: &SimBox,
        top: &Topology,
        n_cells: [usize; 3],
    ) {
        self.pairs.clear();
        let l = bx.lengths().expect("cell list requires a periodic box");
        let r2 = (self.cutoff + self.skin).powi(2);
        let [nx, ny, nz] = n_cells;
        let total_cells = nx * ny * nz;

        // Bin particles.
        let cell_of = |p: Vec3| -> usize {
            let w = bx.wrap(p);
            let cx = ((w.x / l.x * nx as f64) as usize).min(nx - 1);
            let cy = ((w.y / l.y * ny as f64) as usize).min(ny - 1);
            let cz = ((w.z / l.z * nz as f64) as usize).min(nz - 1);
            (cz * ny + cy) * nx + cx
        };
        let mut heads: Vec<i64> = vec![-1; total_cells];
        let mut next: Vec<i64> = vec![-1; positions.len()];
        for (i, &p) in positions.iter().enumerate() {
            let c = cell_of(p);
            next[i] = heads[c];
            heads[c] = i as i64;
        }

        // Half stencil: self cell + 13 unique neighbours.
        let stencil: [(i64, i64, i64); 14] = [
            (0, 0, 0),
            (1, 0, 0),
            (-1, 1, 0),
            (0, 1, 0),
            (1, 1, 0),
            (-1, -1, 1),
            (0, -1, 1),
            (1, -1, 1),
            (-1, 0, 1),
            (0, 0, 1),
            (1, 0, 1),
            (-1, 1, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];

        let wrap_idx = |i: i64, n: usize| -> usize {
            (((i % n as i64) + n as i64) % n as i64) as usize
        };

        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let c0 = (cz * ny + cy) * nx + cx;
                    for &(dx, dy, dz) in &stencil {
                        let c1 = (wrap_idx(cz as i64 + dz, nz) * ny
                            + wrap_idx(cy as i64 + dy, ny))
                            * nx
                            + wrap_idx(cx as i64 + dx, nx);
                        let same_cell = c0 == c1;
                        let mut i = heads[c0];
                        while i >= 0 {
                            let mut j = if same_cell { next[i as usize] } else { heads[c1] };
                            while j >= 0 {
                                let (a, b) = (i as usize, j as usize);
                                if bx.dist2(positions[a], positions[b]) <= r2
                                    && !top.is_excluded(a, b)
                                {
                                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                                    self.pairs.push((lo as u32, hi as u32));
                                }
                                j = next[j as usize];
                            }
                            i = next[i as usize];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn free_top(n: usize) -> Topology {
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        top
    }

    fn random_positions(n: usize, l: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                v3(
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                )
            })
            .collect()
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn celllist_matches_allpairs_periodic() {
        let n = 400;
        let l = 12.0;
        let bx = SimBox::cubic(l);
        let top = free_top(n);
        let pos = random_positions(n, l, 42);

        let mut nl_cell = NeighborList::new(2.0, 0.4);
        nl_cell.build(&pos, &bx, &top);

        // Reference: brute force.
        let mut reference = Vec::new();
        let r2 = (2.4_f64).powi(2);
        for i in 0..n {
            for j in (i + 1)..n {
                if bx.dist2(pos[i], pos[j]) <= r2 {
                    reference.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(sorted(nl_cell.pairs().to_vec()), sorted(reference));
    }

    #[test]
    fn open_box_allpairs() {
        let top = free_top(3);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0), v3(10.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.0);
        nl.build(&pos, &SimBox::Open, &top);
        assert_eq!(nl.pairs(), &[(0, 1)]);
    }

    #[test]
    fn exclusions_are_filtered() {
        let mut top = free_top(3);
        top.add_exclusion(0, 1);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0), v3(1.5, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.0);
        nl.build(&pos, &SimBox::Open, &top);
        assert_eq!(sorted(nl.pairs().to_vec()), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn no_rebuild_for_small_moves() {
        let top = free_top(2);
        let mut pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 1.0);
        assert!(nl.update(&pos, &SimBox::Open, &top));
        // Move less than skin/2 = 0.5 → no rebuild.
        pos[1].x += 0.3;
        assert!(!nl.update(&pos, &SimBox::Open, &top));
        // Move beyond skin/2 → rebuild.
        pos[1].x += 0.4;
        assert!(nl.update(&pos, &SimBox::Open, &top));
        assert_eq!(nl.n_builds(), 2);
        assert_eq!(nl.n_updates(), 3);
    }

    #[test]
    fn zero_skin_always_rebuilds() {
        let top = free_top(2);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.0);
        assert!(nl.update(&pos, &SimBox::Open, &top));
        assert!(nl.update(&pos, &SimBox::Open, &top));
    }

    #[test]
    fn buffered_list_covers_moves_within_skin() {
        // Particles just outside cutoff but within cutoff+skin must be
        // listed so they are found after drifting inward without a rebuild.
        let top = free_top(2);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(2.2, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.5);
        nl.build(&pos, &SimBox::Open, &top);
        assert_eq!(nl.pairs(), &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "minimum image")]
    fn rejects_cutoff_larger_than_half_box() {
        let top = free_top(2);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(3.0, 0.5);
        nl.build(&pos, &SimBox::cubic(6.0), &top);
    }

    #[test]
    fn small_periodic_box_falls_back_to_allpairs() {
        // Box too small for a 3x3x3 grid at this cutoff: must still agree
        // with brute force.
        let n = 60;
        let l = 5.0;
        let bx = SimBox::cubic(l);
        let top = free_top(n);
        let pos = random_positions(n, l, 7);
        let mut nl = NeighborList::new(2.0, 0.3);
        nl.build(&pos, &bx, &top);
        let r2 = (2.3_f64).powi(2);
        let mut reference = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if bx.dist2(pos[i], pos[j]) <= r2 {
                    reference.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(sorted(nl.pairs().to_vec()), sorted(reference));
    }
}
