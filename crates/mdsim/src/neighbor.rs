//! Verlet neighbour list with cell-list construction.
//!
//! The list stores all non-excluded pairs within `cutoff + skin` and is
//! rebuilt only when some particle has moved more than `skin / 2` since the
//! last build — the standard Verlet-buffer scheme used by Gromacs. For
//! periodic boxes large enough to hold a 3×3×3 cell grid the build is O(N)
//! via binning; otherwise it falls back to the exact O(N²) double loop
//! (always correct, and faster for the small coarse-grained systems).
//!
//! The cell path bins particles with a counting sort into contiguous
//! per-cell slabs (`sorted_pos` / `order`), so the candidate sweep streams
//! dense position arrays instead of chasing linked-list pointers. Distance
//! filtering over a slab runs four candidates at a time on AVX2
//! ([`filter_slab_avx2`]), with a scalar fallback that performs the same
//! arithmetic; accepted candidates are then exclusion-checked and emitted.
//!
//! Above [`NeighborList::set_parallel_threshold`] particles, both the
//! displacement check (`needs_rebuild`) and the cell-list pair emission run
//! on the rayon pool. The parallel build stripes the flattened cell index
//! range across a fixed number of tasks and concatenates the per-task pair
//! vectors *in stripe order*, so the resulting pair list is byte-identical
//! to the serial build regardless of work stealing.

use crate::pbc::SimBox;
use crate::topology::Topology;
use crate::vec3::{v3, Vec3};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Particle count above which list maintenance uses the rayon pool.
pub const DEFAULT_PARALLEL_BUILD_THRESHOLD: usize = 2000;

fn default_par_threshold() -> usize {
    DEFAULT_PARALLEL_BUILD_THRESHOLD
}

/// Pair list with automatic rebuild tracking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborList {
    cutoff: f64,
    skin: f64,
    pairs: Vec<(u32, u32)>,
    ref_positions: Vec<Vec3>,
    n_builds: u64,
    n_updates: u64,
    /// Minimum particle count before builds/rebuild checks go parallel.
    #[serde(default = "default_par_threshold")]
    par_threshold: usize,
}

impl NeighborList {
    /// `cutoff` is the interaction cutoff; `skin` the Verlet buffer width.
    pub fn new(cutoff: f64, skin: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive, got {cutoff}");
        assert!(skin >= 0.0, "skin must be non-negative, got {skin}");
        NeighborList {
            cutoff,
            skin,
            pairs: Vec::new(),
            ref_positions: Vec::new(),
            n_builds: 0,
            n_updates: 0,
            par_threshold: DEFAULT_PARALLEL_BUILD_THRESHOLD,
        }
    }

    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// Particle count above which the build and the rebuild check use the
    /// rayon pool. `usize::MAX` disables threading entirely; `0` forces it
    /// (useful in tests).
    pub fn set_parallel_threshold(&mut self, threshold: usize) -> &mut Self {
        self.par_threshold = threshold;
        self
    }

    /// The pair list from the last build. Pairs are `(i, j)` with `i < j`.
    /// Distances are guaranteed ≤ `cutoff + skin` *at build time*; callers
    /// must still apply the true cutoff when evaluating interactions.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// How many times the list has been (re)built.
    pub fn n_builds(&self) -> u64 {
        self.n_builds
    }

    /// How many times `update` has been called.
    pub fn n_updates(&self) -> u64 {
        self.n_updates
    }

    /// Approximate heap footprint of the pair list in bytes.
    pub fn pair_bytes(&self) -> u64 {
        (self.pairs.capacity() * std::mem::size_of::<(u32, u32)>()) as u64
    }

    /// Rebuild the list if any particle moved more than `skin/2` since the
    /// last build (or if it was never built). Returns `true` on rebuild.
    pub fn update(&mut self, positions: &[Vec3], bx: &SimBox, top: &Topology) -> bool {
        self.n_updates += 1;
        if !self.needs_rebuild(positions, bx) {
            return false;
        }
        self.build(positions, bx, top);
        true
    }

    /// Force an unconditional rebuild.
    pub fn build(&mut self, positions: &[Vec3], bx: &SimBox, top: &Topology) {
        assert_eq!(
            positions.len(),
            top.n_particles(),
            "positions/topology length mismatch"
        );
        let r_list = self.cutoff + self.skin;
        if let Some(l) = bx.lengths() {
            assert!(
                r_list <= bx.max_cutoff() + 1e-12,
                "cutoff + skin ({r_list}) exceeds half the shortest box edge \
                 ({}); minimum image would be violated",
                bx.max_cutoff()
            );
            let n_cells = [
                (l.x / r_list).floor() as usize,
                (l.y / r_list).floor() as usize,
                (l.z / r_list).floor() as usize,
            ];
            if n_cells.iter().all(|&c| c >= 3) {
                self.build_celllist(positions, bx, top, n_cells);
            } else {
                self.build_allpairs(positions, bx, top);
            }
        } else {
            self.build_allpairs(positions, bx, top);
        }
        self.ref_positions.clear();
        self.ref_positions.extend_from_slice(positions);
        self.n_builds += 1;
    }

    /// Has any particle drifted more than `skin/2` from its position at the
    /// last build? Both paths exit on the first offending particle: the
    /// serial scan short-circuits via `any`, and the parallel scan uses
    /// rayon's cooperative `any`, which cancels outstanding splits once one
    /// task finds a mover.
    fn needs_rebuild(&self, positions: &[Vec3], bx: &SimBox) -> bool {
        if self.ref_positions.len() != positions.len() {
            return true;
        }
        if self.skin == 0.0 {
            return true;
        }
        let half_skin2 = (0.5 * self.skin) * (0.5 * self.skin);
        if positions.len() >= self.par_threshold {
            positions
                .par_iter()
                .zip(self.ref_positions.par_iter())
                .any(|(&p, &q)| bx.dist2(p, q) > half_skin2)
        } else {
            positions
                .iter()
                .zip(&self.ref_positions)
                .any(|(&p, &q)| bx.dist2(p, q) > half_skin2)
        }
    }

    fn build_allpairs(&mut self, positions: &[Vec3], bx: &SimBox, top: &Topology) {
        self.pairs.clear();
        let r2 = (self.cutoff + self.skin).powi(2);
        let n = positions.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if bx.dist2(positions[i], positions[j]) <= r2 && !top.is_excluded(i, j) {
                    self.pairs.push((i as u32, j as u32));
                }
            }
        }
    }

    fn build_celllist(
        &mut self,
        positions: &[Vec3],
        bx: &SimBox,
        top: &Topology,
        n_cells: [usize; 3],
    ) {
        self.pairs.clear();
        let l = bx.lengths().expect("cell list requires a periodic box");
        let inv_l = v3(1.0 / l.x, 1.0 / l.y, 1.0 / l.z);
        let r2 = (self.cutoff + self.skin).powi(2);
        let [nx, ny, nz] = n_cells;
        let total_cells = nx * ny * nz;

        // Counting sort into contiguous per-cell slabs: after the passes
        // below, cell `c` owns `order[count[c]..count[c+1]]` (original
        // particle indices) and the matching `sorted_pos` range. Serial
        // O(N) — the candidate sweep below dominates the build.
        let n = positions.len();
        let cell_of = |p: Vec3| -> usize {
            let w = bx.wrap(p);
            let cx = ((w.x * inv_l.x * nx as f64) as usize).min(nx - 1);
            let cy = ((w.y * inv_l.y * ny as f64) as usize).min(ny - 1);
            let cz = ((w.z * inv_l.z * nz as f64) as usize).min(nz - 1);
            (cz * ny + cy) * nx + cx
        };
        let mut count = vec![0u32; total_cells + 1];
        let mut cell_idx = vec![0u32; n];
        for (i, &p) in positions.iter().enumerate() {
            let c = cell_of(p);
            cell_idx[i] = c as u32;
            count[c + 1] += 1;
        }
        for c in 0..total_cells {
            count[c + 1] += count[c];
        }
        let mut cursor = count.clone();
        let mut order = vec![0u32; n];
        let mut sorted_pos = vec![Vec3::ZERO; n];
        for (i, &c) in cell_idx.iter().enumerate() {
            let dst = cursor[c as usize] as usize;
            order[dst] = i as u32;
            sorted_pos[dst] = positions[i];
            cursor[c as usize] += 1;
        }

        // Half stencil: self cell + 13 unique neighbours.
        let stencil: [(i64, i64, i64); 14] = [
            (0, 0, 0),
            (1, 0, 0),
            (-1, 1, 0),
            (0, 1, 0),
            (1, 1, 0),
            (-1, -1, 1),
            (0, -1, 1),
            (1, -1, 1),
            (-1, 0, 1),
            (0, 0, 1),
            (1, 0, 1),
            (-1, 1, 1),
            (0, 1, 1),
            (1, 1, 1),
        ];

        let wrap_idx =
            |i: i64, n: usize| -> usize { (((i % n as i64) + n as i64) % n as i64) as usize };

        // Emit every pair whose first member is binned in flattened cell
        // `c0`. Shared verbatim by the serial and the striped parallel
        // paths so they produce identical lists.
        let count = &count;
        let order = &order;
        let sorted_pos = &sorted_pos;
        let ctx = &SweepCtx { l, inv_l, r2, top };
        let emit_cell = |c0: usize, out: &mut Vec<(u32, u32)>| {
            let (s0, e0) = (count[c0] as usize, count[c0 + 1] as usize);
            if s0 == e0 {
                return;
            }
            let cx = c0 % nx;
            let cy = (c0 / nx) % ny;
            let cz = c0 / (nx * ny);
            for &(dx, dy, dz) in &stencil {
                let c1 = (wrap_idx(cz as i64 + dz, nz) * ny + wrap_idx(cy as i64 + dy, ny)) * nx
                    + wrap_idx(cx as i64 + dx, nx);
                if c0 == c1 {
                    // Self cell: each particle against the ones after it.
                    for a in s0..e0 {
                        filter_slab(
                            sorted_pos[a],
                            order[a],
                            &sorted_pos[a + 1..e0],
                            &order[a + 1..e0],
                            ctx,
                            out,
                        );
                    }
                } else {
                    let (s1, e1) = (count[c1] as usize, count[c1 + 1] as usize);
                    if s1 == e1 {
                        continue;
                    }
                    for a in s0..e0 {
                        filter_slab(
                            sorted_pos[a],
                            order[a],
                            &sorted_pos[s1..e1],
                            &order[s1..e1],
                            ctx,
                            out,
                        );
                    }
                }
            }
        };

        if positions.len() >= self.par_threshold {
            // Stripe the cell range over a fixed task count; an ordered
            // indexed collect keeps the concatenation deterministic no
            // matter how rayon schedules the stripes.
            let n_tasks = rayon::current_num_threads().max(1).min(total_cells.max(1));
            let cells_per = total_cells.div_ceil(n_tasks).max(1);
            let per_task: Vec<Vec<(u32, u32)>> = (0..n_tasks)
                .into_par_iter()
                .map(|t| {
                    let lo = t * cells_per;
                    let hi = ((t + 1) * cells_per).min(total_cells);
                    let mut out = Vec::new();
                    for c0 in lo..hi {
                        emit_cell(c0, &mut out);
                    }
                    out
                })
                .collect();
            for mut chunk in per_task {
                self.pairs.append(&mut chunk);
            }
        } else {
            let mut out = std::mem::take(&mut self.pairs);
            for c0 in 0..total_cells {
                emit_cell(c0, &mut out);
            }
            self.pairs = out;
        }
    }
}

/// Geometry and exclusion context shared by the sweep's candidate filters.
struct SweepCtx<'a> {
    l: Vec3,
    inv_l: Vec3,
    r2: f64,
    top: &'a Topology,
}

/// Exclusion-check an accepted candidate and emit it as an ordered pair.
#[inline(always)]
fn push_pair(ia: u32, jb: u32, top: &Topology, out: &mut Vec<(u32, u32)>) {
    if !top.is_excluded(ia as usize, jb as usize) {
        let (lo, hi) = if ia < jb { (ia, jb) } else { (jb, ia) };
        out.push((lo, hi));
    }
}

/// Distance-test particle `ia` at `pa` against one contiguous cell slab and
/// emit accepted pairs. Minimum image uses the multiply form
/// `d − L·round(d/L)` with a precomputed `1/L`; for any candidate within
/// `cutoff + skin` (≤ a third of the box edge on the cell path) this is
/// bitwise identical to the division form, so the pair set matches the
/// O(N²) reference build exactly.
fn filter_slab_scalar(
    pa: Vec3,
    ia: u32,
    slab_pos: &[Vec3],
    slab_order: &[u32],
    ctx: &SweepCtx<'_>,
    out: &mut Vec<(u32, u32)>,
) {
    for (k, &pb) in slab_pos.iter().enumerate() {
        let d = pa - pb;
        let x = d.x - ctx.l.x * (d.x * ctx.inv_l.x).round();
        let y = d.y - ctx.l.y * (d.y * ctx.inv_l.y).round();
        let z = d.z - ctx.l.z * (d.z * ctx.inv_l.z).round();
        if x * x + y * y + z * z <= ctx.r2 {
            push_pair(ia, slab_order[k], ctx.top, out);
        }
    }
}

/// Four slab candidates per iteration on AVX2. The sweep is pure
/// filtering — the expensive part is the minimum-image distance, which
/// vectorizes cleanly; survivors (a few percent of candidates) drop to a
/// scalar movemask loop for the exclusion check and push. Lane arithmetic
/// matches [`filter_slab_scalar`] operation for operation, so the emitted
/// pair set is identical.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn filter_slab_avx2(
    pa: Vec3,
    ia: u32,
    slab_pos: &[Vec3],
    slab_order: &[u32],
    ctx: &SweepCtx<'_>,
    out: &mut Vec<(u32, u32)>,
) {
    use core::arch::x86_64::*;

    let round =
        |v: __m256d| _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(v);
    let (pax, pay, paz) = (
        _mm256_set1_pd(pa.x),
        _mm256_set1_pd(pa.y),
        _mm256_set1_pd(pa.z),
    );
    let (lx, ly, lz) = (
        _mm256_set1_pd(ctx.l.x),
        _mm256_set1_pd(ctx.l.y),
        _mm256_set1_pd(ctx.l.z),
    );
    let (inv_lx, inv_ly, inv_lz) = (
        _mm256_set1_pd(ctx.inv_l.x),
        _mm256_set1_pd(ctx.inv_l.y),
        _mm256_set1_pd(ctx.inv_l.z),
    );
    let r2v = _mm256_set1_pd(ctx.r2);

    let mut blocks = slab_pos.chunks_exact(4);
    let mut base = 0usize;
    for block in &mut blocks {
        let (b0, b1, b2, b3) = (block[0], block[1], block[2], block[3]);
        let mut dx = _mm256_sub_pd(pax, _mm256_set_pd(b3.x, b2.x, b1.x, b0.x));
        let mut dy = _mm256_sub_pd(pay, _mm256_set_pd(b3.y, b2.y, b1.y, b0.y));
        let mut dz = _mm256_sub_pd(paz, _mm256_set_pd(b3.z, b2.z, b1.z, b0.z));
        dx = _mm256_sub_pd(dx, _mm256_mul_pd(lx, round(_mm256_mul_pd(dx, inv_lx))));
        dy = _mm256_sub_pd(dy, _mm256_mul_pd(ly, round(_mm256_mul_pd(dy, inv_ly))));
        dz = _mm256_sub_pd(dz, _mm256_mul_pd(lz, round(_mm256_mul_pd(dz, inv_lz))));
        let r2 = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
            _mm256_mul_pd(dz, dz),
        );
        let mut bits = _mm256_movemask_pd(_mm256_cmp_pd::<{ _CMP_LE_OQ }>(r2, r2v)) as u32;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            push_pair(ia, slab_order[base + lane], ctx.top, out);
        }
        base += 4;
    }
    filter_slab_scalar(pa, ia, blocks.remainder(), &slab_order[base..], ctx, out);
}

/// Filter one cell slab with the widest kernel the host supports. Kernel
/// selection is per-host but stable within a run, and both kernels accept
/// the exact same candidates, so the pair list does not depend on it.
#[inline]
fn filter_slab(
    pa: Vec3,
    ia: u32,
    slab_pos: &[Vec3],
    slab_order: &[u32],
    ctx: &SweepCtx<'_>,
    out: &mut Vec<(u32, u32)>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { filter_slab_avx2(pa, ia, slab_pos, slab_order, ctx, out) };
            return;
        }
    }
    filter_slab_scalar(pa, ia, slab_pos, slab_order, ctx, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn free_top(n: usize) -> Topology {
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        top
    }

    fn random_positions(n: usize, l: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                v3(
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                )
            })
            .collect()
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    fn brute_force(positions: &[Vec3], bx: &SimBox, r_list: f64) -> Vec<(u32, u32)> {
        let r2 = r_list * r_list;
        let mut reference = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if bx.dist2(positions[i], positions[j]) <= r2 {
                    reference.push((i as u32, j as u32));
                }
            }
        }
        reference
    }

    #[test]
    fn celllist_matches_allpairs_periodic() {
        let n = 400;
        let l = 12.0;
        let bx = SimBox::cubic(l);
        let top = free_top(n);
        let pos = random_positions(n, l, 42);

        let mut nl_cell = NeighborList::new(2.0, 0.4);
        nl_cell.build(&pos, &bx, &top);
        assert_eq!(
            sorted(nl_cell.pairs().to_vec()),
            sorted(brute_force(&pos, &bx, 2.4))
        );
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let n = 400;
        let l = 12.0;
        let bx = SimBox::cubic(l);
        let top = free_top(n);
        let pos = random_positions(n, l, 9);

        let mut serial = NeighborList::new(2.0, 0.4);
        serial.set_parallel_threshold(usize::MAX);
        serial.build(&pos, &bx, &top);

        let mut parallel = NeighborList::new(2.0, 0.4);
        parallel.set_parallel_threshold(0);
        parallel.build(&pos, &bx, &top);

        // Not just the same set: the same order (deterministic striping).
        assert_eq!(serial.pairs(), parallel.pairs());
    }

    #[test]
    fn degenerate_three_cell_grid_with_boundary_particles() {
        // Exactly 3 cells per dimension (L = 6, cutoff + skin = 2) — the
        // smallest grid the cell path accepts, where the ±1 stencil wraps
        // onto every cell along each axis. Particles sit exactly on cell
        // boundaries (0, 2, 4, 6 ≡ 0) and just off them, which exercises
        // wrap-aliasing in the binning and the stencil.
        let l = 6.0;
        let bx = SimBox::cubic(l);
        let boundary = [0.0, 2.0, 4.0, 6.0, 1.9999999999, 2.0000000001];
        let mut pos = Vec::new();
        for &x in &boundary {
            for &y in &boundary {
                pos.push(v3(x, y, 0.0));
                pos.push(v3(x, y, 4.0));
            }
        }
        // A few interior particles so non-boundary interactions exist too.
        pos.extend_from_slice(&[v3(1.0, 1.0, 1.0), v3(5.0, 5.0, 5.0), v3(3.0, 0.5, 2.0)]);
        let top = free_top(pos.len());
        let reference = sorted(brute_force(&pos, &bx, 2.0));

        for threshold in [usize::MAX, 0] {
            let mut nl = NeighborList::new(1.7, 0.3);
            nl.set_parallel_threshold(threshold);
            nl.build(&pos, &bx, &top);
            // Duplicate-free and identical to brute force in both the
            // serial and the parallel build.
            let got = sorted(nl.pairs().to_vec());
            let mut dedup = got.clone();
            dedup.dedup();
            assert_eq!(got.len(), dedup.len(), "duplicate pairs emitted");
            assert_eq!(got, reference, "threshold {threshold}");
        }
    }

    #[test]
    fn non_cubic_celllist_matches_brute_force() {
        // Distinct edge lengths exercise the per-axis l / 1/l in both the
        // binning and the slab filters (5 × 3 × 4 cells at r_list = 2.4).
        let bx = SimBox::ortho(14.0, 9.0, 11.0);
        let n = 500;
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                v3(
                    rng.random::<f64>() * 14.0,
                    rng.random::<f64>() * 9.0,
                    rng.random::<f64>() * 11.0,
                )
            })
            .collect();
        let top = free_top(n);
        let mut nl = NeighborList::new(2.0, 0.4);
        nl.build(&pos, &bx, &top);
        assert_eq!(
            sorted(nl.pairs().to_vec()),
            sorted(brute_force(&pos, &bx, 2.4))
        );
    }

    #[test]
    fn celllist_filters_exclusions() {
        // The open-box exclusion test only hits the all-pairs fallback;
        // this one forces the cell path (12³ box, 5 cells per dimension).
        let n = 200;
        let l = 12.0;
        let bx = SimBox::cubic(l);
        let pos = random_positions(n, l, 13);
        let mut top = free_top(n);
        for i in (0..n - 1).step_by(5) {
            top.add_exclusion(i, i + 1);
        }
        let mut nl = NeighborList::new(2.0, 0.4);
        nl.build(&pos, &bx, &top);
        let reference: Vec<(u32, u32)> = brute_force(&pos, &bx, 2.4)
            .into_iter()
            .filter(|&(i, j)| !top.is_excluded(i as usize, j as usize))
            .collect();
        assert_eq!(sorted(nl.pairs().to_vec()), sorted(reference));
    }

    #[test]
    fn parallel_needs_rebuild_matches_serial() {
        let n = 256;
        let l = 10.0;
        let bx = SimBox::cubic(l);
        let top = free_top(n);
        let mut pos = random_positions(n, l, 21);

        let mut nl = NeighborList::new(2.0, 1.0);
        nl.set_parallel_threshold(0); // force the parallel check
        assert!(nl.update(&pos, &bx, &top));
        assert!(!nl.update(&pos, &bx, &top), "no motion → no rebuild");
        pos[n - 1].x += 0.6; // beyond skin/2
        assert!(nl.update(&pos, &bx, &top), "mover must trigger rebuild");
    }

    #[test]
    fn open_box_allpairs() {
        let top = free_top(3);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0), v3(10.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.0);
        nl.build(&pos, &SimBox::Open, &top);
        assert_eq!(nl.pairs(), &[(0, 1)]);
    }

    #[test]
    fn exclusions_are_filtered() {
        let mut top = free_top(3);
        top.add_exclusion(0, 1);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0), v3(1.5, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.0);
        nl.build(&pos, &SimBox::Open, &top);
        assert_eq!(sorted(nl.pairs().to_vec()), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn no_rebuild_for_small_moves() {
        let top = free_top(2);
        let mut pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 1.0);
        assert!(nl.update(&pos, &SimBox::Open, &top));
        // Move less than skin/2 = 0.5 → no rebuild.
        pos[1].x += 0.3;
        assert!(!nl.update(&pos, &SimBox::Open, &top));
        // Move beyond skin/2 → rebuild.
        pos[1].x += 0.4;
        assert!(nl.update(&pos, &SimBox::Open, &top));
        assert_eq!(nl.n_builds(), 2);
        assert_eq!(nl.n_updates(), 3);
    }

    #[test]
    fn zero_skin_always_rebuilds() {
        let top = free_top(2);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.0);
        assert!(nl.update(&pos, &SimBox::Open, &top));
        assert!(nl.update(&pos, &SimBox::Open, &top));
    }

    #[test]
    fn buffered_list_covers_moves_within_skin() {
        // Particles just outside cutoff but within cutoff+skin must be
        // listed so they are found after drifting inward without a rebuild.
        let top = free_top(2);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(2.2, 0.0, 0.0)];
        let mut nl = NeighborList::new(2.0, 0.5);
        nl.build(&pos, &SimBox::Open, &top);
        assert_eq!(nl.pairs(), &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "minimum image")]
    fn rejects_cutoff_larger_than_half_box() {
        let top = free_top(2);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut nl = NeighborList::new(3.0, 0.5);
        nl.build(&pos, &SimBox::cubic(6.0), &top);
    }

    #[test]
    fn small_periodic_box_falls_back_to_allpairs() {
        // Box too small for a 3x3x3 grid at this cutoff: must still agree
        // with brute force.
        let n = 60;
        let l = 5.0;
        let bx = SimBox::cubic(l);
        let top = free_top(n);
        let pos = random_positions(n, l, 7);
        let mut nl = NeighborList::new(2.0, 0.3);
        nl.build(&pos, &bx, &top);
        assert_eq!(
            sorted(nl.pairs().to_vec()),
            sorted(brute_force(&pos, &bx, 2.3))
        );
    }
}
