//! Holonomic bond constraints: SHAKE position corrections and RATTLE
//! velocity projections.
//!
//! Constraining bond lengths removes the fastest oscillations and is what
//! lets production MD (the paper's villin runs use a 2 fs step with
//! constrained hydrogens) take longer time steps. The implementation is
//! the classic iterative SHAKE: after an unconstrained position update,
//! pair corrections along the *previous* bond vectors are applied until
//! every constraint is satisfied to tolerance; RATTLE removes the
//! velocity components along the constrained bonds.

use crate::forces::{Energies, ForceField};
use crate::integrate::Integrator;
use crate::state::State;
use crate::topology::Topology;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A set of pairwise distance constraints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Constraints {
    /// (i, j, target distance).
    bonds: Vec<(usize, usize, f64)>,
    /// Relative tolerance on the squared distances.
    pub tolerance: f64,
    /// Iteration cap per SHAKE call.
    pub max_iterations: usize,
}

impl Constraints {
    pub fn new(bonds: Vec<(usize, usize, f64)>) -> Self {
        for &(i, j, d) in &bonds {
            assert!(i != j, "cannot constrain a particle to itself");
            assert!(d > 0.0, "constraint distance must be positive");
        }
        Constraints {
            bonds,
            tolerance: 1e-8,
            max_iterations: 500,
        }
    }

    /// Constrain every bond of a topology to its rest length.
    pub fn all_bonds(top: &Topology) -> Self {
        Constraints::new(top.bonds.iter().map(|b| (b.i, b.j, b.r0)).collect())
    }

    pub fn len(&self) -> usize {
        self.bonds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bonds.is_empty()
    }

    /// Largest relative violation `| |r_ij| − d | / d`.
    pub fn max_violation(&self, positions: &[Vec3]) -> f64 {
        self.bonds
            .iter()
            .map(|&(i, j, d)| ((positions[i].dist(positions[j])) - d).abs() / d)
            .fold(0.0, f64::max)
    }

    /// SHAKE: correct `positions` so all constraints hold, using the
    /// pre-update geometry `reference` for the correction directions.
    /// Returns the number of sweeps used.
    pub fn shake(&self, reference: &[Vec3], positions: &mut [Vec3], inv_mass: &[f64]) -> usize {
        for sweep in 0..self.max_iterations {
            let mut converged = true;
            for &(i, j, d) in &self.bonds {
                let d2 = d * d;
                let r = positions[i] - positions[j];
                let diff = r.norm2() - d2;
                if diff.abs() > self.tolerance * d2 {
                    converged = false;
                    let r_ref = reference[i] - reference[j];
                    let denom = 2.0 * (inv_mass[i] + inv_mass[j]) * r.dot(r_ref);
                    if denom.abs() < 1e-12 {
                        // Degenerate geometry (perpendicular drift):
                        // correct along the current bond instead.
                        let g = diff / (2.0 * (inv_mass[i] + inv_mass[j]) * r.norm2());
                        positions[i] -= r * (g * inv_mass[i]);
                        positions[j] += r * (g * inv_mass[j]);
                    } else {
                        let g = diff / denom;
                        positions[i] -= r_ref * (g * inv_mass[i]);
                        positions[j] += r_ref * (g * inv_mass[j]);
                    }
                }
            }
            if converged {
                return sweep;
            }
        }
        self.max_iterations
    }

    /// RATTLE velocity stage: remove relative velocity components along
    /// each constrained bond.
    pub fn rattle_velocities(&self, positions: &[Vec3], velocities: &mut [Vec3], inv_mass: &[f64]) {
        for _ in 0..self.max_iterations {
            let mut converged = true;
            for &(i, j, d) in &self.bonds {
                let r = positions[i] - positions[j];
                let v_rel = velocities[i] - velocities[j];
                let proj = r.dot(v_rel);
                if proj.abs() > self.tolerance * d * d {
                    converged = false;
                    let k = proj / (r.norm2() * (inv_mass[i] + inv_mass[j]));
                    velocities[i] -= r * (k * inv_mass[i]);
                    velocities[j] += r * (k * inv_mass[j]);
                }
            }
            if converged {
                break;
            }
        }
    }
}

/// Velocity Verlet with SHAKE/RATTLE bond constraints (no thermostat;
/// compose with Langevin-style rethermalization externally if needed).
pub struct ConstrainedVerlet {
    pub constraints: Constraints,
    /// Inverse masses, cached at first step.
    inv_mass: Vec<f64>,
}

impl ConstrainedVerlet {
    pub fn new(constraints: Constraints) -> Self {
        ConstrainedVerlet {
            constraints,
            inv_mass: Vec::new(),
        }
    }
}

impl Integrator for ConstrainedVerlet {
    fn name(&self) -> &'static str {
        "verlet-shake"
    }

    fn step(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, _dof: usize) -> Energies {
        if self.inv_mass.len() != state.n_particles() {
            self.inv_mass = state.masses.iter().map(|&m| 1.0 / m).collect();
        }
        let half = 0.5 * dt;
        let n = state.n_particles();
        let reference = state.positions.clone();

        for i in 0..n {
            state.velocities[i] += state.forces[i] * (half * self.inv_mass[i]);
            state.positions[i] += state.velocities[i] * dt;
        }
        // SHAKE the new positions, then make the velocities consistent
        // with the actual (constrained) displacement.
        self.constraints
            .shake(&reference, &mut state.positions, &self.inv_mass);
        for i in 0..n {
            state.velocities[i] = (state.positions[i] - reference[i]) / dt;
        }

        let energies = {
            let (positions, sim_box) = (&state.positions, &state.sim_box);
            ff.compute(positions, sim_box, &mut state.forces)
        };
        for i in 0..n {
            state.velocities[i] += state.forces[i] * (half * self.inv_mass[i]);
        }
        self.constraints
            .rattle_velocities(&state.positions, &mut state.velocities, &self.inv_mass);
        state.step += 1;
        state.time += dt;
        energies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::HarmonicRestraint;
    use crate::pbc::SimBox;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;
    use crate::Simulation;

    fn chain_top(n: usize) -> Topology {
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        for i in 0..n - 1 {
            top.add_bond(i, i + 1, 1.0, 0.0); // k unused: constrained
        }
        top
    }

    #[test]
    fn shake_restores_distances() {
        let top = chain_top(3);
        let c = Constraints::all_bonds(&top);
        let reference = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0), v3(2.0, 0.0, 0.0)];
        // Perturbed positions violating both constraints.
        let mut pos = vec![v3(0.0, 0.1, 0.0), v3(1.2, -0.05, 0.0), v3(1.7, 0.0, 0.2)];
        let inv_mass = vec![1.0; 3];
        let sweeps = c.shake(&reference, &mut pos, &inv_mass);
        assert!(sweeps < c.max_iterations, "SHAKE did not converge");
        assert!(
            c.max_violation(&pos) < 1e-4,
            "violation {}",
            c.max_violation(&pos)
        );
    }

    #[test]
    fn shake_respects_mass_ratio() {
        // Heavy particle moves less during the correction.
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(10.0, LjParams::new(1.0, 1.0)));
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        top.add_bond(0, 1, 1.0, 0.0);
        let c = Constraints::all_bonds(&top);
        let reference = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut pos = vec![v3(0.0, 0.0, 0.0), v3(1.5, 0.0, 0.0)];
        let inv_mass = vec![0.1, 1.0];
        c.shake(&reference, &mut pos, &inv_mass);
        // The heavy particle barely moved.
        assert!(pos[0].norm() < 0.06, "heavy moved {:?}", pos[0]);
        assert!((pos[0].dist(pos[1]) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rattle_removes_bond_velocity() {
        let top = chain_top(2);
        let c = Constraints::all_bonds(&top);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        // Relative velocity along the bond plus a transverse part.
        let mut vel = vec![v3(1.0, 1.0, 0.0), v3(-1.0, 1.0, 0.0)];
        c.rattle_velocities(&pos, &mut vel, &[1.0, 1.0]);
        let r = pos[0] - pos[1];
        let v_rel = vel[0] - vel[1];
        assert!(r.dot(v_rel).abs() < 1e-8, "bond velocity survived RATTLE");
        // Transverse motion untouched.
        assert!((vel[0].y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constrained_dynamics_keeps_bonds_rigid() {
        let top = chain_top(5);
        let c = Constraints::all_bonds(&top);
        let positions: Vec<Vec3> = (0..5).map(|i| v3(i as f64, 0.0, 0.0)).collect();
        let mut state = crate::State::new(positions, &top, SimBox::Open);
        let dof = top.dof(3) - c.len(); // each constraint removes one dof
        let mut rng = rng_from_seed(4);
        state.init_velocities(0.5, dof, &mut rng);
        // A soft external potential so something happens.
        let ff = crate::ForceField::new().with(Box::new(HarmonicRestraint::new(
            vec![(0, v3(0.0, 0.0, 0.0)), (4, v3(2.0, 2.0, 0.0))],
            0.5,
        )));
        let mut sim = Simulation::new(
            state,
            ff,
            Box::new(ConstrainedVerlet::new(c.clone())),
            0.01,
            dof,
        );
        sim.run(2_000);
        assert!(sim.state.is_finite());
        assert!(
            c.max_violation(&sim.state.positions) < 1e-3,
            "constraints drifted: {}",
            c.max_violation(&sim.state.positions)
        );
    }

    #[test]
    fn constrained_dumbbell_conserves_energy() {
        // A rigid dumbbell in a harmonic well: total energy (kinetic +
        // external potential) is conserved since the constraint does no
        // work.
        let top = chain_top(2);
        let c = Constraints::all_bonds(&top);
        let mut state = crate::State::new(
            vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)],
            &top,
            SimBox::Open,
        );
        state.velocities[0] = v3(0.0, 0.4, 0.0);
        state.velocities[1] = v3(0.0, -0.4, 0.0); // rotation
        let ff = crate::ForceField::new().with(Box::new(HarmonicRestraint::new(
            vec![(0, v3(0.0, 0.0, 0.0))],
            1.0,
        )));
        let mut sim = Simulation::new(state, ff, Box::new(ConstrainedVerlet::new(c)), 0.002, 3);
        let e0 = sim.total_energy();
        sim.run(5_000);
        let drift = (sim.total_energy() - e0).abs() / e0.abs().max(1e-12);
        assert!(drift < 5e-3, "energy drift {drift}");
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn rejects_self_constraint() {
        let _ = Constraints::new(vec![(1, 1, 1.0)]);
    }
}
