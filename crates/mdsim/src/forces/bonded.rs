//! Bonded interactions: harmonic bonds, harmonic angles, periodic dihedrals.

use crate::forces::ForceTerm;
use crate::pbc::SimBox;
use crate::topology::{Angle, Bond, Dihedral, Topology};
use crate::vec3::Vec3;

/// All bonded terms of a topology, evaluated together.
pub struct BondedForce {
    bonds: Vec<Bond>,
    angles: Vec<Angle>,
    dihedrals: Vec<Dihedral>,
}

impl BondedForce {
    pub fn from_topology(top: &Topology) -> Self {
        BondedForce {
            bonds: top.bonds.clone(),
            angles: top.angles.clone(),
            dihedrals: top.dihedrals.clone(),
        }
    }

    pub fn n_terms(&self) -> usize {
        self.bonds.len() + self.angles.len() + self.dihedrals.len()
    }

    fn bond_energy(&self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let mut e = 0.0;
        for b in &self.bonds {
            let dr = bx.displacement(positions[b.i], positions[b.j]);
            let r = dr.norm();
            if r == 0.0 {
                continue; // coincident particles: force direction undefined
            }
            let dx = r - b.r0;
            e += 0.5 * b.k * dx * dx;
            // F_i = -dV/dr * r̂ = -k (r - r0) dr / r
            let f = dr * (-b.k * dx / r);
            forces[b.i] += f;
            forces[b.j] -= f;
        }
        e
    }

    fn angle_energy(&self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let mut e = 0.0;
        for a in &self.angles {
            let rij = bx.displacement(positions[a.i], positions[a.j]);
            let rkj = bx.displacement(positions[a.k], positions[a.j]);
            let nij = rij.norm();
            let nkj = rkj.norm();
            if nij == 0.0 || nkj == 0.0 {
                continue;
            }
            let cos_t = (rij.dot(rkj) / (nij * nkj)).clamp(-1.0, 1.0);
            let theta = cos_t.acos();
            let dtheta = theta - a.theta0;
            e += 0.5 * a.kf * dtheta * dtheta;

            let sin_t = (1.0 - cos_t * cos_t).sqrt().max(1e-8);
            let dvdt = a.kf * dtheta;
            // F_i = -dV/dθ ∇_i θ; positive dV/dθ (angle too wide) pulls the
            // end particles toward each other.
            let fi = (rkj / nkj - rij * (cos_t / nij)) * (dvdt / (nij * sin_t));
            let fk = (rij / nij - rkj * (cos_t / nkj)) * (dvdt / (nkj * sin_t));
            forces[a.i] += fi;
            forces[a.k] += fk;
            forces[a.j] -= fi + fk;
        }
        e
    }

    fn dihedral_energy(&self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let mut e = 0.0;
        for d in &self.dihedrals {
            let b1 = bx.displacement(positions[d.j], positions[d.i]);
            let b2 = bx.displacement(positions[d.k], positions[d.j]);
            let b3 = bx.displacement(positions[d.l], positions[d.k]);
            let n1 = b1.cross(b2);
            let n2 = b2.cross(b3);
            let n1_2 = n1.norm2();
            let n2_2 = n2.norm2();
            let b2n = b2.norm();
            if n1_2 < 1e-12 || n2_2 < 1e-12 || b2n < 1e-12 {
                continue; // collinear: dihedral undefined
            }
            let phi = (n1.cross(n2).dot(b2) / b2n).atan2(n1.dot(n2));
            let m = d.mult as f64;
            e += d.kphi * (1.0 + (m * phi - d.phi0).cos());
            let dvdphi = -d.kphi * m * (m * phi - d.phi0).sin();

            // Standard torsion gradient distribution: ∇φ at the end
            // particles lies along the plane normals; the inner two follow
            // from translation/rotation invariance.
            let grad_i = n1 * (-b2n / n1_2);
            let grad_l = n2 * (b2n / n2_2);
            let p = b1.dot(b2) / (b2n * b2n);
            let q = b3.dot(b2) / (b2n * b2n);
            let grad_j = grad_i * (-1.0 - p) + grad_l * q;
            let grad_k = grad_l * (-1.0 - q) + grad_i * p;
            let fi = grad_i * (-dvdphi);
            let fj = grad_j * (-dvdphi);
            let fk = grad_k * (-dvdphi);
            let fl = grad_l * (-dvdphi);
            forces[d.i] += fi;
            forces[d.j] += fj;
            forces[d.k] += fk;
            forces[d.l] += fl;
        }
        e
    }
}

impl ForceTerm for BondedForce {
    fn name(&self) -> &'static str {
        "bonded"
    }

    fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        self.bond_energy(positions, bx, forces)
            + self.angle_energy(positions, bx, forces)
            + self.dihedral_energy(positions, bx, forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::max_force_error;
    use crate::rng::{rng_from_seed, sample_normal};
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;
    use std::f64::consts::PI;

    fn particles(n: usize) -> Topology {
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        top
    }

    #[test]
    fn bond_at_rest_length_has_no_force() {
        let mut top = particles(2);
        top.add_bond(0, 1, 1.5, 100.0);
        let mut bf = BondedForce::from_topology(&top);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.5, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bf.compute(&pos, &SimBox::Open, &mut f);
        assert!(e.abs() < 1e-12);
        assert!(f[0].norm() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_inward() {
        let mut top = particles(2);
        top.add_bond(0, 1, 1.0, 10.0);
        let mut bf = BondedForce::from_topology(&top);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(2.0, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bf.compute(&pos, &SimBox::Open, &mut f);
        assert!((e - 5.0).abs() < 1e-12); // 1/2 * 10 * 1^2
        assert!(f[0].x > 0.0 && f[1].x < 0.0);
        assert!((f[0] + f[1]).norm() < 1e-12);
    }

    #[test]
    fn angle_at_equilibrium_has_no_force() {
        let mut top = particles(3);
        top.add_angle(0, 1, 2, PI / 2.0, 50.0);
        let mut bf = BondedForce::from_topology(&top);
        let pos = vec![v3(1.0, 0.0, 0.0), v3(0.0, 0.0, 0.0), v3(0.0, 1.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 3];
        let e = bf.compute(&pos, &SimBox::Open, &mut f);
        assert!(e.abs() < 1e-12);
        for fi in &f {
            assert!(fi.norm() < 1e-10);
        }
    }

    #[test]
    fn angle_energy_value() {
        let mut top = particles(3);
        top.add_angle(0, 1, 2, PI, 2.0);
        let mut bf = BondedForce::from_topology(&top);
        // 90-degree angle, θ0 = 180°: E = 1/2 * 2 * (π/2)²
        let pos = vec![v3(1.0, 0.0, 0.0), v3(0.0, 0.0, 0.0), v3(0.0, 1.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 3];
        let e = bf.compute(&pos, &SimBox::Open, &mut f);
        assert!((e - 0.5 * 2.0 * (PI / 2.0).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn trans_dihedral_is_at_minimum_for_phi0_zero() {
        let mut top = particles(4);
        // V = k (1 + cos(φ - φ0)); φ = π (trans) with φ0 = 0 → V = k(1-1) = 0.
        top.add_dihedral(0, 1, 2, 3, 0.0, 3.0, 1);
        let mut bf = BondedForce::from_topology(&top);
        let pos = vec![
            v3(-1.0, 1.0, 0.0),
            v3(0.0, 0.0, 0.0),
            v3(1.0, 0.0, 0.0),
            v3(2.0, -1.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = bf.compute(&pos, &SimBox::Open, &mut f);
        assert!(
            e.abs() < 1e-10,
            "trans conformation should sit at V=0, got {e}"
        );
    }

    #[test]
    fn all_bonded_forces_match_finite_difference() {
        let mut top = particles(6);
        for i in 0..5 {
            top.add_bond(i, i + 1, 1.0, 30.0);
        }
        for i in 0..4 {
            top.add_angle(i, i + 1, i + 2, 1.9, 15.0);
        }
        for i in 0..3 {
            top.add_dihedral(i, i + 1, i + 2, i + 3, 0.7, 2.0, 3);
        }
        let mut bf = BondedForce::from_topology(&top);
        assert_eq!(bf.n_terms(), 12);

        let mut rng = rng_from_seed(21);
        // A jittered zig-zag chain: generic geometry, no collinearity.
        let pos: Vec<Vec3> = (0..6)
            .map(|i| {
                v3(
                    i as f64 * 0.9 + 0.05 * sample_normal(&mut rng),
                    (i % 2) as f64 * 0.8 + 0.05 * sample_normal(&mut rng),
                    0.1 * sample_normal(&mut rng),
                )
            })
            .collect();
        let err = max_force_error(&mut bf, &pos, &SimBox::Open, 1e-6);
        assert!(err < 1e-4, "bonded force error vs finite difference: {err}");
    }

    #[test]
    fn dihedral_forces_sum_to_zero() {
        let mut top = particles(4);
        top.add_dihedral(0, 1, 2, 3, 0.3, 5.0, 2);
        let mut bf = BondedForce::from_topology(&top);
        let pos = vec![
            v3(-1.0, 0.7, 0.2),
            v3(0.0, 0.0, 0.0),
            v3(1.1, 0.1, -0.1),
            v3(1.9, -0.8, 0.5),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        bf.compute(&pos, &SimBox::Open, &mut f);
        let total: Vec3 = f.iter().copied().sum();
        assert!(total.norm() < 1e-10, "net force {total:?}");
    }

    #[test]
    fn periodic_boundary_bonds() {
        // A bond across the boundary should see the minimum-image distance.
        let mut top = particles(2);
        top.add_bond(0, 1, 1.0, 10.0);
        let mut bf = BondedForce::from_topology(&top);
        let bx = SimBox::cubic(10.0);
        let pos = vec![v3(0.5, 5.0, 5.0), v3(9.5, 5.0, 5.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bf.compute(&pos, &bx, &mut f);
        assert!(e.abs() < 1e-12, "minimum image distance is exactly r0");
    }
}
