//! External (one-body) potentials.
//!
//! [`HarmonicRestraint`] tethers selected particles to reference points.
//! It serves two roles in the reproduction: position restraints during
//! system preparation, and the analytically solvable test system for the
//! BAR free-energy plugin (a harmonic well whose spring constant is the
//! coupling parameter λ).

use crate::forces::ForceTerm;
use crate::pbc::SimBox;
use crate::vec3::Vec3;

/// Harmonic tether: `V = Σ ½ k |r_i - ref_i|²` over the restrained set.
pub struct HarmonicRestraint {
    /// (particle index, reference point) pairs.
    anchors: Vec<(usize, Vec3)>,
    k: f64,
}

impl HarmonicRestraint {
    pub fn new(anchors: Vec<(usize, Vec3)>, k: f64) -> Self {
        assert!(k >= 0.0, "spring constant must be non-negative, got {k}");
        HarmonicRestraint { anchors, k }
    }

    /// Restrain every particle to the given reference conformation.
    pub fn to_reference(reference: &[Vec3], k: f64) -> Self {
        Self::new(reference.iter().copied().enumerate().collect(), k)
    }

    pub fn spring_constant(&self) -> f64 {
        self.k
    }

    /// Change the spring constant (used by the FEP λ-window driver).
    pub fn set_spring_constant(&mut self, k: f64) {
        assert!(k >= 0.0);
        self.k = k;
    }

    pub fn n_anchors(&self) -> usize {
        self.anchors.len()
    }
}

impl ForceTerm for HarmonicRestraint {
    fn name(&self) -> &'static str {
        "restraint"
    }

    fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let mut e = 0.0;
        for &(i, r0) in &self.anchors {
            let dr = bx.displacement(positions[i], r0);
            e += 0.5 * self.k * dr.norm2();
            forces[i] -= dr * self.k;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::max_force_error;
    use crate::vec3::v3;

    #[test]
    fn restraint_energy_and_force() {
        let mut r = HarmonicRestraint::new(vec![(0, v3(1.0, 0.0, 0.0))], 4.0);
        let pos = vec![v3(2.0, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO];
        let e = r.compute(&pos, &SimBox::Open, &mut f);
        assert!((e - 2.0).abs() < 1e-12); // 1/2 * 4 * 1
        assert!((f[0].x + 4.0).abs() < 1e-12); // pulled back toward anchor
    }

    #[test]
    fn reference_restraint_covers_all_particles() {
        let reference = vec![v3(0.0, 0.0, 0.0), v3(1.0, 1.0, 1.0)];
        let r = HarmonicRestraint::to_reference(&reference, 1.0);
        assert_eq!(r.n_anchors(), 2);
    }

    #[test]
    fn zero_k_is_inert() {
        let mut r = HarmonicRestraint::to_reference(&[v3(0.0, 0.0, 0.0)], 0.0);
        let pos = vec![v3(5.0, 5.0, 5.0)];
        let mut f = vec![Vec3::ZERO];
        assert_eq!(r.compute(&pos, &SimBox::Open, &mut f), 0.0);
        assert_eq!(f[0], Vec3::ZERO);
    }

    #[test]
    fn forces_match_finite_difference() {
        let mut r =
            HarmonicRestraint::new(vec![(0, v3(0.1, 0.2, 0.3)), (2, v3(-1.0, 0.5, 0.0))], 2.5);
        let pos = vec![v3(1.0, 0.0, 0.0), v3(0.0, 0.0, 0.0), v3(0.3, 0.3, 0.3)];
        let err = max_force_error(&mut r, &pos, &SimBox::Open, 1e-6);
        assert!(err < 1e-6, "restraint force error: {err}");
    }

    #[test]
    fn spring_constant_update() {
        let mut r = HarmonicRestraint::to_reference(&[v3(0.0, 0.0, 0.0)], 1.0);
        r.set_spring_constant(3.0);
        assert_eq!(r.spring_constant(), 3.0);
        let pos = vec![v3(1.0, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO];
        let e = r.compute(&pos, &SimBox::Open, &mut f);
        assert!((e - 1.5).abs() < 1e-12);
    }
}
