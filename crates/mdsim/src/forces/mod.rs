//! Force-field terms and their evaluation.
//!
//! Each interaction class implements [`ForceTerm`]; a [`ForceField`] owns an
//! ordered list of terms and evaluates them into the state's force buffer,
//! returning a per-term energy breakdown. Terms take `&mut self` so they can
//! own mutable work state (the non-bonded term owns its neighbour list).

pub mod bonded;
pub mod external;
pub mod go_model;
pub mod nonbonded;

pub use bonded::BondedForce;
pub use external::HarmonicRestraint;
pub use go_model::{GoContact, GoModelForce};
pub use nonbonded::NonbondedForce;

use crate::pbc::SimBox;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Tuning knobs for force-kernel execution, plumbed from engine config
/// down to the terms (see [`ForceField::configure_kernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Use the rayon-threaded pair loop (the "threads" tier of Fig. 6).
    pub threaded: bool,
    /// Minimum pair count before the threaded path engages; below it the
    /// serial kernel wins on fork/join overhead.
    pub parallel_threshold: usize,
    /// Run the pre-packing reference kernel (validation / benchmarking).
    pub use_reference: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            threaded: true,
            parallel_threshold: nonbonded::DEFAULT_PAIR_PARALLEL_THRESHOLD,
            use_reference: false,
        }
    }
}

impl KernelConfig {
    /// Wire encoding (kernel overrides ride inside `mdrun` payloads).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "threaded": self.threaded,
            "parallel_threshold": self.parallel_threshold as u64,
            "use_reference": self.use_reference,
        })
    }

    pub fn from_value(v: &serde_json::Value) -> Result<KernelConfig, String> {
        Ok(KernelConfig {
            threaded: crate::jsonv::boolean(v, "threaded")?,
            parallel_threshold: crate::jsonv::int(v, "parallel_threshold")? as usize,
            use_reference: crate::jsonv::boolean(v, "use_reference")?,
        })
    }
}

/// Cumulative kernel counters for telemetry (pairs/sec, packed-list
/// bytes). Counters are lifetime totals; rates are derived by the caller.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Pairs streamed by the inner loop since construction.
    pub pairs_evaluated: u64,
    /// Heap bytes currently held by packed pair storage.
    pub packed_bytes: u64,
}

/// One additive term of the potential.
pub trait ForceTerm: Send {
    /// Short identifier used in energy breakdowns ("lj-coulomb", "bonded"…).
    fn name(&self) -> &'static str;

    /// Accumulate forces for the current positions into `forces` and return
    /// this term's potential energy. Implementations must *add* to
    /// `forces`, never overwrite.
    fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64;

    /// Accumulate forces only, skipping energy accumulation. Forces must be
    /// bitwise identical to what [`ForceTerm::compute`] produces. Terms
    /// with a dedicated force-only kernel override this; the default just
    /// discards the energy.
    fn compute_force_only(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) {
        self.compute(positions, bx, forces);
    }

    /// Apply kernel tuning knobs. Terms without tunable kernels ignore it.
    fn configure_kernel(&mut self, _cfg: &KernelConfig) {}

    /// Cumulative kernel counters, if this term has an instrumented pair
    /// loop.
    fn kernel_stats(&self) -> Option<KernelStats> {
        None
    }

    /// Enable/disable internal sub-phase timing (neighbour-list refresh).
    /// Terms without internal phases ignore this.
    fn set_neighbor_timing(&mut self, _on: bool) {}

    /// Drain nanoseconds spent refreshing neighbour structures since the
    /// last call. Only meaningful after `set_neighbor_timing(true)`.
    fn take_neighbor_ns(&mut self) -> u64 {
        0
    }

    /// `(full_builds, updates)` of this term's neighbour structure, if it
    /// has one. Counters are cumulative over the term's lifetime.
    fn neighbor_stats(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Energy breakdown from one force evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Energies {
    pub terms: Vec<(&'static str, f64)>,
}

impl Energies {
    pub fn total(&self) -> f64 {
        self.terms.iter().map(|(_, e)| e).sum()
    }

    pub fn get(&self, name: &str) -> Option<f64> {
        self.terms.iter().find(|(n, _)| *n == name).map(|(_, e)| *e)
    }
}

/// An ordered collection of force terms.
#[derive(Default)]
pub struct ForceField {
    terms: Vec<Box<dyn ForceTerm>>,
    /// When set, `compute` accumulates its wall time into `force_ns` and
    /// terms time their neighbour refreshes. Off by default: the flag
    /// costs one predictable branch per evaluation.
    timing: bool,
    force_ns: u64,
}

impl ForceField {
    pub fn new() -> Self {
        ForceField::default()
    }

    pub fn add(&mut self, term: Box<dyn ForceTerm>) -> &mut Self {
        self.terms.push(term);
        self
    }

    pub fn with(mut self, term: Box<dyn ForceTerm>) -> Self {
        self.terms.push(term);
        self
    }

    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Enable/disable evaluation timing (and neighbour-refresh timing in
    /// terms that have one).
    pub fn set_timing(&mut self, on: bool) {
        self.timing = on;
        for term in self.terms.iter_mut() {
            term.set_neighbor_timing(on);
        }
    }

    /// Drain nanoseconds spent in `compute` since the last call.
    pub fn take_force_ns(&mut self) -> u64 {
        std::mem::take(&mut self.force_ns)
    }

    /// Drain nanoseconds spent refreshing neighbour structures across all
    /// terms since the last call.
    pub fn take_neighbor_ns(&mut self) -> u64 {
        self.terms.iter_mut().map(|t| t.take_neighbor_ns()).sum()
    }

    /// Aggregate `(full_builds, updates)` across terms with neighbour
    /// structures (cumulative lifetime counters).
    pub fn neighbor_stats(&self) -> (u64, u64) {
        self.terms
            .iter()
            .filter_map(|t| t.neighbor_stats())
            .fold((0, 0), |(b, u), (tb, tu)| (b + tb, u + tu))
    }

    /// Push kernel tuning knobs down to every term.
    pub fn configure_kernel(&mut self, cfg: &KernelConfig) {
        for term in self.terms.iter_mut() {
            term.configure_kernel(cfg);
        }
    }

    /// Aggregate kernel counters across instrumented terms.
    pub fn kernel_stats(&self) -> KernelStats {
        self.terms
            .iter()
            .filter_map(|t| t.kernel_stats())
            .fold(KernelStats::default(), |acc, s| KernelStats {
                pairs_evaluated: acc.pairs_evaluated + s.pairs_evaluated,
                packed_bytes: acc.packed_bytes + s.packed_bytes,
            })
    }

    /// Zero `forces`, evaluate every term, and return the breakdown.
    pub fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> Energies {
        assert_eq!(
            positions.len(),
            forces.len(),
            "positions/forces length mismatch"
        );
        let start = if self.timing {
            Some(std::time::Instant::now())
        } else {
            None
        };
        for f in forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        let mut breakdown = Vec::with_capacity(self.terms.len());
        for term in self.terms.iter_mut() {
            let e = term.compute(positions, bx, forces);
            breakdown.push((term.name(), e));
        }
        if let Some(start) = start {
            self.force_ns += start.elapsed().as_nanos() as u64;
        }
        Energies { terms: breakdown }
    }

    /// Zero `forces` and evaluate every term's force-only kernel. The fast
    /// path for steps where nothing reads the energy; resulting forces are
    /// bitwise identical to [`ForceField::compute`].
    pub fn compute_force_only(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) {
        assert_eq!(
            positions.len(),
            forces.len(),
            "positions/forces length mismatch"
        );
        let start = if self.timing {
            Some(std::time::Instant::now())
        } else {
            None
        };
        for f in forces.iter_mut() {
            *f = Vec3::ZERO;
        }
        for term in self.terms.iter_mut() {
            term.compute_force_only(positions, bx, forces);
        }
        if let Some(start) = start {
            self.force_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Potential energy only (still evaluates forces internally).
    pub fn energy(&mut self, positions: &[Vec3], bx: &SimBox) -> f64 {
        let mut scratch = vec![Vec3::ZERO; positions.len()];
        self.compute(positions, bx, &mut scratch).total()
    }
}

/// Verify analytic forces against a central finite difference of the
/// energy. Returns the largest absolute component error. Test-support
/// code, exported so downstream crates can validate their own terms.
pub fn max_force_error(term: &mut dyn ForceTerm, positions: &[Vec3], bx: &SimBox, h: f64) -> f64 {
    let n = positions.len();
    let mut forces = vec![Vec3::ZERO; n];
    term.compute(positions, bx, &mut forces);

    let mut worst: f64 = 0.0;
    let mut pos = positions.to_vec();
    let mut scratch = vec![Vec3::ZERO; n];
    for i in 0..n {
        for d in 0..3 {
            let orig = pos[i][d];
            set_comp(&mut pos[i], d, orig + h);
            scratch.iter_mut().for_each(|f| *f = Vec3::ZERO);
            let e_plus = term.compute(&pos, bx, &mut scratch);
            set_comp(&mut pos[i], d, orig - h);
            scratch.iter_mut().for_each(|f| *f = Vec3::ZERO);
            let e_minus = term.compute(&pos, bx, &mut scratch);
            set_comp(&mut pos[i], d, orig);
            let f_num = -(e_plus - e_minus) / (2.0 * h);
            worst = worst.max((forces[i][d] - f_num).abs());
        }
    }
    worst
}

fn set_comp(v: &mut Vec3, d: usize, val: f64) {
    match d {
        0 => v.x = val,
        1 => v.y = val,
        _ => v.z = val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    /// A trivial term pulling every particle toward the origin.
    struct Spring {
        k: f64,
    }

    impl ForceTerm for Spring {
        fn name(&self) -> &'static str {
            "spring"
        }
        fn compute(&mut self, positions: &[Vec3], _bx: &SimBox, forces: &mut [Vec3]) -> f64 {
            let mut e = 0.0;
            for (p, f) in positions.iter().zip(forces.iter_mut()) {
                e += 0.5 * self.k * p.norm2();
                *f += -*p * self.k;
            }
            e
        }
    }

    #[test]
    fn forcefield_accumulates_terms() {
        let mut ff = ForceField::new()
            .with(Box::new(Spring { k: 1.0 }))
            .with(Box::new(Spring { k: 2.0 }));
        let pos = vec![v3(1.0, 0.0, 0.0)];
        let mut forces = vec![Vec3::ZERO];
        let e = ff.compute(&pos, &SimBox::Open, &mut forces);
        assert_eq!(e.terms.len(), 2);
        assert!((e.total() - 1.5).abs() < 1e-12);
        assert!((forces[0].x + 3.0).abs() < 1e-12);
        assert_eq!(e.get("spring"), Some(0.5));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn energy_only_path() {
        let mut ff = ForceField::new().with(Box::new(Spring { k: 2.0 }));
        let e = ff.energy(&[v3(0.0, 2.0, 0.0)], &SimBox::Open);
        assert!((e - 4.0).abs() < 1e-12);
    }

    #[test]
    fn finite_difference_checker_accepts_consistent_term() {
        let mut term = Spring { k: 3.0 };
        let pos = vec![v3(0.3, -0.2, 0.9), v3(-1.0, 0.4, 0.1)];
        let err = max_force_error(&mut term, &pos, &SimBox::Open, 1e-5);
        assert!(err < 1e-6, "err = {err}");
    }

    #[test]
    fn timing_accumulates_and_drains() {
        let mut ff = ForceField::new().with(Box::new(Spring { k: 1.0 }));
        let pos = vec![v3(1.0, 0.0, 0.0)];
        let mut forces = vec![Vec3::ZERO];
        // Timing off: nothing accumulates.
        ff.compute(&pos, &SimBox::Open, &mut forces);
        assert_eq!(ff.take_force_ns(), 0);
        // Timing on: compute wall time lands in the accumulator and
        // take_force_ns drains it.
        ff.set_timing(true);
        for _ in 0..100 {
            ff.compute(&pos, &SimBox::Open, &mut forces);
        }
        assert!(ff.take_force_ns() > 0);
        assert_eq!(ff.take_force_ns(), 0);
        // A plain term reports no neighbour structure.
        assert_eq!(ff.neighbor_stats(), (0, 0));
        assert_eq!(ff.take_neighbor_ns(), 0);
    }

    #[test]
    fn compute_overwrites_previous_forces() {
        let mut ff = ForceField::new().with(Box::new(Spring { k: 1.0 }));
        let pos = vec![v3(1.0, 0.0, 0.0)];
        let mut forces = vec![v3(100.0, 100.0, 100.0)];
        ff.compute(&pos, &SimBox::Open, &mut forces);
        assert!((forces[0].x + 1.0).abs() < 1e-12);
    }

    #[test]
    fn force_only_default_matches_compute() {
        // The trait's default force-only path delegates to compute, so
        // forces are identical; it also zeroes stale forces.
        let mut ff = ForceField::new().with(Box::new(Spring { k: 1.5 }));
        let pos = vec![v3(1.0, -2.0, 0.5), v3(0.1, 0.2, 0.3)];
        let mut f_full = vec![Vec3::ZERO; 2];
        let mut f_fast = vec![v3(9.0, 9.0, 9.0); 2];
        ff.compute(&pos, &SimBox::Open, &mut f_full);
        ff.compute_force_only(&pos, &SimBox::Open, &mut f_fast);
        assert_eq!(f_full, f_fast);
        // A plain term reports no kernel counters.
        assert_eq!(ff.kernel_stats(), KernelStats::default());
    }
}
