//! Structure-based (Gō-type) potential for coarse-grained protein folding.
//!
//! This is the substitution for the paper's all-atom Amber03 villin system
//! (see DESIGN.md): native contacts are stabilized with a 12-10 well
//! (Clementi et al.), every other non-local pair is purely repulsive, and
//! chain geometry (bonds/angles/dihedrals) is handled by [`BondedForce`].
//! The resulting free-energy surface is funnel-shaped with metastable
//! partially-folded states — exactly the kinetics the MSM layer needs.
//!
//! [`BondedForce`]: crate::forces::BondedForce

use crate::forces::{ForceTerm, KernelStats};
use crate::pbc::SimBox;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One native contact between beads `i` and `j` at native distance `r_nat`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoContact {
    pub i: usize,
    pub j: usize,
    pub r_nat: f64,
}

/// Gō-model non-local interactions: native 12-10 wells plus generic
/// excluded-volume repulsion between all other non-local pairs.
pub struct GoModelForce {
    contacts: Vec<GoContact>,
    rep_pairs: Vec<(u32, u32)>,
    /// Depth of each native-contact well.
    eps_contact: f64,
    /// Strength of the non-native repulsion.
    eps_rep: f64,
    /// Range of the non-native repulsion.
    sigma_rep: f64,
    /// Cumulative pairs streamed by the kernel (telemetry: pairs/sec).
    pairs_evaluated: u64,
}

impl GoModelForce {
    /// Build the term for a chain of `n_beads`. Pairs with sequence
    /// separation `< min_seq_sep` are left to the bonded terms; all others
    /// are either native contacts (attractive well) or repulsive.
    pub fn new(
        n_beads: usize,
        contacts: Vec<GoContact>,
        min_seq_sep: usize,
        eps_contact: f64,
        eps_rep: f64,
        sigma_rep: f64,
    ) -> Self {
        let native: BTreeSet<(usize, usize)> = contacts
            .iter()
            .map(|c| {
                assert!(c.i < n_beads && c.j < n_beads, "contact index out of range");
                assert!(c.r_nat > 0.0, "native distance must be positive");
                if c.i < c.j {
                    (c.i, c.j)
                } else {
                    (c.j, c.i)
                }
            })
            .collect();
        let mut rep_pairs = Vec::new();
        for i in 0..n_beads {
            for j in (i + min_seq_sep)..n_beads {
                if !native.contains(&(i, j)) {
                    rep_pairs.push((i as u32, j as u32));
                }
            }
        }
        GoModelForce {
            contacts,
            rep_pairs,
            eps_contact,
            eps_rep,
            sigma_rep,
            pairs_evaluated: 0,
        }
    }

    pub fn n_contacts(&self) -> usize {
        self.contacts.len()
    }

    pub fn contacts(&self) -> &[GoContact] {
        &self.contacts
    }

    pub fn n_repulsive_pairs(&self) -> usize {
        self.rep_pairs.len()
    }

    /// Fraction of native contacts formed (within `tol * r_nat`), the
    /// classic folding reaction coordinate Q.
    pub fn fraction_native(&self, positions: &[Vec3], bx: &SimBox, tol: f64) -> f64 {
        if self.contacts.is_empty() {
            return 0.0;
        }
        let formed = self
            .contacts
            .iter()
            .filter(|c| bx.dist(positions[c.i], positions[c.j]) <= tol * c.r_nat)
            .count();
        formed as f64 / self.contacts.len() as f64
    }
}

impl GoModelForce {
    /// Shared kernel for full and force-only evaluation. Force arithmetic
    /// is identical in both instantiations; `ENERGY = false` only drops
    /// the energy accumulation, so force-only forces are bitwise equal.
    fn eval<const ENERGY: bool>(
        &self,
        positions: &[Vec3],
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> f64 {
        let mut energy = 0.0;

        // Native contacts: V = ε [5 (rn/r)^12 - 6 (rn/r)^10].
        for c in &self.contacts {
            let dr = bx.displacement(positions[c.i], positions[c.j]);
            let r2 = dr.norm2();
            if r2 == 0.0 {
                continue;
            }
            let inv_r2 = 1.0 / r2;
            let s2 = c.r_nat * c.r_nat * inv_r2;
            let s10 = s2 * s2 * s2 * s2 * s2;
            let s12 = s10 * s2;
            if ENERGY {
                energy += self.eps_contact * (5.0 * s12 - 6.0 * s10);
            }
            // F·r̂ = 60 ε (s12 - s10)/r → F vector = 60 ε (s12 - s10) dr / r².
            let f_over_r2 = 60.0 * self.eps_contact * (s12 - s10) * inv_r2;
            let f = dr * f_over_r2;
            forces[c.i] += f;
            forces[c.j] -= f;
        }

        // Non-native repulsion: V = ε_rep (σ/r)^12.
        let sig2 = self.sigma_rep * self.sigma_rep;
        for &(i, j) in &self.rep_pairs {
            let (i, j) = (i as usize, j as usize);
            let dr = bx.displacement(positions[i], positions[j]);
            let r2 = dr.norm2();
            // Negligible beyond 3σ: skip for speed.
            if r2 == 0.0 || r2 > 9.0 * sig2 {
                continue;
            }
            let s2 = sig2 / r2;
            let s6 = s2 * s2 * s2;
            let s12 = s6 * s6;
            if ENERGY {
                energy += self.eps_rep * s12;
            }
            let f = dr * (12.0 * self.eps_rep * s12 / r2);
            forces[i] += f;
            forces[j] -= f;
        }

        energy
    }
}

impl ForceTerm for GoModelForce {
    fn name(&self) -> &'static str {
        "go-model"
    }

    fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        self.pairs_evaluated += (self.contacts.len() + self.rep_pairs.len()) as u64;
        self.eval::<true>(positions, bx, forces)
    }

    fn compute_force_only(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) {
        self.pairs_evaluated += (self.contacts.len() + self.rep_pairs.len()) as u64;
        self.eval::<false>(positions, bx, forces);
    }

    fn kernel_stats(&self) -> Option<KernelStats> {
        Some(KernelStats {
            pairs_evaluated: self.pairs_evaluated,
            packed_bytes: (self.rep_pairs.capacity() * std::mem::size_of::<(u32, u32)>()
                + self.contacts.capacity() * std::mem::size_of::<GoContact>())
                as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::max_force_error;
    use crate::vec3::v3;

    #[test]
    fn contact_minimum_at_native_distance() {
        let mut go = GoModelForce::new(
            2,
            vec![GoContact {
                i: 0,
                j: 1,
                r_nat: 1.2,
            }],
            1,
            2.0,
            1.0,
            0.8,
        );
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.2, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = go.compute(&pos, &SimBox::Open, &mut f);
        // At r = r_nat the 12-10 term is -ε (here -2); repulsion is small
        // but nonzero since the pair is also... no: native pairs are NOT in
        // rep_pairs, so E = -2 exactly.
        assert!((e + 2.0).abs() < 1e-12, "E = {e}");
        assert!(f[0].norm() < 1e-10);
    }

    #[test]
    fn native_pairs_excluded_from_repulsion() {
        let go = GoModelForce::new(
            4,
            vec![GoContact {
                i: 0,
                j: 3,
                r_nat: 1.0,
            }],
            3,
            1.0,
            1.0,
            1.0,
        );
        // Only non-native pair at separation >= 3 would be (0,3), which is
        // native — so no repulsive pairs at all.
        assert_eq!(go.n_repulsive_pairs(), 0);
        assert_eq!(go.n_contacts(), 1);
    }

    #[test]
    fn repulsion_pushes_apart() {
        let mut go = GoModelForce::new(4, vec![], 3, 1.0, 1.0, 1.0);
        assert_eq!(go.n_repulsive_pairs(), 1); // (0,3)
        let pos = vec![
            v3(0.0, 0.0, 0.0),
            v3(10.0, 0.0, 0.0),
            v3(20.0, 0.0, 0.0),
            v3(0.8, 0.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = go.compute(&pos, &SimBox::Open, &mut f);
        assert!(e > 0.0);
        assert!(f[0].x < 0.0, "bead 0 pushed away from bead 3");
        assert!(f[3].x > 0.0);
    }

    #[test]
    fn forces_match_finite_difference() {
        let mut go = GoModelForce::new(
            5,
            vec![
                GoContact {
                    i: 0,
                    j: 3,
                    r_nat: 1.1,
                },
                GoContact {
                    i: 1,
                    j: 4,
                    r_nat: 1.3,
                },
            ],
            3,
            1.5,
            1.0,
            0.9,
        );
        let pos = vec![
            v3(0.0, 0.0, 0.0),
            v3(1.0, 0.3, 0.0),
            v3(1.8, 1.0, 0.2),
            v3(1.1, 1.7, 0.9),
            v3(0.2, 1.4, 1.4),
        ];
        let err = max_force_error(&mut go, &pos, &SimBox::Open, 1e-6);
        assert!(err < 1e-4, "Gō force error vs finite difference: {err}");
    }

    #[test]
    fn fraction_native_reaction_coordinate() {
        let go = GoModelForce::new(
            4,
            vec![
                GoContact {
                    i: 0,
                    j: 3,
                    r_nat: 1.0,
                },
                GoContact {
                    i: 1,
                    j: 3,
                    r_nat: 1.0,
                },
            ],
            3,
            1.0,
            1.0,
            1.0,
        );
        // First contact formed (r = 1.0 <= 1.2), second broken (r = 5).
        let pos = vec![
            v3(0.0, 0.0, 0.0),
            v3(-4.0, 0.0, 0.0),
            v3(5.0, 5.0, 5.0),
            v3(1.0, 0.0, 0.0),
        ];
        let q = go.fraction_native(&pos, &SimBox::Open, 1.2);
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn force_only_forces_are_bitwise_identical() {
        let mut go = GoModelForce::new(
            5,
            vec![
                GoContact {
                    i: 0,
                    j: 3,
                    r_nat: 1.1,
                },
                GoContact {
                    i: 1,
                    j: 4,
                    r_nat: 1.3,
                },
            ],
            3,
            1.5,
            1.0,
            0.9,
        );
        let pos = vec![
            v3(0.0, 0.0, 0.0),
            v3(1.0, 0.3, 0.0),
            v3(1.8, 1.0, 0.2),
            v3(1.1, 1.7, 0.9),
            v3(0.2, 1.4, 1.4),
        ];
        let mut f_full = vec![Vec3::ZERO; 5];
        let mut f_fast = vec![Vec3::ZERO; 5];
        go.compute(&pos, &SimBox::Open, &mut f_full);
        go.compute_force_only(&pos, &SimBox::Open, &mut f_fast);
        assert_eq!(f_full, f_fast);
    }

    #[test]
    fn long_range_repulsion_is_cut() {
        let mut go = GoModelForce::new(4, vec![], 3, 1.0, 1.0, 1.0);
        let pos = vec![
            v3(0.0, 0.0, 0.0),
            v3(1.0, 0.0, 0.0),
            v3(2.0, 0.0, 0.0),
            v3(50.0, 0.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = go.compute(&pos, &SimBox::Open, &mut f);
        assert_eq!(e, 0.0, "pairs beyond 3σ contribute nothing");
    }
}
