//! Non-bonded interactions: Lennard-Jones plus reaction-field Coulomb.
//!
//! This is the villin setup from §3.1 of the paper: *"long-range
//! electrostatics were treated with a reaction field, using a continuum
//! dielectric constant of 78"*. Both terms share one Verlet neighbour list
//! and one pair loop — the hot kernel of the engine.
//!
//! # Kernel data layout
//!
//! The inner loop never touches the [`Topology`]. At neighbour-list build
//! time every pair is materialized as a [`PackedPair`] — indices plus the
//! fully resolved interaction constants `(qq, c6, c12, e_shift)` — using an
//! interned pair-type table, so Lennard-Jones combining and the cutoff
//! shift are computed once per *build*, not once per pair per step. The
//! pair loop then is pure streaming arithmetic over a flat array.
//!
//! On x86-64 hosts with AVX2 the streaming loop runs four pairs per
//! iteration (the "SIMD kernel" tier of Fig. 6), with out-of-cutoff lanes
//! masked; the trailing entries and non-x86 hosts use a scalar loop with
//! the same IEEE operation sequence. The box-shape match and the
//! minimum-image reciprocals are hoisted out of the loop, so the kernel
//! performs one division per pair (`1/r²`) instead of four.
//!
//! The rayon path (the "threads" tier of Fig. 6, selected by
//! [`NonbondedForce::set_threading`]) accumulates into per-thread force
//! buffers *owned by the term* and reused across steps — no per-step
//! allocation — and reduces them with a deterministic striped sum, so
//! repeated evaluations are bitwise reproducible.
//!
//! The original per-pair topology-lookup kernel is retained as
//! [`NonbondedForce::set_reference_kernel`]: it is the validation baseline
//! for the agreement tests and the "before" side of the pair-loop
//! benchmark (`copernicus-bench --bin pairloop`).

use crate::forces::{ForceTerm, KernelConfig, KernelStats};
use crate::neighbor::NeighborList;
use crate::pbc::SimBox;
use crate::topology::{LjParams, Topology};
use crate::vec3::{v3, Vec3};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Pair count below which the serial kernel beats the rayon fork/join.
pub const DEFAULT_PAIR_PARALLEL_THRESHOLD: usize = 4096;

/// Largest interned type count for which the dense pair-type table is
/// materialized; above this, pair constants are combined on the fly at
/// pack time (still once per build).
const MAX_TABLE_TYPES: usize = 128;

/// One neighbour-list entry with all interaction constants resolved:
/// product of charges `qq`, LJ `c6 = 4εσ⁶` and `c12 = 4εσ¹²`, and the
/// potential-shift constant `e_shift = V_lj(r_c)` (zero when shifting is
/// disabled). 48 bytes, iterated linearly by the hot loop.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PackedPair {
    pub i: u32,
    pub j: u32,
    pub qq: f64,
    pub c6: f64,
    pub c12: f64,
    pub e_shift: f64,
}

/// Per-pair-type constants resolved at construction.
#[derive(Debug, Clone, Copy, Default)]
struct PairTypeParams {
    c6: f64,
    c12: f64,
    e_shift: f64,
}

fn pair_type_params(a: LjParams, b: LjParams, cutoff: f64) -> PairTypeParams {
    let (c6, c12) = a.combine(b).c6_c12();
    let inv_rc6 = 1.0 / cutoff.powi(6);
    PairTypeParams {
        c6,
        c12,
        e_shift: c12 * inv_rc6 * inv_rc6 - c6 * inv_rc6,
    }
}

/// Cutoff and reaction-field constants threaded through the pair kernels.
#[derive(Clone, Copy)]
struct PairConsts {
    rc2: f64,
    krf: f64,
    crf: f64,
}

/// Minimum-image context hoisted out of the pair loop. The box-shape
/// match and the per-axis reciprocals are resolved once per evaluation,
/// so the hot loop multiplies by `1/L` instead of dividing by `L`.
#[derive(Clone, Copy)]
enum Mic {
    Open,
    Ortho { l: Vec3, inv_l: Vec3 },
}

impl Mic {
    fn new(bx: &SimBox) -> Mic {
        match bx.lengths() {
            None => Mic::Open,
            Some(l) => Mic::Ortho {
                l,
                inv_l: v3(1.0 / l.x, 1.0 / l.y, 1.0 / l.z),
            },
        }
    }

    /// Minimum-image displacement `a - b`. For every in-cutoff pair this
    /// matches [`SimBox::displacement`] bit for bit: the rounded image
    /// count is the same integer, and the final `d - l·k` arithmetic is
    /// identical. The two roundings can disagree only when a pair sits
    /// within rounding error of half the box edge — beyond the cutoff,
    /// where the pair contributes nothing either way.
    #[inline(always)]
    fn displacement(self, a: Vec3, b: Vec3) -> Vec3 {
        let d = a - b;
        match self {
            Mic::Open => d,
            Mic::Ortho { l, inv_l } => v3(
                d.x - l.x * (d.x * inv_l.x).round(),
                d.y - l.y * (d.y * inv_l.y).round(),
                d.z - l.z * (d.z * inv_l.z).round(),
            ),
        }
    }
}

/// The per-pair kernel over packed constants. Force arithmetic is
/// identical for both instantiations; `ENERGY = false` only drops the
/// energy terms, so force-only evaluation is bitwise identical to the
/// full one.
#[inline(always)]
fn packed_pair_eval<const ENERGY: bool>(
    p: &PackedPair,
    dr: Vec3,
    r2: f64,
    krf: f64,
    crf: f64,
) -> (f64, Vec3) {
    let inv_r2 = 1.0 / r2;
    let inv_r6 = inv_r2 * inv_r2 * inv_r2;
    let inv_r12 = inv_r6 * inv_r6;
    let mut f_over_r2 = (12.0 * p.c12 * inv_r12 - 6.0 * p.c6 * inv_r6) * inv_r2;
    let mut e = 0.0;
    if ENERGY {
        e = p.c12 * inv_r12 - p.c6 * inv_r6 - p.e_shift;
    }
    if p.qq != 0.0 {
        // Reaction-field Coulomb: V = qq (1/r + krf r² - crf);
        // F·r̂ = qq (1/r² - 2 krf r). 1/r as √r² · (1/r²) — a multiply
        // instead of a second division.
        let inv_r = r2.sqrt() * inv_r2;
        if ENERGY {
            e += p.qq * (inv_r + krf * r2 - crf);
        }
        f_over_r2 += p.qq * (inv_r2 * inv_r - 2.0 * krf);
    }
    (e, dr * f_over_r2)
}

/// Scalar streaming loop over a span of packed entries (the portable
/// path, and the remainder handler for the SIMD path).
fn eval_packed_span_scalar<const ENERGY: bool>(
    packed: &[PackedPair],
    positions: &[Vec3],
    mic: Mic,
    k: PairConsts,
    forces: &mut [Vec3],
) -> f64 {
    let mut energy = 0.0;
    for p in packed {
        let (i, j) = (p.i as usize, p.j as usize);
        let dr = mic.displacement(positions[i], positions[j]);
        let r2 = dr.norm2();
        if r2 > k.rc2 || r2 == 0.0 {
            continue;
        }
        let (e, f) = packed_pair_eval::<ENERGY>(p, dr, r2, k.krf, k.crf);
        if ENERGY {
            energy += e;
        }
        forces[i] += f;
        forces[j] -= f;
    }
    energy
}

/// Four packed entries per iteration on AVX2 — the "SIMD kernel" tier of
/// the paper's Fig. 6 hierarchy. Each lane runs the same IEEE operation
/// sequence as [`packed_pair_eval`], so per-pair results match the scalar
/// path to the last few ulps; out-of-cutoff lanes are masked to zero.
/// Charged and neutral pairs share the lanes (a neutral lane adds exactly
/// zero Coulomb force), and the trailing `len % 4` entries fall back to
/// the scalar loop.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn eval_packed_span_avx2<const ENERGY: bool>(
    packed: &[PackedPair],
    positions: &[Vec3],
    l: Vec3,
    inv_l: Vec3,
    k: PairConsts,
    forces: &mut [Vec3],
) -> f64 {
    use core::arch::x86_64::*;

    // Round-to-nearest ties differ from `f64::round` (even vs away from
    // zero) only at exactly half the box edge — beyond the cutoff, masked.
    let round =
        |v: __m256d| _mm256_round_pd::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(v);
    let (lx, ly, lz) = (
        _mm256_set1_pd(l.x),
        _mm256_set1_pd(l.y),
        _mm256_set1_pd(l.z),
    );
    let (inv_lx, inv_ly, inv_lz) = (
        _mm256_set1_pd(inv_l.x),
        _mm256_set1_pd(inv_l.y),
        _mm256_set1_pd(inv_l.z),
    );
    let rc2 = _mm256_set1_pd(k.rc2);
    let one = _mm256_set1_pd(1.0);
    let two_krf = _mm256_set1_pd(2.0 * k.krf);
    let krf = _mm256_set1_pd(k.krf);
    let crf = _mm256_set1_pd(k.crf);

    let mut e_acc = _mm256_setzero_pd();
    let mut blocks = packed.chunks_exact(4);
    for block in &mut blocks {
        let (p0, p1, p2, p3) = (&block[0], &block[1], &block[2], &block[3]);
        let idx = [
            (p0.i as usize, p0.j as usize),
            (p1.i as usize, p1.j as usize),
            (p2.i as usize, p2.j as usize),
            (p3.i as usize, p3.j as usize),
        ];
        let (a0, b0) = (positions[idx[0].0], positions[idx[0].1]);
        let (a1, b1) = (positions[idx[1].0], positions[idx[1].1]);
        let (a2, b2) = (positions[idx[2].0], positions[idx[2].1]);
        let (a3, b3) = (positions[idx[3].0], positions[idx[3].1]);

        // Minimum image per axis: d -= L * round(d / L), lane k = pair k.
        let mut dx = _mm256_set_pd(a3.x - b3.x, a2.x - b2.x, a1.x - b1.x, a0.x - b0.x);
        let mut dy = _mm256_set_pd(a3.y - b3.y, a2.y - b2.y, a1.y - b1.y, a0.y - b0.y);
        let mut dz = _mm256_set_pd(a3.z - b3.z, a2.z - b2.z, a1.z - b1.z, a0.z - b0.z);
        dx = _mm256_sub_pd(dx, _mm256_mul_pd(lx, round(_mm256_mul_pd(dx, inv_lx))));
        dy = _mm256_sub_pd(dy, _mm256_mul_pd(ly, round(_mm256_mul_pd(dy, inv_ly))));
        dz = _mm256_sub_pd(dz, _mm256_mul_pd(lz, round(_mm256_mul_pd(dz, inv_lz))));

        let r2 = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
            _mm256_mul_pd(dz, dz),
        );

        // In-range lanes: 0 < r² ≤ rc²; the blend guards masked lanes
        // against dividing by zero at exact overlap.
        let mask = _mm256_and_pd(
            _mm256_cmp_pd::<{ _CMP_LE_OQ }>(r2, rc2),
            _mm256_cmp_pd::<{ _CMP_GT_OQ }>(r2, _mm256_setzero_pd()),
        );
        let r2s = _mm256_blendv_pd(one, r2, mask);

        let inv_r2 = _mm256_div_pd(one, r2s);
        let inv_r6 = _mm256_mul_pd(_mm256_mul_pd(inv_r2, inv_r2), inv_r2);
        let inv_r12 = _mm256_mul_pd(inv_r6, inv_r6);

        let qq = _mm256_set_pd(p3.qq, p2.qq, p1.qq, p0.qq);
        let c6r6 = _mm256_mul_pd(_mm256_set_pd(p3.c6, p2.c6, p1.c6, p0.c6), inv_r6);
        let c12r12 = _mm256_mul_pd(_mm256_set_pd(p3.c12, p2.c12, p1.c12, p0.c12), inv_r12);

        // f/r² = (12 c12/r¹² − 6 c6/r⁶)/r² + qq (1/r³ − 2 krf)
        let inv_r = _mm256_mul_pd(_mm256_sqrt_pd(r2s), inv_r2);
        let lj = _mm256_mul_pd(
            _mm256_sub_pd(
                _mm256_mul_pd(_mm256_set1_pd(12.0), c12r12),
                _mm256_mul_pd(_mm256_set1_pd(6.0), c6r6),
            ),
            inv_r2,
        );
        let coul = _mm256_mul_pd(qq, _mm256_sub_pd(_mm256_mul_pd(inv_r2, inv_r), two_krf));
        let f_over_r2 = _mm256_and_pd(_mm256_add_pd(lj, coul), mask);

        if ENERGY {
            let e_shift = _mm256_set_pd(p3.e_shift, p2.e_shift, p1.e_shift, p0.e_shift);
            let e_lj = _mm256_sub_pd(_mm256_sub_pd(c12r12, c6r6), e_shift);
            let e_rf = _mm256_sub_pd(_mm256_add_pd(inv_r, _mm256_mul_pd(krf, r2s)), crf);
            let e = _mm256_add_pd(e_lj, _mm256_mul_pd(qq, e_rf));
            e_acc = _mm256_add_pd(e_acc, _mm256_and_pd(e, mask));
        }

        // Newton scatter, in pair order.
        let mut s = [0.0f64; 4];
        let mut xs = [0.0f64; 4];
        let mut ys = [0.0f64; 4];
        let mut zs = [0.0f64; 4];
        _mm256_storeu_pd(s.as_mut_ptr(), f_over_r2);
        _mm256_storeu_pd(xs.as_mut_ptr(), dx);
        _mm256_storeu_pd(ys.as_mut_ptr(), dy);
        _mm256_storeu_pd(zs.as_mut_ptr(), dz);
        for (lane, &(i, j)) in idx.iter().enumerate() {
            let f = v3(xs[lane] * s[lane], ys[lane] * s[lane], zs[lane] * s[lane]);
            forces[i] += f;
            forces[j] -= f;
        }
    }

    let mut energy = 0.0;
    if ENERGY {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), e_acc);
        energy = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    }
    energy
        + eval_packed_span_scalar::<ENERGY>(
            blocks.remainder(),
            positions,
            Mic::Ortho { l, inv_l },
            k,
            forces,
        )
}

/// Stream a span of packed entries through the widest kernel the host
/// supports: AVX2 four-wide for periodic boxes on x86-64, scalar
/// otherwise. Kernel selection is per-host but stable within a run, so
/// repeated evaluations stay bitwise reproducible.
fn eval_packed_span<const ENERGY: bool>(
    packed: &[PackedPair],
    positions: &[Vec3],
    mic: Mic,
    k: PairConsts,
    forces: &mut [Vec3],
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if let Mic::Ortho { l, inv_l } = mic {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                return unsafe {
                    eval_packed_span_avx2::<ENERGY>(packed, positions, l, inv_l, k, forces)
                };
            }
        }
    }
    eval_packed_span_scalar::<ENERGY>(packed, positions, mic, k, forces)
}

/// Pair interactions below `cutoff`: shifted LJ and reaction-field Coulomb.
pub struct NonbondedForce {
    top: Arc<Topology>,
    list: NeighborList,
    cutoff: f64,
    /// Reaction-field dielectric constant (paper: 78).
    eps_rf: f64,
    krf: f64,
    crf: f64,
    /// Per-pair LJ potential shift so V_lj(r_c) = 0 (baked into the packed
    /// entries at pack time).
    shift_lj: bool,
    parallel: bool,
    /// Minimum pair count before the rayon path is used.
    parallel_threshold: usize,
    /// Run the pre-packing per-pair topology-lookup kernel instead
    /// (validation / benchmarking baseline).
    use_reference: bool,
    /// When set, neighbour-list refresh time accumulates in `neighbor_ns`.
    time_neighbor: bool,
    neighbor_ns: u64,

    // --- packed-kernel state, resolved once per neighbour-list build ---
    /// Interned particle type per particle.
    type_of: Vec<u32>,
    /// Interned `(lj, charge)` per type.
    type_params: Vec<(LjParams, f64)>,
    /// Dense `n_types²` pair-constant table (empty above MAX_TABLE_TYPES).
    pair_table: Vec<PairTypeParams>,
    /// The packed pair list the hot loop streams over.
    packed: Vec<PackedPair>,
    /// Set when packed entries are stale for a reason other than a list
    /// rebuild (shift toggled, kernel switched).
    packed_dirty: bool,

    // --- persistent per-thread reduction scratch (reused across steps) ---
    scratch_f: Vec<Vec<Vec3>>,
    scratch_e: Vec<f64>,

    /// Cumulative pairs streamed by the kernel (telemetry: pairs/sec).
    pairs_evaluated: u64,
}

impl NonbondedForce {
    /// Create the term. `skin` is the Verlet buffer (0.3–0.5 σ is typical).
    pub fn new(top: Arc<Topology>, cutoff: f64, skin: f64, eps_rf: f64) -> Self {
        assert!(eps_rf >= 1.0, "dielectric must be >= 1, got {eps_rf}");
        // Reaction-field constants (Tironi et al.): with an infinite or
        // large dielectric, krf -> 1/(2 rc^3).
        let krf = (eps_rf - 1.0) / ((2.0 * eps_rf + 1.0) * cutoff.powi(3));
        let crf = 1.0 / cutoff + krf * cutoff * cutoff;

        // Intern particle types: distinct (LJ, charge) combinations.
        let mut type_params: Vec<(LjParams, f64)> = Vec::new();
        let type_of: Vec<u32> = top
            .particles
            .iter()
            .map(|p| {
                match type_params
                    .iter()
                    .position(|&(lj, q)| lj == p.lj && q == p.charge)
                {
                    Some(k) => k as u32,
                    None => {
                        type_params.push((p.lj, p.charge));
                        (type_params.len() - 1) as u32
                    }
                }
            })
            .collect();
        let n_types = type_params.len();
        let pair_table = if n_types <= MAX_TABLE_TYPES {
            let mut table = Vec::with_capacity(n_types * n_types);
            for a in 0..n_types {
                for b in 0..n_types {
                    table.push(pair_type_params(type_params[a].0, type_params[b].0, cutoff));
                }
            }
            table
        } else {
            Vec::new()
        };

        NonbondedForce {
            top,
            list: NeighborList::new(cutoff, skin),
            cutoff,
            eps_rf,
            krf,
            crf,
            shift_lj: true,
            parallel: true,
            parallel_threshold: DEFAULT_PAIR_PARALLEL_THRESHOLD,
            use_reference: false,
            time_neighbor: false,
            neighbor_ns: 0,
            type_of,
            type_params,
            pair_table,
            packed: Vec::new(),
            packed_dirty: true,
            scratch_f: Vec::new(),
            scratch_e: Vec::new(),
            pairs_evaluated: 0,
        }
    }

    /// Enable/disable the rayon-threaded pair loop.
    pub fn set_threading(&mut self, on: bool) -> &mut Self {
        self.parallel = on;
        self
    }

    /// Pair count above which the rayon path is used (when threading is
    /// enabled at all). Exposed as a tuning knob through
    /// [`KernelConfig`](crate::forces::KernelConfig).
    pub fn set_parallel_threshold(&mut self, threshold: usize) -> &mut Self {
        self.parallel_threshold = threshold;
        self
    }

    pub fn parallel_threshold(&self) -> usize {
        self.parallel_threshold
    }

    /// Disable the LJ potential shift (for free-energy bookkeeping where
    /// absolute energies matter).
    pub fn set_lj_shift(&mut self, on: bool) -> &mut Self {
        if self.shift_lj != on {
            self.shift_lj = on;
            self.packed_dirty = true;
        }
        self
    }

    /// Switch to the pre-packing per-pair topology-lookup kernel. Only
    /// useful as a validation baseline and as the "before" side of the
    /// pair-loop benchmark; it is strictly slower.
    pub fn set_reference_kernel(&mut self, on: bool) -> &mut Self {
        if self.use_reference != on {
            self.use_reference = on;
            self.packed_dirty = true;
        }
        self
    }

    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    pub fn eps_rf(&self) -> f64 {
        self.eps_rf
    }

    /// Neighbour-list statistics (builds, updates) for instrumentation.
    pub fn list_stats(&self) -> (u64, u64) {
        (self.list.n_builds(), self.list.n_updates())
    }

    /// Pairs in the current packed list.
    pub fn n_pairs(&self) -> usize {
        self.list.pairs().len()
    }

    /// Distinct interned particle types.
    pub fn n_types(&self) -> usize {
        self.type_params.len()
    }

    /// Heap bytes held by the packed pair list.
    pub fn packed_bytes(&self) -> u64 {
        (self.packed.capacity() * std::mem::size_of::<PackedPair>()) as u64
    }

    /// Refresh the neighbour list and, on a rebuild (or a stale-pack
    /// flag), re-materialize the packed entries. The single `update` call
    /// site keeps the timed and untimed paths identical.
    fn prepare(&mut self, positions: &[Vec3], bx: &SimBox) {
        let t0 = self.time_neighbor.then(Instant::now);
        let rebuilt = self.list.update(positions, bx, &self.top);
        if (rebuilt || self.packed_dirty) && !self.use_reference {
            self.repack();
            self.packed_dirty = false;
        }
        if let Some(t0) = t0 {
            self.neighbor_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Resolve interaction constants for one `(i, j)` pair from the
    /// interned tables.
    #[inline]
    fn pack_pair(
        i: u32,
        j: u32,
        type_of: &[u32],
        type_params: &[(LjParams, f64)],
        pair_table: &[PairTypeParams],
        cutoff: f64,
        shift_lj: bool,
    ) -> PackedPair {
        let (ti, tj) = (type_of[i as usize] as usize, type_of[j as usize] as usize);
        let n_types = type_params.len();
        let ptp = if pair_table.is_empty() {
            pair_type_params(type_params[ti].0, type_params[tj].0, cutoff)
        } else {
            pair_table[ti * n_types + tj]
        };
        PackedPair {
            i,
            j,
            qq: type_params[ti].1 * type_params[tj].1,
            c6: ptp.c6,
            c12: ptp.c12,
            e_shift: if shift_lj { ptp.e_shift } else { 0.0 },
        }
    }

    /// Materialize packed entries for every pair in the neighbour list.
    /// Runs on the rayon pool above the pair threshold; in-place chunked
    /// writes keep the result order (and therefore the force summation
    /// order) identical to the serial pack.
    fn repack(&mut self) {
        let pairs = self.list.pairs();
        self.packed.clear();
        self.packed.resize(pairs.len(), PackedPair::default());
        let (type_of, type_params, pair_table) =
            (&self.type_of, &self.type_params, &self.pair_table);
        let (cutoff, shift_lj) = (self.cutoff, self.shift_lj);
        if self.parallel && pairs.len() >= self.parallel_threshold {
            let n_tasks = rayon::current_num_threads().max(1);
            let chunk = pairs.len().div_ceil(n_tasks).max(1);
            self.packed
                .par_chunks_mut(chunk)
                .zip(pairs.par_chunks(chunk))
                .for_each(|(dst, src)| {
                    for (d, &(i, j)) in dst.iter_mut().zip(src) {
                        *d = Self::pack_pair(
                            i,
                            j,
                            type_of,
                            type_params,
                            pair_table,
                            cutoff,
                            shift_lj,
                        );
                    }
                });
        } else {
            for (d, &(i, j)) in self.packed.iter_mut().zip(pairs) {
                *d = Self::pack_pair(i, j, type_of, type_params, pair_table, cutoff, shift_lj);
            }
        }
    }

    /// Energy and force for one pair at squared distance `r2`, given the
    /// minimum-image displacement `dr = ri - rj`. Returns (energy, force
    /// on i). This is the reference-kernel path: per-pair topology lookups
    /// and on-the-fly combining, kept for validation and benchmarking.
    #[inline]
    fn pair_interaction(&self, i: usize, j: usize, dr: Vec3, r2: f64) -> (f64, Vec3) {
        let pi = &self.top.particles[i];
        let pj = &self.top.particles[j];
        let lj = pi.lj.combine(pj.lj);
        let qq = pi.charge * pj.charge;

        let inv_r2 = 1.0 / r2;
        let sr2 = lj.sigma * lj.sigma * inv_r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;

        // LJ: V = 4ε(sr12 - sr6); F·r̂ = 24ε(2 sr12 - sr6)/r.
        let mut e = 4.0 * lj.epsilon * (sr12 - sr6);
        if self.shift_lj {
            let src2 = (lj.sigma / self.cutoff).powi(2);
            let src6 = src2 * src2 * src2;
            e -= 4.0 * lj.epsilon * (src6 * src6 - src6);
        }
        let f_over_r_lj = 24.0 * lj.epsilon * (2.0 * sr12 - sr6) * inv_r2;

        // Reaction-field Coulomb: V = qq (1/r + krf r² - crf);
        // F·r̂ = qq (1/r² - 2 krf r).
        let mut f_over_r_c = 0.0;
        if qq != 0.0 {
            let r = r2.sqrt();
            e += qq * (1.0 / r + self.krf * r2 - self.crf);
            f_over_r_c = qq * (1.0 / (r2 * r) - 2.0 * self.krf);
        }

        (e, dr * (f_over_r_lj + f_over_r_c))
    }

    fn compute_reference(&self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let rc2 = self.cutoff * self.cutoff;
        let mut energy = 0.0;
        for &(i, j) in self.list.pairs() {
            let (i, j) = (i as usize, j as usize);
            let dr = bx.displacement(positions[i], positions[j]);
            let r2 = dr.norm2();
            if r2 > rc2 || r2 == 0.0 {
                continue;
            }
            let (e, f) = self.pair_interaction(i, j, dr, r2);
            energy += e;
            forces[i] += f;
            forces[j] -= f;
        }
        energy
    }

    fn pair_consts(&self) -> PairConsts {
        PairConsts {
            rc2: self.cutoff * self.cutoff,
            krf: self.krf,
            crf: self.crf,
        }
    }

    fn compute_serial<const ENERGY: bool>(
        &self,
        positions: &[Vec3],
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> f64 {
        eval_packed_span::<ENERGY>(
            &self.packed,
            positions,
            Mic::new(bx),
            self.pair_consts(),
            forces,
        )
    }

    /// Size the per-thread scratch to the pool width and particle count.
    /// Buffers persist across steps; tasks re-zero only the buffers they
    /// actually use, immediately before writing into them (cache-warm).
    fn ensure_scratch(&mut self, n: usize) {
        let n_tasks = rayon::current_num_threads().max(1);
        if self.scratch_f.len() != n_tasks {
            self.scratch_f.resize_with(n_tasks, Vec::new);
            self.scratch_e.resize(n_tasks, 0.0);
        }
        for buf in &mut self.scratch_f {
            if buf.len() != n {
                buf.clear();
                buf.resize(n, Vec3::ZERO);
            }
        }
    }

    fn compute_parallel<const ENERGY: bool>(
        &mut self,
        positions: &[Vec3],
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> f64 {
        let n = positions.len();
        self.ensure_scratch(n);
        let k = self.pair_consts();
        let mic = Mic::new(bx);
        let packed = &self.packed;
        let n_tasks = self.scratch_f.len();
        let chunk = packed.len().div_ceil(n_tasks).max(1);
        // Chunk geometry is independent of `ENERGY`, so force-only and
        // full evaluation accumulate in exactly the same order.
        let n_used = packed.len().div_ceil(chunk);

        self.scratch_f
            .par_iter_mut()
            .zip(self.scratch_e.par_iter_mut())
            .zip(packed.par_chunks(chunk))
            .for_each(|((buf, e_out), chunk_pairs)| {
                buf.fill(Vec3::ZERO);
                *e_out = eval_packed_span::<ENERGY>(chunk_pairs, positions, mic, k, buf);
            });

        // Flat striped reduction: each task owns a disjoint index stripe
        // of the output and folds the used buffers over it in fixed
        // order — deterministic, contention-free, allocation-free.
        let used = &self.scratch_f[..n_used];
        let stripe = n.div_ceil(n_tasks).max(1);
        forces
            .par_chunks_mut(stripe)
            .enumerate()
            .for_each(|(s, out)| {
                let base = s * stripe;
                for buf in used {
                    for (k, o) in out.iter_mut().enumerate() {
                        *o += buf[base + k];
                    }
                }
            });

        if ENERGY {
            self.scratch_e[..n_used].iter().sum()
        } else {
            0.0
        }
    }

    /// Shared dispatch for full and force-only evaluation.
    fn run_kernel<const ENERGY: bool>(
        &mut self,
        positions: &[Vec3],
        bx: &SimBox,
        forces: &mut [Vec3],
    ) -> f64 {
        self.prepare(positions, bx);
        if self.use_reference {
            self.pairs_evaluated += self.list.pairs().len() as u64;
            return self.compute_reference(positions, bx, forces);
        }
        self.pairs_evaluated += self.packed.len() as u64;
        if self.parallel && self.packed.len() >= self.parallel_threshold {
            self.compute_parallel::<ENERGY>(positions, bx, forces)
        } else {
            self.compute_serial::<ENERGY>(positions, bx, forces)
        }
    }
}

impl ForceTerm for NonbondedForce {
    fn name(&self) -> &'static str {
        "nonbonded"
    }

    fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        self.run_kernel::<true>(positions, bx, forces)
    }

    fn compute_force_only(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) {
        self.run_kernel::<false>(positions, bx, forces);
    }

    fn configure_kernel(&mut self, cfg: &KernelConfig) {
        self.set_threading(cfg.threaded);
        self.set_parallel_threshold(cfg.parallel_threshold);
        self.set_reference_kernel(cfg.use_reference);
    }

    fn kernel_stats(&self) -> Option<KernelStats> {
        Some(KernelStats {
            pairs_evaluated: self.pairs_evaluated,
            packed_bytes: self.packed_bytes(),
        })
    }

    fn set_neighbor_timing(&mut self, on: bool) {
        self.time_neighbor = on;
    }

    fn take_neighbor_ns(&mut self) -> u64 {
        std::mem::take(&mut self.neighbor_ns)
    }

    fn neighbor_stats(&self) -> Option<(u64, u64)> {
        Some(self.list_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::max_force_error;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;
    use rand::Rng;

    fn lj_top(n: usize, charge: f64) -> Arc<Topology> {
        let mut top = Topology::new();
        for k in 0..n {
            // Alternate charges so the system is neutral.
            let q = if k % 2 == 0 { charge } else { -charge };
            top.add_particle(Particle::new(1.0, q, LjParams::new(1.0, 1.0)));
        }
        Arc::new(top)
    }

    /// Charged LJ particles on a jittered cubic lattice. The lattice keeps
    /// every pair well off the repulsive wall, so forces stay O(10²–10⁶)
    /// and an absolute 1e-8 agreement tolerance is meaningful; uniformly
    /// random positions would produce near-contact pairs whose ~1e10
    /// forces turn machine-epsilon rounding into >1e-8 absolute noise.
    fn random_charged_system(n: usize, l: f64, seed: u64) -> (Arc<Topology>, SimBox, Vec<Vec3>) {
        let top = lj_top(n, 0.2);
        let bx = SimBox::cubic(l);
        let mut rng = rng_from_seed(seed);
        let per_side = (n as f64).cbrt().ceil() as usize;
        let spacing = l / per_side as f64;
        let jitter = 0.25 * spacing;
        let pos: Vec<Vec3> = (0..n)
            .map(|k| {
                let (ix, iy, iz) = (
                    k % per_side,
                    (k / per_side) % per_side,
                    k / (per_side * per_side),
                );
                v3(
                    (ix as f64 + 0.5) * spacing + jitter * (2.0 * rng.random::<f64>() - 1.0),
                    (iy as f64 + 0.5) * spacing + jitter * (2.0 * rng.random::<f64>() - 1.0),
                    (iz as f64 + 0.5) * spacing + jitter * (2.0 * rng.random::<f64>() - 1.0),
                )
            })
            .collect();
        (top, bx, pos)
    }

    #[test]
    fn lj_minimum_at_two_to_one_sixth_sigma() {
        let top = lj_top(2, 0.0);
        let mut nb = NonbondedForce::new(top, 3.0, 0.0, 78.0);
        nb.set_lj_shift(false);
        let r_min = 2.0_f64.powf(1.0 / 6.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(r_min, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert!(
            (e + 1.0).abs() < 1e-10,
            "E at minimum should be -ε, got {e}"
        );
        assert!(f[0].norm() < 1e-9, "force at minimum should vanish");
    }

    #[test]
    fn forces_are_newtonian() {
        let top = lj_top(2, 0.5);
        let mut nb = NonbondedForce::new(top, 3.0, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.3, 0.4, -0.2)];
        let mut f = vec![Vec3::ZERO; 2];
        nb.compute(&pos, &SimBox::Open, &mut f);
        assert!((f[0] + f[1]).norm() < 1e-12);
    }

    #[test]
    fn analytic_forces_match_finite_difference() {
        let top = lj_top(8, 0.3);
        let mut nb = NonbondedForce::new(top, 2.5, 0.0, 78.0);
        nb.set_threading(false);
        let mut rng = rng_from_seed(11);
        // Spread particles loosely so no pair is deep in the repulsive wall
        // (finite differences blow up there).
        let pos: Vec<Vec3> = (0..8)
            .map(|k| {
                v3(
                    (k % 2) as f64 * 1.2 + 0.1 * rng.random::<f64>(),
                    ((k / 2) % 2) as f64 * 1.2 + 0.1 * rng.random::<f64>(),
                    (k / 4) as f64 * 1.2 + 0.1 * rng.random::<f64>(),
                )
            })
            .collect();
        let err = max_force_error(&mut nb, &pos, &SimBox::Open, 1e-6);
        assert!(err < 1e-4, "force error vs finite difference: {err}");
    }

    #[test]
    fn shifted_potential_is_zero_at_cutoff() {
        let top = lj_top(2, 0.0);
        let mut nb = NonbondedForce::new(top, 2.5, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(2.4999999, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert!(e.abs() < 1e-6, "shifted LJ at cutoff should be ~0, got {e}");
    }

    #[test]
    fn rf_coulomb_energy_is_zero_at_cutoff() {
        // With LJ epsilon 0 the only term is RF coulomb, which is
        // constructed to vanish at the cutoff.
        let mut top = Topology::new();
        top.add_particle(Particle::new(1.0, 1.0, LjParams::new(1.0, 0.0)));
        top.add_particle(Particle::new(1.0, -1.0, LjParams::new(1.0, 0.0)));
        let mut nb = NonbondedForce::new(Arc::new(top), 2.0, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.9999999, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert!(e.abs() < 1e-5, "RF energy at cutoff should be ~0, got {e}");
    }

    #[test]
    fn serial_and_parallel_agree() {
        let n = 256;
        let (top, bx, pos) = random_charged_system(n, 8.0, 3);

        let mut nb_ser = NonbondedForce::new(top.clone(), 2.0, 0.3, 78.0);
        nb_ser.set_threading(false);
        let mut nb_par = NonbondedForce::new(top, 2.0, 0.3, 78.0);
        nb_par.set_threading(true);
        nb_par.set_parallel_threshold(1);

        let mut f_ser = vec![Vec3::ZERO; n];
        let mut f_par = vec![Vec3::ZERO; n];
        let e_ser = nb_ser.compute(&pos, &bx, &mut f_ser);
        let e_par = nb_par.compute(&pos, &bx, &mut f_par);
        assert!(
            (e_ser - e_par).abs() < 1e-8 * e_ser.abs().max(1.0),
            "serial {e_ser} vs parallel {e_par}"
        );
        for (a, b) in f_ser.iter().zip(&f_par) {
            assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn packed_kernels_match_reference() {
        // The cross-kernel agreement gate: packed serial and packed
        // parallel must reproduce the original per-pair lookup kernel to
        // 1e-8 on a 256-particle charged LJ / reaction-field system.
        let n = 256;
        let (top, bx, pos) = random_charged_system(n, 8.0, 17);

        let mut nb_ref = NonbondedForce::new(top.clone(), 2.0, 0.3, 78.0);
        nb_ref.set_reference_kernel(true);
        let mut nb_ser = NonbondedForce::new(top.clone(), 2.0, 0.3, 78.0);
        nb_ser.set_threading(false);
        let mut nb_par = NonbondedForce::new(top, 2.0, 0.3, 78.0);
        nb_par.set_threading(true);
        nb_par.set_parallel_threshold(1);

        let mut f_ref = vec![Vec3::ZERO; n];
        let mut f_ser = vec![Vec3::ZERO; n];
        let mut f_par = vec![Vec3::ZERO; n];
        let e_ref = nb_ref.compute(&pos, &bx, &mut f_ref);
        let e_ser = nb_ser.compute(&pos, &bx, &mut f_ser);
        let e_par = nb_par.compute(&pos, &bx, &mut f_par);

        let scale = e_ref.abs().max(1.0);
        assert!(
            (e_ser - e_ref).abs() < 1e-8 * scale,
            "packed serial energy {e_ser} vs reference {e_ref}"
        );
        assert!(
            (e_par - e_ref).abs() < 1e-8 * scale,
            "packed parallel energy {e_par} vs reference {e_ref}"
        );
        for k in 0..n {
            assert!(
                (f_ser[k] - f_ref[k]).norm() < 1e-8,
                "serial force {k} diverges from reference"
            );
            assert!(
                (f_par[k] - f_ref[k]).norm() < 1e-8,
                "parallel force {k} diverges from reference"
            );
        }
    }

    #[test]
    fn simd_dispatch_matches_scalar_span() {
        // Whatever kernel `eval_packed_span` picks for this host must
        // agree with the portable scalar loop on the same packed list.
        let n = 256;
        let (top, bx, pos) = random_charged_system(n, 8.0, 41);
        let mut nb = NonbondedForce::new(top, 2.0, 0.3, 78.0);
        nb.set_threading(false);
        let mut f_dispatched = vec![Vec3::ZERO; n];
        let e_dispatched = nb.compute(&pos, &bx, &mut f_dispatched);

        let mut f_scalar = vec![Vec3::ZERO; n];
        let e_scalar = eval_packed_span_scalar::<true>(
            &nb.packed,
            &pos,
            Mic::new(&bx),
            nb.pair_consts(),
            &mut f_scalar,
        );

        assert!(
            (e_dispatched - e_scalar).abs() < 1e-8 * e_scalar.abs().max(1.0),
            "dispatched energy {e_dispatched} vs scalar {e_scalar}"
        );
        for k in 0..n {
            assert!(
                (f_dispatched[k] - f_scalar[k]).norm() < 1e-8,
                "dispatched force {k} diverges from scalar span"
            );
        }
    }

    #[test]
    fn mic_displacement_matches_simbox() {
        // The hoisted multiply-by-reciprocal minimum image must agree
        // with SimBox::displacement for in-box separations.
        let bx = SimBox::cubic(7.3);
        let mic = Mic::new(&bx);
        let mut rng = rng_from_seed(13);
        for _ in 0..1000 {
            let a = v3(
                7.3 * rng.random::<f64>(),
                7.3 * rng.random::<f64>(),
                7.3 * rng.random::<f64>(),
            );
            let b = v3(
                7.3 * rng.random::<f64>(),
                7.3 * rng.random::<f64>(),
                7.3 * rng.random::<f64>(),
            );
            let d_mic = mic.displacement(a, b);
            let d_box = bx.displacement(a, b);
            assert!((d_mic - d_box).norm() < 1e-12, "{d_mic:?} vs {d_box:?}");
        }
    }

    #[test]
    fn force_only_forces_are_bitwise_identical() {
        // The engine's fast path relies on force-only evaluation being
        // *bitwise* equal to full evaluation, in both kernels.
        let n = 256;
        let (top, bx, pos) = random_charged_system(n, 8.0, 29);

        for threaded in [false, true] {
            let mut nb_full = NonbondedForce::new(top.clone(), 2.0, 0.3, 78.0);
            let mut nb_fast = NonbondedForce::new(top.clone(), 2.0, 0.3, 78.0);
            for nb in [&mut nb_full, &mut nb_fast] {
                nb.set_threading(threaded);
                nb.set_parallel_threshold(1);
            }
            let mut f_full = vec![Vec3::ZERO; n];
            let mut f_fast = vec![Vec3::ZERO; n];
            nb_full.compute(&pos, &bx, &mut f_full);
            nb_fast.compute_force_only(&pos, &bx, &mut f_fast);
            for k in 0..n {
                assert_eq!(
                    f_full[k], f_fast[k],
                    "force-only force {k} not bitwise identical (threaded: {threaded})"
                );
            }
        }
    }

    #[test]
    fn lj_shift_toggle_repacks() {
        // Toggling the shift after construction must invalidate the
        // packed constants, not just future builds.
        let top = lj_top(2, 0.0);
        let mut nb = NonbondedForce::new(top, 2.5, 1.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.5, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e_shifted = nb.compute(&pos, &SimBox::Open, &mut f);
        nb.set_lj_shift(false);
        // Positions unchanged → no neighbour rebuild; only the dirty flag
        // forces the repack.
        let e_raw = nb.compute(&pos, &SimBox::Open, &mut f);
        let lj = LjParams::new(1.0, 1.0);
        let expected_shift = {
            let p = pair_type_params(lj, lj, 2.5);
            p.e_shift
        };
        assert!(
            ((e_raw - e_shifted) - expected_shift).abs() < 1e-12,
            "unshifted − shifted = {}, expected {expected_shift}",
            e_raw - e_shifted
        );
    }

    #[test]
    fn kernel_stats_count_streamed_pairs() {
        let n = 64;
        let (top, bx, pos) = random_charged_system(n, 6.0, 5);
        let mut nb = NonbondedForce::new(top, 2.0, 0.3, 78.0);
        nb.set_threading(false);
        let mut f = vec![Vec3::ZERO; n];
        nb.compute(&pos, &bx, &mut f);
        let stats = nb.kernel_stats().unwrap();
        assert_eq!(stats.pairs_evaluated, nb.n_pairs() as u64);
        assert!(stats.packed_bytes >= (nb.n_pairs() * std::mem::size_of::<PackedPair>()) as u64);
        nb.compute(&pos, &bx, &mut f);
        assert_eq!(
            nb.kernel_stats().unwrap().pairs_evaluated,
            2 * nb.n_pairs() as u64
        );
    }

    #[test]
    fn excluded_pairs_do_not_interact() {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        top.add_exclusion(0, 1);
        let mut nb = NonbondedForce::new(Arc::new(top), 3.0, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(0.5, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert_eq!(e, 0.0);
        assert_eq!(f[0], Vec3::ZERO);
    }

    #[test]
    fn types_are_interned() {
        // 256 particles but only two distinct (LJ, charge) combinations.
        let top = lj_top(256, 0.2);
        let nb = NonbondedForce::new(top, 2.0, 0.3, 78.0);
        assert_eq!(nb.n_types(), 2);
    }
}
