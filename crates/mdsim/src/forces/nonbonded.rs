//! Non-bonded interactions: Lennard-Jones plus reaction-field Coulomb.
//!
//! This is the villin setup from §3.1 of the paper: *"long-range
//! electrostatics were treated with a reaction field, using a continuum
//! dielectric constant of 78"*. Both terms share one Verlet neighbour list
//! and one pair loop — the hot kernel of the engine. The loop has a serial
//! path and a rayon path (the "threads" tier of Fig. 6) selected by
//! [`NonbondedForce::set_threading`].

use crate::forces::ForceTerm;
use crate::neighbor::NeighborList;
use crate::pbc::SimBox;
use crate::topology::Topology;
use crate::vec3::Vec3;
use rayon::prelude::*;
use std::sync::Arc;

/// Pair interactions below `cutoff`: shifted LJ and reaction-field Coulomb.
pub struct NonbondedForce {
    top: Arc<Topology>,
    list: NeighborList,
    cutoff: f64,
    /// Reaction-field dielectric constant (paper: 78).
    eps_rf: f64,
    krf: f64,
    crf: f64,
    /// Per-pair LJ potential shift so V_lj(r_c) = 0 (computed per pair).
    shift_lj: bool,
    parallel: bool,
    /// Minimum pair count before the rayon path is used.
    parallel_threshold: usize,
    /// When set, neighbour-list refresh time accumulates in `neighbor_ns`.
    time_neighbor: bool,
    neighbor_ns: u64,
}

impl NonbondedForce {
    /// Create the term. `skin` is the Verlet buffer (0.3–0.5 σ is typical).
    pub fn new(top: Arc<Topology>, cutoff: f64, skin: f64, eps_rf: f64) -> Self {
        assert!(eps_rf >= 1.0, "dielectric must be >= 1, got {eps_rf}");
        // Reaction-field constants (Tironi et al.): with an infinite or
        // large dielectric, krf -> 1/(2 rc^3).
        let krf = (eps_rf - 1.0) / ((2.0 * eps_rf + 1.0) * cutoff.powi(3));
        let crf = 1.0 / cutoff + krf * cutoff * cutoff;
        NonbondedForce {
            top,
            list: NeighborList::new(cutoff, skin),
            cutoff,
            eps_rf,
            krf,
            crf,
            shift_lj: true,
            parallel: true,
            parallel_threshold: 4096,
            time_neighbor: false,
            neighbor_ns: 0,
        }
    }

    /// Enable/disable the rayon-threaded pair loop.
    pub fn set_threading(&mut self, on: bool) -> &mut Self {
        self.parallel = on;
        self
    }

    /// Disable the LJ potential shift (for free-energy bookkeeping where
    /// absolute energies matter).
    pub fn set_lj_shift(&mut self, on: bool) -> &mut Self {
        self.shift_lj = on;
        self
    }

    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    pub fn eps_rf(&self) -> f64 {
        self.eps_rf
    }

    /// Neighbour-list statistics (builds, updates) for instrumentation.
    pub fn list_stats(&self) -> (u64, u64) {
        (self.list.n_builds(), self.list.n_updates())
    }

    /// Energy and force for one pair at squared distance `r2`, given the
    /// minimum-image displacement `dr = ri - rj`. Returns (energy, force on i).
    #[inline]
    fn pair_interaction(&self, i: usize, j: usize, dr: Vec3, r2: f64) -> (f64, Vec3) {
        let pi = &self.top.particles[i];
        let pj = &self.top.particles[j];
        let lj = pi.lj.combine(pj.lj);
        let qq = pi.charge * pj.charge;

        let inv_r2 = 1.0 / r2;
        let sr2 = lj.sigma * lj.sigma * inv_r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;

        // LJ: V = 4ε(sr12 - sr6); F·r̂ = 24ε(2 sr12 - sr6)/r.
        let mut e = 4.0 * lj.epsilon * (sr12 - sr6);
        if self.shift_lj {
            let src2 = (lj.sigma / self.cutoff).powi(2);
            let src6 = src2 * src2 * src2;
            e -= 4.0 * lj.epsilon * (src6 * src6 - src6);
        }
        let f_over_r_lj = 24.0 * lj.epsilon * (2.0 * sr12 - sr6) * inv_r2;

        // Reaction-field Coulomb: V = qq (1/r + krf r² - crf);
        // F·r̂ = qq (1/r² - 2 krf r).
        let mut f_over_r_c = 0.0;
        if qq != 0.0 {
            let r = r2.sqrt();
            e += qq * (1.0 / r + self.krf * r2 - self.crf);
            f_over_r_c = qq * (1.0 / (r2 * r) - 2.0 * self.krf);
        }

        (e, dr * (f_over_r_lj + f_over_r_c))
    }

    fn compute_serial(&self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let rc2 = self.cutoff * self.cutoff;
        let mut energy = 0.0;
        for &(i, j) in self.list.pairs() {
            let (i, j) = (i as usize, j as usize);
            let dr = bx.displacement(positions[i], positions[j]);
            let r2 = dr.norm2();
            if r2 > rc2 || r2 == 0.0 {
                continue;
            }
            let (e, f) = self.pair_interaction(i, j, dr, r2);
            energy += e;
            forces[i] += f;
            forces[j] -= f;
        }
        energy
    }

    fn compute_parallel(&self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        let rc2 = self.cutoff * self.cutoff;
        let n = positions.len();
        let pairs = self.list.pairs();
        let n_chunks = rayon::current_num_threads().max(1);
        let chunk = pairs.len().div_ceil(n_chunks).max(1);

        let (energy, partial) = pairs
            .par_chunks(chunk)
            .map(|chunk_pairs| {
                let mut local_f = vec![Vec3::ZERO; n];
                let mut local_e = 0.0;
                for &(i, j) in chunk_pairs {
                    let (i, j) = (i as usize, j as usize);
                    let dr = bx.displacement(positions[i], positions[j]);
                    let r2 = dr.norm2();
                    if r2 > rc2 || r2 == 0.0 {
                        continue;
                    }
                    let (e, f) = self.pair_interaction(i, j, dr, r2);
                    local_e += e;
                    local_f[i] += f;
                    local_f[j] -= f;
                }
                (local_e, local_f)
            })
            .reduce(
                || (0.0, vec![Vec3::ZERO; n]),
                |(ea, mut fa), (eb, fb)| {
                    for (a, b) in fa.iter_mut().zip(fb) {
                        *a += b;
                    }
                    (ea + eb, fa)
                },
            );
        for (f, p) in forces.iter_mut().zip(partial) {
            *f += p;
        }
        energy
    }
}

impl ForceTerm for NonbondedForce {
    fn name(&self) -> &'static str {
        "nonbonded"
    }

    fn compute(&mut self, positions: &[Vec3], bx: &SimBox, forces: &mut [Vec3]) -> f64 {
        if self.time_neighbor {
            let start = std::time::Instant::now();
            self.list.update(positions, bx, &self.top);
            self.neighbor_ns += start.elapsed().as_nanos() as u64;
        } else {
            self.list.update(positions, bx, &self.top);
        }
        if self.parallel && self.list.pairs().len() >= self.parallel_threshold {
            self.compute_parallel(positions, bx, forces)
        } else {
            self.compute_serial(positions, bx, forces)
        }
    }

    fn set_neighbor_timing(&mut self, on: bool) {
        self.time_neighbor = on;
    }

    fn take_neighbor_ns(&mut self) -> u64 {
        std::mem::take(&mut self.neighbor_ns)
    }

    fn neighbor_stats(&self) -> Option<(u64, u64)> {
        Some(self.list_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::max_force_error;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;
    use rand::Rng;

    fn lj_top(n: usize, charge: f64) -> Arc<Topology> {
        let mut top = Topology::new();
        for k in 0..n {
            // Alternate charges so the system is neutral.
            let q = if k % 2 == 0 { charge } else { -charge };
            top.add_particle(Particle::new(1.0, q, LjParams::new(1.0, 1.0)));
        }
        Arc::new(top)
    }

    #[test]
    fn lj_minimum_at_two_to_one_sixth_sigma() {
        let top = lj_top(2, 0.0);
        let mut nb = NonbondedForce::new(top, 3.0, 0.0, 78.0);
        nb.set_lj_shift(false);
        let r_min = 2.0_f64.powf(1.0 / 6.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(r_min, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert!((e + 1.0).abs() < 1e-10, "E at minimum should be -ε, got {e}");
        assert!(f[0].norm() < 1e-9, "force at minimum should vanish");
    }

    #[test]
    fn forces_are_newtonian() {
        let top = lj_top(2, 0.5);
        let mut nb = NonbondedForce::new(top, 3.0, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.3, 0.4, -0.2)];
        let mut f = vec![Vec3::ZERO; 2];
        nb.compute(&pos, &SimBox::Open, &mut f);
        assert!((f[0] + f[1]).norm() < 1e-12);
    }

    #[test]
    fn analytic_forces_match_finite_difference() {
        let top = lj_top(8, 0.3);
        let mut nb = NonbondedForce::new(top, 2.5, 0.0, 78.0);
        nb.set_threading(false);
        let mut rng = rng_from_seed(11);
        // Spread particles loosely so no pair is deep in the repulsive wall
        // (finite differences blow up there).
        let pos: Vec<Vec3> = (0..8)
            .map(|k| {
                v3(
                    (k % 2) as f64 * 1.2 + 0.1 * rng.random::<f64>(),
                    ((k / 2) % 2) as f64 * 1.2 + 0.1 * rng.random::<f64>(),
                    (k / 4) as f64 * 1.2 + 0.1 * rng.random::<f64>(),
                )
            })
            .collect();
        let err = max_force_error(&mut nb, &pos, &SimBox::Open, 1e-6);
        assert!(err < 1e-4, "force error vs finite difference: {err}");
    }

    #[test]
    fn shifted_potential_is_zero_at_cutoff() {
        let top = lj_top(2, 0.0);
        let mut nb = NonbondedForce::new(top, 2.5, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(2.4999999, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert!(e.abs() < 1e-6, "shifted LJ at cutoff should be ~0, got {e}");
    }

    #[test]
    fn rf_coulomb_energy_is_zero_at_cutoff() {
        // With LJ epsilon 0 the only term is RF coulomb, which is
        // constructed to vanish at the cutoff.
        let mut top = Topology::new();
        top.add_particle(Particle::new(1.0, 1.0, LjParams::new(1.0, 0.0)));
        top.add_particle(Particle::new(1.0, -1.0, LjParams::new(1.0, 0.0)));
        let mut nb = NonbondedForce::new(Arc::new(top), 2.0, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.9999999, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert!(e.abs() < 1e-5, "RF energy at cutoff should be ~0, got {e}");
    }

    #[test]
    fn serial_and_parallel_agree() {
        let n = 256;
        let l = 8.0;
        let top = lj_top(n, 0.2);
        let bx = SimBox::cubic(l);
        let mut rng = rng_from_seed(3);
        let pos: Vec<Vec3> = (0..n)
            .map(|_| {
                v3(
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                    rng.random::<f64>() * l,
                )
            })
            .collect();

        let mut nb_ser = NonbondedForce::new(top.clone(), 2.0, 0.3, 78.0);
        nb_ser.set_threading(false);
        let mut nb_par = NonbondedForce::new(top, 2.0, 0.3, 78.0);
        nb_par.set_threading(true);
        nb_par.parallel_threshold = 1;

        let mut f_ser = vec![Vec3::ZERO; n];
        let mut f_par = vec![Vec3::ZERO; n];
        let e_ser = nb_ser.compute(&pos, &bx, &mut f_ser);
        let e_par = nb_par.compute(&pos, &bx, &mut f_par);
        assert!(
            (e_ser - e_par).abs() < 1e-8 * e_ser.abs().max(1.0),
            "serial {e_ser} vs parallel {e_par}"
        );
        for (a, b) in f_ser.iter().zip(&f_par) {
            assert!((*a - *b).norm() < 1e-8);
        }
    }

    #[test]
    fn excluded_pairs_do_not_interact() {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        top.add_exclusion(0, 1);
        let mut nb = NonbondedForce::new(Arc::new(top), 3.0, 0.0, 78.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(0.5, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = nb.compute(&pos, &SimBox::Open, &mut f);
        assert_eq!(e, 0.0);
        assert_eq!(f[0], Vec3::ZERO);
    }
}
