//! Time integrators: velocity Verlet (NVE / thermostatted), Langevin
//! (BAOAB), and overdamped Brownian dynamics.
//!
//! An integrator advances the [`State`] by one step of length `dt`. By
//! convention `state.forces` holds forces for the *current* positions on
//! entry (the engine primes them before the first step), and holds forces
//! for the *new* positions on exit.

use crate::forces::{Energies, ForceField};
use crate::rng::{sample_normal, SimRng};
use crate::state::State;
use crate::thermostat::Thermostat;
use crate::units::KB;
use crate::vec3::Vec3;

/// One-step propagator.
pub trait Integrator: Send {
    fn name(&self) -> &'static str;
    /// Advance by one step, returning the energy breakdown at the new
    /// positions.
    fn step(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, dof: usize) -> Energies;

    /// Advance by one step without assembling an energy breakdown — the
    /// fast path for steps where no observable reads the energy. The
    /// trajectory must be bitwise identical to [`Integrator::step`]; the
    /// default just discards the energies.
    fn step_force_only(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, dof: usize) {
        let _ = self.step(state, ff, dt, dof);
    }
}

/// Velocity Verlet, optionally coupled to a [`Thermostat`].
///
/// Without a thermostat this samples the microcanonical (NVE) ensemble and
/// conserves energy to O(dt²); with one it targets NVT.
pub struct VelocityVerlet {
    thermostat: Option<Box<dyn Thermostat>>,
}

impl VelocityVerlet {
    /// Plain NVE integration.
    pub fn nve() -> Self {
        VelocityVerlet { thermostat: None }
    }

    /// NVT integration with the given thermostat.
    pub fn nvt(thermostat: Box<dyn Thermostat>) -> Self {
        VelocityVerlet {
            thermostat: Some(thermostat),
        }
    }
}

impl VelocityVerlet {
    /// First half kick + drift (everything before the force evaluation).
    fn pre_force(&mut self, state: &mut State, dt: f64) {
        let half = 0.5 * dt;
        for i in 0..state.n_particles() {
            let inv_m = 1.0 / state.masses[i];
            state.velocities[i] += state.forces[i] * (half * inv_m);
            state.positions[i] += state.velocities[i] * dt;
        }
    }

    /// Second half kick, thermostat, clock (everything after).
    fn post_force(&mut self, state: &mut State, dt: f64, dof: usize) {
        let half = 0.5 * dt;
        for i in 0..state.n_particles() {
            let inv_m = 1.0 / state.masses[i];
            state.velocities[i] += state.forces[i] * (half * inv_m);
        }
        if let Some(th) = self.thermostat.as_mut() {
            th.apply(state, dt, dof);
        }
        state.step += 1;
        state.time += dt;
    }
}

impl Integrator for VelocityVerlet {
    fn name(&self) -> &'static str {
        "velocity-verlet"
    }

    fn step(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, dof: usize) -> Energies {
        self.pre_force(state, dt);
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        let energies = {
            let forces = &mut state.forces;
            ff.compute(positions, sim_box, forces)
        };
        self.post_force(state, dt, dof);
        energies
    }

    fn step_force_only(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, dof: usize) {
        self.pre_force(state, dt);
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        {
            let forces = &mut state.forces;
            ff.compute_force_only(positions, sim_box, forces);
        }
        self.post_force(state, dt, dof);
    }
}

/// Langevin dynamics via the BAOAB splitting (Leimkuhler & Matthews).
///
/// This is the workhorse integrator for the coarse-grained folding model:
/// the friction both thermostats the system and mimics solvent drag.
pub struct Langevin {
    pub temperature: f64,
    /// Friction coefficient γ (inverse time units).
    pub gamma: f64,
    rng: SimRng,
}

impl Langevin {
    pub fn new(temperature: f64, gamma: f64, rng: SimRng) -> Self {
        assert!(temperature >= 0.0 && gamma > 0.0);
        Langevin {
            temperature,
            gamma,
            rng,
        }
    }
}

impl Langevin {
    /// B-A-O-A: everything before the force evaluation.
    fn pre_force(&mut self, state: &mut State, dt: f64) {
        let half = 0.5 * dt;
        let c1 = (-self.gamma * dt).exp();
        let c2 = (1.0 - c1 * c1).sqrt();
        let n = state.n_particles();

        // B: half kick.
        for i in 0..n {
            state.velocities[i] += state.forces[i] * (half / state.masses[i]);
        }
        // A: half drift.
        for i in 0..n {
            state.positions[i] += state.velocities[i] * half;
        }
        // O: Ornstein-Uhlenbeck velocity update.
        for i in 0..n {
            let sigma = (KB * self.temperature / state.masses[i]).sqrt();
            let noise = Vec3::new(
                sample_normal(&mut self.rng),
                sample_normal(&mut self.rng),
                sample_normal(&mut self.rng),
            );
            state.velocities[i] = state.velocities[i] * c1 + noise * (sigma * c2);
        }
        // A: half drift.
        for i in 0..n {
            state.positions[i] += state.velocities[i] * half;
        }
    }

    /// Final B kick and clock: everything after the force evaluation.
    fn post_force(&mut self, state: &mut State, dt: f64) {
        let half = 0.5 * dt;
        for i in 0..state.n_particles() {
            state.velocities[i] += state.forces[i] * (half / state.masses[i]);
        }
        state.step += 1;
        state.time += dt;
    }
}

impl Integrator for Langevin {
    fn name(&self) -> &'static str {
        "langevin-baoab"
    }

    fn step(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, _dof: usize) -> Energies {
        self.pre_force(state, dt);
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        let energies = {
            let forces = &mut state.forces;
            ff.compute(positions, sim_box, forces)
        };
        self.post_force(state, dt);
        energies
    }

    fn step_force_only(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, _dof: usize) {
        self.pre_force(state, dt);
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        {
            let forces = &mut state.forces;
            ff.compute_force_only(positions, sim_box, forces);
        }
        self.post_force(state, dt);
    }
}

/// Overdamped (Brownian / position-Langevin) dynamics:
/// `dx = F/(mγ) dt + √(2 kB T dt / (m γ)) ξ`. Velocities are not evolved.
pub struct Brownian {
    pub temperature: f64,
    pub gamma: f64,
    rng: SimRng,
}

impl Brownian {
    pub fn new(temperature: f64, gamma: f64, rng: SimRng) -> Self {
        assert!(temperature >= 0.0 && gamma > 0.0);
        Brownian {
            temperature,
            gamma,
            rng,
        }
    }
}

impl Brownian {
    /// Position update: everything before the force evaluation.
    fn pre_force(&mut self, state: &mut State, dt: f64) {
        for i in 0..state.n_particles() {
            let mobility = 1.0 / (state.masses[i] * self.gamma);
            let sigma = (2.0 * KB * self.temperature * dt * mobility).sqrt();
            let noise = Vec3::new(
                sample_normal(&mut self.rng),
                sample_normal(&mut self.rng),
                sample_normal(&mut self.rng),
            );
            state.positions[i] += state.forces[i] * (mobility * dt) + noise * sigma;
        }
    }
}

impl Integrator for Brownian {
    fn name(&self) -> &'static str {
        "brownian"
    }

    fn step(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, _dof: usize) -> Energies {
        self.pre_force(state, dt);
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        let energies = {
            let forces = &mut state.forces;
            ff.compute(positions, sim_box, forces)
        };
        state.step += 1;
        state.time += dt;
        energies
    }

    fn step_force_only(&mut self, state: &mut State, ff: &mut ForceField, dt: f64, _dof: usize) {
        self.pre_force(state, dt);
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        {
            let forces = &mut state.forces;
            ff.compute_force_only(positions, sim_box, forces);
        }
        state.step += 1;
        state.time += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::HarmonicRestraint;
    use crate::pbc::SimBox;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle, Topology};
    use crate::vec3::v3;

    fn oscillator_ff(k: f64) -> ForceField {
        ForceField::new().with(Box::new(HarmonicRestraint::new(vec![(0, Vec3::ZERO)], k)))
    }

    fn one_particle() -> (Topology, State) {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        let state = State::new(vec![v3(1.0, 0.0, 0.0)], &top, SimBox::Open);
        (top, state)
    }

    fn prime(state: &mut State, ff: &mut ForceField) {
        let (positions, sim_box) = (&state.positions, &state.sim_box);
        ff.compute(positions, sim_box, &mut state.forces);
    }

    #[test]
    fn verlet_conserves_energy_for_harmonic_oscillator() {
        let (_top, mut state) = one_particle();
        let mut ff = oscillator_ff(1.0);
        prime(&mut state, &mut ff);
        let mut integ = VelocityVerlet::nve();
        let e0 = state.kinetic_energy() + ff.energy(&state.positions, &state.sim_box);
        let dt = 0.01;
        let mut worst: f64 = 0.0;
        for _ in 0..10_000 {
            let energies = integ.step(&mut state, &mut ff, dt, 3);
            let e = state.kinetic_energy() + energies.total();
            worst = worst.max((e - e0).abs());
        }
        assert!(worst < 1e-4, "energy drift over 10k steps: {worst}");
    }

    #[test]
    fn verlet_period_matches_analytic_oscillator() {
        // ω = sqrt(k/m) = 2 ⇒ period π. Track the first return to positive
        // x-crossing of the velocity.
        let (_top, mut state) = one_particle();
        let mut ff = oscillator_ff(4.0);
        prime(&mut state, &mut ff);
        let mut integ = VelocityVerlet::nve();
        let dt = 1e-3;
        let mut prev_x = state.positions[0].x;
        let mut crossings = Vec::new();
        for step in 1..=7000 {
            integ.step(&mut state, &mut ff, dt, 3);
            let x = state.positions[0].x;
            if prev_x < 0.0 && x >= 0.0 {
                crossings.push(step as f64 * dt);
            }
            prev_x = x;
        }
        assert!(crossings.len() >= 2, "expected at least 2 crossings");
        let period = crossings[1] - crossings[0];
        assert!(
            (period - std::f64::consts::PI).abs() < 1e-2,
            "period = {period}"
        );
    }

    #[test]
    fn langevin_equilibrates_harmonic_oscillator() {
        // For V = k x²/2 per coordinate, equipartition gives <x²> = kB T/k.
        let (_top, mut state) = one_particle();
        let mut ff = oscillator_ff(2.0);
        prime(&mut state, &mut ff);
        let mut integ = Langevin::new(1.0, 1.0, rng_from_seed(8));
        let dt = 0.02;
        // Equilibrate, then sample.
        for _ in 0..2000 {
            integ.step(&mut state, &mut ff, dt, 3);
        }
        let mut x2_sum = 0.0;
        let n_samp = 60_000;
        for _ in 0..n_samp {
            integ.step(&mut state, &mut ff, dt, 3);
            x2_sum += state.positions[0].x * state.positions[0].x;
        }
        let x2 = x2_sum / n_samp as f64;
        assert!(
            (x2 - 0.5).abs() < 0.05,
            "<x²> = {x2}, expected kB T/k = 0.5"
        );
    }

    #[test]
    fn brownian_diffuses_free_particle() {
        // Free diffusion: <r²(t)> = 6 D t with D = kB T/(m γ).
        let mut top = Topology::new();
        let n = 400;
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 0.0)));
        }
        let mut state = State::new(vec![Vec3::ZERO; n], &top, SimBox::Open);
        let mut ff = ForceField::new(); // no forces at all
        prime(&mut state, &mut ff);
        let mut integ = Brownian::new(1.0, 2.0, rng_from_seed(2));
        let dt = 0.01;
        let n_steps = 500;
        for _ in 0..n_steps {
            integ.step(&mut state, &mut ff, dt, 3 * n);
        }
        let t = n_steps as f64 * dt;
        let msd: f64 = state.positions.iter().map(|p| p.norm2()).sum::<f64>() / n as f64;
        let expected = 6.0 * (1.0 / 2.0) * t; // 6 D t, D = kT/(mγ) = 0.5
        assert!(
            (msd - expected).abs() / expected < 0.15,
            "MSD = {msd}, expected {expected}"
        );
    }

    #[test]
    fn integrators_advance_clock() {
        let (_top, mut state) = one_particle();
        let mut ff = oscillator_ff(1.0);
        prime(&mut state, &mut ff);
        let mut integ = VelocityVerlet::nve();
        integ.step(&mut state, &mut ff, 0.5, 3);
        integ.step(&mut state, &mut ff, 0.5, 3);
        assert_eq!(state.step, 2);
        assert!((state.time - 1.0).abs() < 1e-12);
    }

    #[test]
    fn force_only_step_matches_full_step_bitwise() {
        // Two oscillators advanced by step() and step_force_only() must
        // stay bitwise identical — the engine's fast path depends on it.
        let run = |fast: bool| -> Vec<Vec3> {
            let (_top, mut state) = one_particle();
            let mut ff = oscillator_ff(1.3);
            prime(&mut state, &mut ff);
            let mut integ = VelocityVerlet::nve();
            for _ in 0..200 {
                if fast {
                    integ.step_force_only(&mut state, &mut ff, 0.01, 3);
                } else {
                    integ.step(&mut state, &mut ff, 0.01, 3);
                }
            }
            state.positions
        };
        assert_eq!(run(false), run(true));

        // Same for Langevin (seeded noise) and Brownian.
        let run_langevin = |fast: bool| -> Vec<Vec3> {
            let (_top, mut state) = one_particle();
            let mut ff = oscillator_ff(1.0);
            prime(&mut state, &mut ff);
            let mut integ = Langevin::new(1.0, 1.0, rng_from_seed(8));
            for _ in 0..100 {
                if fast {
                    integ.step_force_only(&mut state, &mut ff, 0.01, 3);
                } else {
                    integ.step(&mut state, &mut ff, 0.01, 3);
                }
            }
            state.positions
        };
        assert_eq!(run_langevin(false), run_langevin(true));

        let run_brownian = |fast: bool| -> Vec<Vec3> {
            let (_top, mut state) = one_particle();
            let mut ff = oscillator_ff(1.0);
            prime(&mut state, &mut ff);
            let mut integ = Brownian::new(1.0, 2.0, rng_from_seed(4));
            for _ in 0..100 {
                if fast {
                    integ.step_force_only(&mut state, &mut ff, 0.01, 3);
                } else {
                    integ.step(&mut state, &mut ff, 0.01, 3);
                }
            }
            state.positions
        };
        assert_eq!(run_brownian(false), run_brownian(true));
    }

    #[test]
    fn thermostatted_verlet_controls_temperature() {
        use crate::thermostat::Berendsen;
        let n = 64;
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        // Ideal gas of restrained particles (independent oscillators).
        let anchors: Vec<(usize, Vec3)> =
            (0..n).map(|i| (i, v3(i as f64 * 2.0, 0.0, 0.0))).collect();
        let mut ff = ForceField::new().with(Box::new(HarmonicRestraint::new(anchors.clone(), 1.0)));
        let mut positions = vec![Vec3::ZERO; n];
        for (i, p) in positions.iter_mut().enumerate() {
            *p = anchors[i].1;
        }
        let mut state = State::new(positions, &top, SimBox::Open);
        let dof = top.dof(3);
        let mut rng = rng_from_seed(3);
        state.init_velocities(2.0, dof, &mut rng);
        prime(&mut state, &mut ff);
        let mut integ = VelocityVerlet::nvt(Box::new(Berendsen::new(1.0, 0.1)));
        for _ in 0..3000 {
            integ.step(&mut state, &mut ff, 0.01, dof);
        }
        let t = state.temperature(dof);
        assert!((t - 1.0).abs() < 0.25, "temperature after coupling: {t}");
    }
}
