//! Temperature-control algorithms.
//!
//! The paper's villin runs use a Nosé-Hoover thermostat with a 0.5 ps
//! oscillation period; we implement Nosé-Hoover plus the Berendsen and
//! stochastic velocity-rescale (Bussi) thermostats as alternatives.

use crate::rng::{sample_normal, SimRng};
use crate::state::State;
use crate::units::KB;

/// Velocity-scaling temperature control applied once per step after the
/// position/velocity update.
pub trait Thermostat: Send {
    fn name(&self) -> &'static str;
    fn target_temperature(&self) -> f64;
    /// Scale velocities in place. `dof` is the number of kinetic degrees of
    /// freedom.
    fn apply(&mut self, state: &mut State, dt: f64, dof: usize);
}

fn scale_velocities(state: &mut State, lambda: f64) {
    for v in state.velocities.iter_mut() {
        *v *= lambda;
    }
}

/// Berendsen weak coupling: `λ² = 1 + (dt/τ)(T0/T − 1)`.
///
/// Fast equilibration but does not sample the canonical ensemble; kept for
/// preparation runs.
pub struct Berendsen {
    pub t0: f64,
    pub tau: f64,
}

impl Berendsen {
    pub fn new(t0: f64, tau: f64) -> Self {
        assert!(t0 >= 0.0 && tau > 0.0);
        Berendsen { t0, tau }
    }
}

impl Thermostat for Berendsen {
    fn name(&self) -> &'static str {
        "berendsen"
    }

    fn target_temperature(&self) -> f64 {
        self.t0
    }

    fn apply(&mut self, state: &mut State, dt: f64, dof: usize) {
        let t = state.temperature(dof);
        if t <= 0.0 {
            return;
        }
        let lambda2 = 1.0 + (dt / self.tau) * (self.t0 / t - 1.0);
        scale_velocities(state, lambda2.max(0.0).sqrt());
    }
}

/// Nosé-Hoover thermostat (single chain variable).
///
/// The friction variable ξ integrates
/// `dξ/dt = (T/T0 − 1) / τ²` and velocities are damped by `exp(−ξ dt)`.
/// Samples the canonical ensemble for ergodic systems; `tau` is the
/// oscillation period (paper: 0.5 ps).
pub struct NoseHoover {
    pub t0: f64,
    pub tau: f64,
    xi: f64,
}

impl NoseHoover {
    pub fn new(t0: f64, tau: f64) -> Self {
        assert!(t0 > 0.0 && tau > 0.0);
        NoseHoover { t0, tau, xi: 0.0 }
    }

    /// Current friction coefficient (exposed for checkpointing).
    pub fn xi(&self) -> f64 {
        self.xi
    }

    pub fn set_xi(&mut self, xi: f64) {
        self.xi = xi;
    }
}

impl Thermostat for NoseHoover {
    fn name(&self) -> &'static str {
        "nose-hoover"
    }

    fn target_temperature(&self) -> f64 {
        self.t0
    }

    fn apply(&mut self, state: &mut State, dt: f64, dof: usize) {
        let t = state.temperature(dof);
        self.xi += dt * (t / self.t0 - 1.0) / (self.tau * self.tau);
        scale_velocities(state, (-self.xi * dt).exp());
    }
}

/// Stochastic velocity rescaling (Bussi-Donadio-Parrinello).
///
/// Canonical-ensemble kinetic-energy control. For the χ²(dof−1) deviate we
/// use the Gaussian approximation `χ²_n ≈ n + √(2n)·N(0,1)`, accurate for
/// the dof ≥ 30 systems this engine targets.
pub struct VRescale {
    pub t0: f64,
    pub tau: f64,
    rng: SimRng,
}

impl VRescale {
    pub fn new(t0: f64, tau: f64, rng: SimRng) -> Self {
        assert!(t0 > 0.0 && tau > 0.0);
        VRescale { t0, tau, rng }
    }
}

impl Thermostat for VRescale {
    fn name(&self) -> &'static str {
        "v-rescale"
    }

    fn target_temperature(&self) -> f64 {
        self.t0
    }

    fn apply(&mut self, state: &mut State, dt: f64, dof: usize) {
        let k = state.kinetic_energy();
        if k <= 0.0 || dof == 0 {
            return;
        }
        let k0 = 0.5 * dof as f64 * KB * self.t0;
        let c = (-dt / self.tau).exp();
        let r1 = sample_normal(&mut self.rng);
        let n_rest = (dof - 1) as f64;
        // χ²(dof−1) via Gaussian approximation.
        let chi2 = (n_rest + (2.0 * n_rest).sqrt() * sample_normal(&mut self.rng)).max(0.0);
        let factor = c
            + (k0 / (dof as f64 * k)) * (1.0 - c) * (r1 * r1 + chi2)
            + 2.0 * r1 * (c * (1.0 - c) * k0 / (dof as f64 * k)).sqrt();
        scale_velocities(state, factor.max(0.0).sqrt());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbc::SimBox;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle, Topology};
    use crate::vec3::Vec3;

    fn hot_state(n: usize, t_init: f64) -> (State, usize) {
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        let dof = top.dof(3);
        let mut s = State::new(vec![Vec3::ZERO; n], &top, SimBox::Open);
        let mut rng = rng_from_seed(17);
        s.init_velocities(t_init, dof, &mut rng);
        (s, dof)
    }

    #[test]
    fn berendsen_relaxes_toward_target() {
        let (mut s, dof) = hot_state(100, 2.0);
        let mut th = Berendsen::new(1.0, 0.5);
        for _ in 0..200 {
            th.apply(&mut s, 0.01, dof);
        }
        let t = s.temperature(dof);
        assert!((t - 1.0).abs() < 0.05, "T after Berendsen coupling: {t}");
    }

    #[test]
    fn nose_hoover_oscillates_around_target() {
        let (mut s, dof) = hot_state(100, 1.5);
        let mut th = NoseHoover::new(1.0, 0.5);
        let mut t_sum = 0.0;
        let n_steps = 5000;
        for _ in 0..n_steps {
            th.apply(&mut s, 0.01, dof);
            t_sum += s.temperature(dof);
        }
        let t_avg = t_sum / n_steps as f64;
        assert!(
            (t_avg - 1.0).abs() < 0.1,
            "NH time-averaged temperature: {t_avg}"
        );
    }

    #[test]
    fn vrescale_keeps_mean_temperature() {
        let (mut s, dof) = hot_state(200, 1.0);
        let mut th = VRescale::new(1.0, 0.2, rng_from_seed(4));
        let mut t_sum = 0.0;
        let n_steps = 2000;
        for _ in 0..n_steps {
            th.apply(&mut s, 0.01, dof);
            t_sum += s.temperature(dof);
        }
        let t_avg = t_sum / n_steps as f64;
        assert!((t_avg - 1.0).abs() < 0.05, "v-rescale mean T: {t_avg}");
    }

    #[test]
    fn thermostats_report_targets() {
        assert_eq!(Berendsen::new(1.5, 1.0).target_temperature(), 1.5);
        assert_eq!(NoseHoover::new(2.0, 1.0).target_temperature(), 2.0);
        assert_eq!(
            VRescale::new(0.5, 1.0, rng_from_seed(0)).target_temperature(),
            0.5
        );
    }

    #[test]
    fn nose_hoover_xi_checkpoint_roundtrip() {
        let mut th = NoseHoover::new(1.0, 0.5);
        th.set_xi(0.37);
        assert_eq!(th.xi(), 0.37);
    }

    #[test]
    fn cold_state_is_not_nan() {
        // Applying thermostats to a zero-velocity state must not produce NaN.
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        let mut s = State::new(vec![Vec3::ZERO], &top, SimBox::Open);
        Berendsen::new(1.0, 0.5).apply(&mut s, 0.01, 3);
        NoseHoover::new(1.0, 0.5).apply(&mut s, 0.01, 3);
        VRescale::new(1.0, 0.5, rng_from_seed(1)).apply(&mut s, 0.01, 3);
        assert!(s.is_finite());
    }
}
