//! Dynamic simulation state: positions, velocities, forces, clock.

use crate::jsonv;
use crate::pbc::SimBox;
use crate::rng::{sample_normal, SimRng};
use crate::topology::Topology;
use crate::units::{kinetic_temperature, KB};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Everything that changes while a simulation runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct State {
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
    pub forces: Vec<Vec3>,
    pub masses: Vec<f64>,
    pub sim_box: SimBox,
    /// Integration step counter.
    pub step: u64,
    /// Simulation time in intrinsic units.
    pub time: f64,
}

impl State {
    /// New state at the given positions with zero velocities and forces.
    pub fn new(positions: Vec<Vec3>, top: &Topology, sim_box: SimBox) -> Self {
        assert_eq!(
            positions.len(),
            top.n_particles(),
            "positions/topology length mismatch: {} vs {}",
            positions.len(),
            top.n_particles()
        );
        let n = positions.len();
        State {
            positions,
            velocities: vec![Vec3::ZERO; n],
            forces: vec![Vec3::ZERO; n],
            masses: top.masses(),
            sim_box,
            step: 0,
            time: 0.0,
        }
    }

    pub fn n_particles(&self) -> usize {
        self.positions.len()
    }

    /// Kinetic energy `Σ ½ m v²`.
    pub fn kinetic_energy(&self) -> f64 {
        self.velocities
            .iter()
            .zip(&self.masses)
            .map(|(v, &m)| 0.5 * m * v.norm2())
            .sum()
    }

    /// Instantaneous temperature given degrees of freedom.
    pub fn temperature(&self, dof: usize) -> f64 {
        kinetic_temperature(self.kinetic_energy(), dof)
    }

    /// Centre of mass position.
    pub fn center_of_mass(&self) -> Vec3 {
        let m_tot: f64 = self.masses.iter().sum();
        let weighted: Vec3 = self
            .positions
            .iter()
            .zip(&self.masses)
            .map(|(&p, &m)| p * m)
            .sum();
        weighted / m_tot
    }

    /// Total linear momentum.
    pub fn momentum(&self) -> Vec3 {
        self.velocities
            .iter()
            .zip(&self.masses)
            .map(|(&v, &m)| v * m)
            .sum()
    }

    /// Remove centre-of-mass motion (so the thermostat doesn't heat a
    /// "flying ice cube").
    pub fn remove_com_motion(&mut self) {
        let p = self.momentum();
        let m_tot: f64 = self.masses.iter().sum();
        let v_com = p / m_tot;
        for v in self.velocities.iter_mut() {
            *v -= v_com;
        }
    }

    /// Draw velocities from the Maxwell-Boltzmann distribution at
    /// temperature `t`, then remove COM motion and rescale to hit `t`
    /// exactly for the given degrees of freedom.
    pub fn init_velocities(&mut self, t: f64, dof: usize, rng: &mut SimRng) {
        assert!(t >= 0.0, "temperature must be non-negative, got {t}");
        for (v, &m) in self.velocities.iter_mut().zip(&self.masses) {
            let sigma = (KB * t / m).sqrt();
            *v = Vec3::new(
                sigma * sample_normal(rng),
                sigma * sample_normal(rng),
                sigma * sample_normal(rng),
            );
        }
        self.remove_com_motion();
        // Rescale so the instantaneous temperature is exactly t.
        let cur = self.temperature(dof);
        if cur > 0.0 && t > 0.0 {
            let lambda = (t / cur).sqrt();
            for v in self.velocities.iter_mut() {
                *v *= lambda;
            }
        }
    }

    /// Zero the force buffer (called by the force evaluator each step).
    pub fn clear_forces(&mut self) {
        for f in self.forces.iter_mut() {
            *f = Vec3::ZERO;
        }
    }

    /// Largest force component magnitude — a cheap blow-up detector.
    pub fn max_force(&self) -> f64 {
        self.forces.iter().map(|f| f.max_abs()).fold(0.0, f64::max)
    }

    /// True if positions and velocities are all finite.
    pub fn is_finite(&self) -> bool {
        self.positions.iter().all(|p| p.is_finite())
            && self.velocities.iter().all(|v| v.is_finite())
    }

    /// Wire encoding for checkpoints (coordinates as `[x,y,z]` triples).
    pub fn to_value(&self) -> Value {
        json!({
            "positions": jsonv::frame_to_value(&self.positions),
            "velocities": jsonv::frame_to_value(&self.velocities),
            "forces": jsonv::frame_to_value(&self.forces),
            "masses": jsonv::f64s_to_value(&self.masses),
            "sim_box": self.sim_box.to_value(),
            "step": self.step,
            "time": self.time,
        })
    }

    pub fn from_value(v: &Value) -> Result<State, String> {
        let positions = jsonv::frame_from_value(jsonv::field(v, "positions")?)?;
        let velocities = jsonv::frame_from_value(jsonv::field(v, "velocities")?)?;
        let forces = jsonv::frame_from_value(jsonv::field(v, "forces")?)?;
        let masses = jsonv::f64s_from_value(jsonv::field(v, "masses")?)?;
        let n = positions.len();
        if velocities.len() != n || forces.len() != n || masses.len() != n {
            return Err("state arrays disagree on particle count".to_string());
        }
        Ok(State {
            positions,
            velocities,
            forces,
            masses,
            sim_box: SimBox::from_value(jsonv::field(v, "sim_box")?)?,
            step: jsonv::int(v, "step")?,
            time: jsonv::num(v, "time")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::topology::{LjParams, Particle};
    use crate::vec3::v3;

    fn top(n: usize) -> Topology {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_particle(Particle::neutral(2.0, LjParams::new(1.0, 1.0)));
        }
        t
    }

    #[test]
    fn construction_checks_length() {
        let t = top(3);
        let s = State::new(vec![Vec3::ZERO; 3], &t, SimBox::Open);
        assert_eq!(s.n_particles(), 3);
        assert_eq!(s.masses, vec![2.0; 3]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_wrong_length() {
        let t = top(3);
        let _ = State::new(vec![Vec3::ZERO; 2], &t, SimBox::Open);
    }

    #[test]
    fn kinetic_energy_and_temperature() {
        let t = top(2);
        let mut s = State::new(vec![Vec3::ZERO; 2], &t, SimBox::Open);
        s.velocities[0] = v3(1.0, 0.0, 0.0);
        // Ekin = 0.5 * 2.0 * 1 = 1.0
        assert!((s.kinetic_energy() - 1.0).abs() < 1e-12);
        // T = 2*Ekin / dof = 2/6
        assert!((s.temperature(6) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn com_motion_removal() {
        let t = top(2);
        let mut s = State::new(vec![Vec3::ZERO; 2], &t, SimBox::Open);
        s.velocities = vec![v3(1.0, 2.0, 3.0), v3(1.0, 2.0, 3.0)];
        s.remove_com_motion();
        assert!(s.momentum().norm() < 1e-12);
        assert!(s.velocities[0].norm() < 1e-12);
    }

    #[test]
    fn maxwell_boltzmann_hits_target_temperature() {
        let n = 500;
        let t = top(n);
        let mut s = State::new(vec![Vec3::ZERO; n], &t, SimBox::Open);
        let dof = t.dof(3);
        let mut rng = rng_from_seed(99);
        s.init_velocities(1.5, dof, &mut rng);
        assert!((s.temperature(dof) - 1.5).abs() < 1e-9);
        assert!(s.momentum().norm() < 1e-9);
    }

    #[test]
    fn zero_temperature_velocities() {
        let n = 4;
        let t = top(n);
        let mut s = State::new(vec![Vec3::ZERO; n], &t, SimBox::Open);
        let mut rng = rng_from_seed(1);
        s.init_velocities(0.0, t.dof(3), &mut rng);
        assert_eq!(s.kinetic_energy(), 0.0);
    }

    #[test]
    fn com_position() {
        let mut t = Topology::new();
        t.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        t.add_particle(Particle::neutral(3.0, LjParams::new(1.0, 1.0)));
        let s = State::new(vec![v3(0.0, 0.0, 0.0), v3(4.0, 0.0, 0.0)], &t, SimBox::Open);
        assert!((s.center_of_mass().x - 3.0).abs() < 1e-12);
    }

    #[test]
    fn finite_checks() {
        let t = top(1);
        let mut s = State::new(vec![Vec3::ZERO], &t, SimBox::Open);
        assert!(s.is_finite());
        s.positions[0].x = f64::NAN;
        assert!(!s.is_finite());
    }
}
