//! Minimal 3-vector used throughout the MD engine.
//!
//! The type is deliberately a plain `#[repr(C)]` struct of three `f64`s so
//! slices of positions/velocities/forces are contiguous and the inner force
//! loops auto-vectorize (the "SIMD kernel" tier of the paper's Fig. 6).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

/// Shorthand constructor.
#[inline]
pub const fn v3(x: f64, y: f64, z: f64) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    pub const ZERO: Vec3 = v3(0.0, 0.0, 0.0);
    pub const ONE: Vec3 = v3(1.0, 1.0, 1.0);

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        v3(x, y, z)
    }

    /// A vector with all three components equal to `s`.
    #[inline]
    pub const fn splat(s: f64) -> Self {
        v3(s, s, s)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        v3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm. Preferred in cutoff tests: no `sqrt`.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Unit vector in the direction of `self`.
    ///
    /// Returns `Vec3::ZERO` for the zero vector rather than NaN, which is the
    /// safe behaviour for force routines dividing by a pair distance.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n2 = self.norm2();
        if n2 == 0.0 {
            Vec3::ZERO
        } else {
            self / n2.sqrt()
        }
    }

    /// Component-wise product.
    #[inline]
    pub fn hadamard(self, o: Vec3) -> Vec3 {
        v3(self.x * o.x, self.y * o.y, self.z * o.z)
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn dist2(self, o: Vec3) -> f64 {
        (self - o).norm2()
    }

    /// True if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Largest absolute component.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Map each component through `f`.
    #[inline]
    pub fn map(self, f: impl Fn(f64) -> f64) -> Vec3 {
        v3(f(self.x), f(self.y), f(self.z))
    }

    pub fn as_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    pub fn from_array(a: [f64; 3]) -> Vec3 {
        v3(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        v3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        v3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        v3(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        v3(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        v3(self.x / s, self.y / s, self.z / s)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
        self.z *= s;
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
        self.z /= s;
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = v3(1.0, 2.0, 3.0);
        let b = v3(4.0, 5.0, 6.0);
        assert_eq!(a + b, v3(5.0, 7.0, 9.0));
        assert_eq!(b - a, v3(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, v3(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(b / 2.0, v3(2.0, 2.5, 3.0));
        assert_eq!(-a, v3(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = v3(1.0, 0.0, 0.0);
        let y = v3(0.0, 1.0, 0.0);
        let z = v3(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // anti-commutativity
        assert_eq!(x.cross(y), -(y.cross(x)));
    }

    #[test]
    fn norms() {
        let a = v3(3.0, 4.0, 0.0);
        assert_eq!(a.norm2(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let u = a.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn assign_ops() {
        let mut a = v3(1.0, 1.0, 1.0);
        a += v3(1.0, 2.0, 3.0);
        assert_eq!(a, v3(2.0, 3.0, 4.0));
        a -= v3(1.0, 1.0, 1.0);
        assert_eq!(a, v3(1.0, 2.0, 3.0));
        a *= 2.0;
        assert_eq!(a, v3(2.0, 4.0, 6.0));
        a /= 2.0;
        assert_eq!(a, v3(1.0, 2.0, 3.0));
    }

    #[test]
    fn indexing_and_sum() {
        let a = v3(7.0, 8.0, 9.0);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 8.0);
        assert_eq!(a[2], 9.0);
        let s: Vec3 = [a, a].into_iter().sum();
        assert_eq!(s, a * 2.0);
    }

    #[test]
    fn helpers() {
        let a = v3(-3.0, 2.0, 1.0);
        assert_eq!(a.max_abs(), 3.0);
        assert!(a.is_finite());
        assert!(!v3(f64::NAN, 0.0, 0.0).is_finite());
        assert_eq!(a.map(|c| c * c), v3(9.0, 4.0, 1.0));
        assert_eq!(a.hadamard(v3(2.0, 0.5, 1.0)), v3(-6.0, 1.0, 1.0));
        assert_eq!(Vec3::from_array(a.as_array()), a);
        assert_eq!(Vec3::splat(2.0), v3(2.0, 2.0, 2.0));
    }
}
