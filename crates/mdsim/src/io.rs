//! Structure and trajectory file formats: XYZ and PDB (Cα traces).
//!
//! The real Copernicus moves Gromacs `.xtc`/`.gro` files between workers
//! and servers; this module provides the equivalent interchange formats
//! for this engine so structures and trajectories can be inspected with
//! standard molecular viewers and re-imported.

use crate::trajectory::Trajectory;
use crate::vec3::{v3, Vec3};
use std::fmt::Write as _;

/// Errors from parsing structure files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// XYZ
// ---------------------------------------------------------------------------

/// Write one frame in XYZ format (element symbol `C` for every bead).
pub fn write_xyz(positions: &[Vec3], comment: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{}", positions.len()).unwrap();
    writeln!(out, "{}", comment.replace('\n', " ")).unwrap();
    for p in positions {
        writeln!(out, "C {:.6} {:.6} {:.6}", p.x, p.y, p.z).unwrap();
    }
    out
}

/// Write a whole trajectory as concatenated XYZ frames (the multi-frame
/// convention read by VMD/OVITO).
pub fn write_xyz_trajectory(traj: &Trajectory) -> String {
    let mut out = String::new();
    for (t, frame) in traj.iter() {
        out.push_str(&write_xyz(frame, &format!("t= {t:.4}")));
    }
    out
}

/// Parse a single XYZ frame (returns the positions and the comment line).
pub fn read_xyz(text: &str) -> Result<(Vec<Vec3>, String), ParseError> {
    let mut frames = read_xyz_trajectory(text)?;
    if frames.is_empty() {
        return Err(err(1, "empty XYZ input"));
    }
    let (pos, comment) = frames.swap_remove(0);
    Ok((pos, comment))
}

/// Parse a multi-frame XYZ file.
pub fn read_xyz_trajectory(text: &str) -> Result<Vec<(Vec<Vec3>, String)>, ParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut frames = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].trim().is_empty() {
            i += 1;
            continue;
        }
        let n: usize = lines[i]
            .trim()
            .parse()
            .map_err(|_| err(i + 1, format!("expected atom count, got '{}'", lines[i])))?;
        let comment = lines
            .get(i + 1)
            .ok_or_else(|| err(i + 2, "missing comment line"))?
            .to_string();
        let mut positions = Vec::with_capacity(n);
        for k in 0..n {
            let line_no = i + 2 + k;
            let line = lines
                .get(line_no)
                .ok_or_else(|| err(line_no + 1, "truncated frame"))?;
            let mut parts = line.split_whitespace();
            let _element = parts
                .next()
                .ok_or_else(|| err(line_no + 1, "empty atom line"))?;
            let coords: Vec<f64> = parts
                .take(3)
                .map(|s| s.parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|e| err(line_no + 1, format!("bad coordinate: {e}")))?;
            if coords.len() != 3 {
                return Err(err(line_no + 1, "expected 3 coordinates"));
            }
            positions.push(v3(coords[0], coords[1], coords[2]));
        }
        frames.push((positions, comment));
        i += 2 + n;
    }
    Ok(frames)
}

// ---------------------------------------------------------------------------
// PDB (Cα traces)
// ---------------------------------------------------------------------------

/// Write a Cα-trace PDB model (one `CA` atom per bead, `ALA` residues,
/// chain `id`).
pub fn write_pdb(positions: &[Vec3], chain: char) -> String {
    let mut out = String::new();
    for (i, p) in positions.iter().enumerate() {
        writeln!(
            out,
            "ATOM  {:>5}  CA  ALA {}{:>4}    {:>8.3}{:>8.3}{:>8.3}  1.00  0.00           C",
            i + 1,
            chain,
            i + 1,
            p.x,
            p.y,
            p.z
        )
        .unwrap();
    }
    out.push_str("TER\n");
    out
}

/// Parse the Cα atoms of a PDB chain (any chain if `chain` is `None`).
pub fn read_pdb_ca(text: &str, chain: Option<char>) -> Result<Vec<Vec3>, ParseError> {
    let mut out = Vec::new();
    for (k, line) in text.lines().enumerate() {
        if !line.starts_with("ATOM") && !line.starts_with("HETATM") {
            continue;
        }
        if line.len() < 54 {
            return Err(err(k + 1, "ATOM record too short"));
        }
        let name = line[12..16].trim();
        if name != "CA" {
            continue;
        }
        let line_chain = line.as_bytes()[21] as char;
        if let Some(c) = chain {
            if line_chain != c {
                continue;
            }
        }
        let parse = |range: std::ops::Range<usize>| -> Result<f64, ParseError> {
            line[range]
                .trim()
                .parse::<f64>()
                .map_err(|e| err(k + 1, format!("bad coordinate: {e}")))
        };
        out.push(v3(parse(30..38)?, parse(38..46)?, parse(46..54)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<Vec3> {
        vec![
            v3(0.0, 0.0, 0.0),
            v3(3.8, 0.25, -1.5),
            v3(7.123456, -2.0, 4.5),
        ]
    }

    #[test]
    fn xyz_roundtrip() {
        let p = points();
        let text = write_xyz(&p, "test frame");
        let (back, comment) = read_xyz(&text).unwrap();
        assert_eq!(comment, "test frame");
        assert_eq!(back.len(), 3);
        for (a, b) in p.iter().zip(&back) {
            assert!((*a - *b).norm() < 1e-5);
        }
    }

    #[test]
    fn xyz_trajectory_roundtrip() {
        let mut traj = Trajectory::new();
        traj.push(0.0, points());
        traj.push(
            1.0,
            points().iter().map(|p| *p + v3(1.0, 0.0, 0.0)).collect(),
        );
        let text = write_xyz_trajectory(&traj);
        let frames = read_xyz_trajectory(&text).unwrap();
        assert_eq!(frames.len(), 2);
        assert!((frames[1].0[0].x - 1.0).abs() < 1e-5);
        assert!(frames[0].1.starts_with("t= "));
    }

    #[test]
    fn xyz_rejects_garbage() {
        assert!(read_xyz("not a number\ncomment\n").is_err());
        assert!(
            read_xyz("2\ncomment\nC 1 2 3\n").is_err(),
            "truncated frame"
        );
        assert!(
            read_xyz("1\ncomment\nC 1 2\n").is_err(),
            "missing coordinate"
        );
        assert!(read_xyz("").is_err());
    }

    #[test]
    fn pdb_roundtrip() {
        let p = points();
        let text = write_pdb(&p, 'A');
        let back = read_pdb_ca(&text, Some('A')).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in p.iter().zip(&back) {
            assert!((*a - *b).norm() < 2e-3, "{a:?} vs {b:?}");
        }
        // Other chains are filtered out.
        assert!(read_pdb_ca(&text, Some('B')).unwrap().is_empty());
        // Chain-agnostic read finds them.
        assert_eq!(read_pdb_ca(&text, None).unwrap().len(), 3);
    }

    #[test]
    fn pdb_two_chain_file() {
        let a = write_pdb(&points(), 'A');
        let b = write_pdb(&points(), 'B');
        let combined = format!("{a}{b}");
        assert_eq!(read_pdb_ca(&combined, None).unwrap().len(), 6);
        assert_eq!(read_pdb_ca(&combined, Some('B')).unwrap().len(), 3);
    }

    #[test]
    fn pdb_ignores_non_ca_and_headers() {
        let text = "HEADER    test\nATOM      1  N   ALA A   1       0.000   0.000   0.000  1.00  0.00           N\nATOM      2  CA  ALA A   1       1.000   2.000   3.000  1.00  0.00           C\nTER\n";
        let ca = read_pdb_ca(text, None).unwrap();
        assert_eq!(ca.len(), 1);
        assert_eq!(ca[0], v3(1.0, 2.0, 3.0));
    }

    #[test]
    fn villin_native_exports_cleanly() {
        use crate::model::villin::VillinModel;
        let model = VillinModel::hp35();
        let pdb = write_pdb(&model.native, 'A');
        let back = read_pdb_ca(&pdb, Some('A')).unwrap();
        assert_eq!(back.len(), 35);
        let xyz = write_xyz(&model.native, "villin native");
        let (back_xyz, _) = read_xyz(&xyz).unwrap();
        assert_eq!(back_xyz.len(), 35);
    }
}
