//! Structural and dynamic observables computed on configurations and
//! trajectories: radius of gyration, end-to-end distance, mean-squared
//! displacement, and the virial pressure of pair systems.

use crate::pbc::SimBox;
use crate::trajectory::Trajectory;
use crate::vec3::Vec3;

/// Radius of gyration: `Rg² = ⟨|r_i − r_com|²⟩` (mass-unweighted).
pub fn radius_of_gyration(positions: &[Vec3]) -> f64 {
    assert!(!positions.is_empty());
    let com: Vec3 = positions.iter().copied().sum::<Vec3>() / positions.len() as f64;
    let rg2: f64 = positions.iter().map(|p| p.dist2(com)).sum::<f64>() / positions.len() as f64;
    rg2.sqrt()
}

/// End-to-end distance of a chain (first to last particle).
pub fn end_to_end(positions: &[Vec3]) -> f64 {
    assert!(positions.len() >= 2);
    positions[0].dist(*positions.last().expect("non-empty"))
}

/// Mean-squared displacement of each frame relative to the first frame
/// of the trajectory (no periodic unwrapping: intended for open-box or
/// pre-unwrapped data).
pub fn mean_squared_displacement(traj: &Trajectory) -> Vec<f64> {
    if traj.is_empty() {
        return Vec::new();
    }
    let reference = traj.frame(0);
    traj.frames()
        .iter()
        .map(|frame| {
            frame
                .iter()
                .zip(reference)
                .map(|(p, q)| p.dist2(*q))
                .sum::<f64>()
                / frame.len() as f64
        })
        .collect()
}

/// Fit a diffusion coefficient from an MSD series via `MSD = 6 D t`
/// (least squares through the origin over the given time values).
pub fn diffusion_coefficient(times: &[f64], msd: &[f64]) -> f64 {
    assert_eq!(times.len(), msd.len());
    let num: f64 = times.iter().zip(msd).map(|(t, m)| t * m).sum();
    let den: f64 = times.iter().map(|t| t * t).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den / 6.0
    }
}

/// Instantaneous virial pressure of a pairwise-interacting system:
/// `P = (N kB T + W/3) / V` with the virial `W = Σ_pairs r·F` supplied
/// by the caller (force terms can accumulate it). Returns `None` for an
/// open (infinite-volume) box.
pub fn virial_pressure(
    n_particles: usize,
    kinetic_temperature: f64,
    virial: f64,
    sim_box: &SimBox,
) -> Option<f64> {
    let v = sim_box.volume()?;
    Some((n_particles as f64 * kinetic_temperature + virial / 3.0) / v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    #[test]
    fn rg_of_symmetric_pair() {
        // Two points at ±1: com at origin, Rg = 1.
        let p = vec![v3(-1.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        assert!((radius_of_gyration(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rg_shrinks_when_collapsed() {
        let extended: Vec<_> = (0..10).map(|i| v3(i as f64 * 3.8, 0.0, 0.0)).collect();
        let collapsed: Vec<_> = (0..10)
            .map(|i| v3((i % 2) as f64, ((i / 2) % 2) as f64, (i / 4) as f64))
            .collect();
        assert!(radius_of_gyration(&extended) > 3.0 * radius_of_gyration(&collapsed));
    }

    #[test]
    fn end_to_end_distance() {
        let p = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0), v3(1.0, 2.0, 0.0)];
        assert!((end_to_end(&p) - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn msd_relative_to_first_frame() {
        let mut t = Trajectory::new();
        t.push(0.0, vec![v3(0.0, 0.0, 0.0)]);
        t.push(1.0, vec![v3(1.0, 0.0, 0.0)]);
        t.push(2.0, vec![v3(0.0, 2.0, 0.0)]);
        let msd = mean_squared_displacement(&t);
        assert_eq!(msd, vec![0.0, 1.0, 4.0]);
    }

    #[test]
    fn diffusion_fit_recovers_slope() {
        // MSD = 6 D t with D = 0.5.
        let times: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let msd: Vec<f64> = times.iter().map(|t| 3.0 * t).collect();
        assert!((diffusion_coefficient(&times, &msd) - 0.5).abs() < 1e-12);
        assert_eq!(diffusion_coefficient(&[], &[]), 0.0);
    }

    #[test]
    fn ideal_gas_pressure() {
        // No interactions (virial 0): P V = N kB T.
        let bx = SimBox::cubic(10.0);
        let p = virial_pressure(1000, 1.5, 0.0, &bx).unwrap();
        assert!((p - 1000.0 * 1.5 / 1000.0).abs() < 1e-12);
        assert!(virial_pressure(10, 1.0, 0.0, &SimBox::Open).is_none());
    }
}
