//! Hand-rolled JSON codec helpers for the command payload path.
//!
//! Command specs, outputs and controller snapshots cross process
//! boundaries as `serde_json::Value` documents. The codecs here build
//! and parse those documents explicitly — using only the `Value`
//! accessor surface — so the payload path has one canonical wire shape
//! that is independent of derive-generated field layouts. Coordinates
//! are packed as flat `[x, y, z]` triples (about a third the size of
//! the derive encoding of [`Vec3`]), which matters because trajectory
//! payloads dominate server↔worker bandwidth (Fig. 9 of the paper).

use crate::vec3::Vec3;
use serde_json::Value;

/// Look up a required field, with the offending key in the error.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

/// Required f64 field.
pub fn num(v: &Value, key: &str) -> Result<f64, String> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

/// Required unsigned integer field.
pub fn int(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an integer"))
}

/// Required boolean field.
pub fn boolean(v: &Value, key: &str) -> Result<bool, String> {
    field(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field `{key}` is not a bool"))
}

/// Optional f64 field (absent or null → `None`).
pub fn opt_num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(|f| f.as_f64())
}

/// Optional unsigned integer field (absent or null → `None`).
pub fn opt_int(v: &Value, key: &str) -> Option<u64> {
    v.get(key).and_then(|f| f.as_u64())
}

/// One coordinate as `[x, y, z]`.
pub fn vec3_to_value(p: Vec3) -> Value {
    Value::from(vec![p.x, p.y, p.z])
}

pub fn vec3_from_value(v: &Value) -> Result<Vec3, String> {
    let a = v.as_array().ok_or("coordinate is not an array")?;
    if a.len() != 3 {
        return Err(format!("coordinate has {} components, want 3", a.len()));
    }
    let c = |i: usize| -> Result<f64, String> {
        a[i].as_f64()
            .ok_or_else(|| "coordinate component is not a number".to_string())
    };
    Ok(Vec3::new(c(0)?, c(1)?, c(2)?))
}

/// One frame as `[[x,y,z], ...]`.
pub fn frame_to_value(frame: &[Vec3]) -> Value {
    Value::from(frame.iter().map(|&p| vec3_to_value(p)).collect::<Vec<_>>())
}

pub fn frame_from_value(v: &Value) -> Result<Vec<Vec3>, String> {
    v.as_array()
        .ok_or("frame is not an array")?
        .iter()
        .map(vec3_from_value)
        .collect()
}

/// A frame list as `[frame, ...]`.
pub fn frames_to_value(frames: &[Vec<Vec3>]) -> Value {
    Value::from(frames.iter().map(|f| frame_to_value(f)).collect::<Vec<_>>())
}

pub fn frames_from_value(v: &Value) -> Result<Vec<Vec<Vec3>>, String> {
    v.as_array()
        .ok_or("frames is not an array")?
        .iter()
        .map(frame_from_value)
        .collect()
}

pub fn f64s_to_value(xs: &[f64]) -> Value {
    Value::from(xs.to_vec())
}

pub fn f64s_from_value(v: &Value) -> Result<Vec<f64>, String> {
    v.as_array()
        .ok_or("expected an array of numbers")?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| "non-numeric element".to_string()))
        .collect()
}

pub fn usizes_to_value(xs: &[usize]) -> Value {
    Value::from(xs.iter().map(|&x| x as u64).collect::<Vec<_>>())
}

pub fn usizes_from_value(v: &Value) -> Result<Vec<usize>, String> {
    v.as_array()
        .ok_or("expected an array of integers")?
        .iter()
        .map(|x| {
            x.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| "non-integer element".to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;
    use serde_json::json;

    #[test]
    fn vec3_roundtrip() {
        let p = v3(1.5, -2.0, 0.25);
        let v = vec3_to_value(p);
        assert_eq!(vec3_from_value(&v).unwrap(), p);
    }

    #[test]
    fn frames_roundtrip() {
        let frames = vec![
            vec![v3(0.0, 0.0, 0.0), v3(1.0, 2.0, 3.0)],
            vec![v3(4.0, 5.0, 6.0), v3(7.0, 8.0, 9.0)],
        ];
        let v = frames_to_value(&frames);
        assert_eq!(frames_from_value(&v).unwrap(), frames);
    }

    #[test]
    fn field_errors_name_the_key() {
        let v = json!({"a": 1});
        assert!(field(&v, "b").unwrap_err().contains("`b`"));
        assert!(num(&v, "a").is_ok());
        assert!(int(&v, "a").is_ok());
    }

    #[test]
    fn optional_fields() {
        let v = json!({"x": 2.5, "n": Value::Null});
        assert_eq!(opt_num(&v, "x"), Some(2.5));
        assert_eq!(opt_num(&v, "n"), None);
        assert_eq!(opt_num(&v, "absent"), None);
        assert_eq!(opt_int(&v, "absent"), None);
    }

    #[test]
    fn scalar_lists_roundtrip() {
        let xs = vec![0.5, 1.5, 2.5];
        assert_eq!(f64s_from_value(&f64s_to_value(&xs)).unwrap(), xs);
        let ns = vec![3usize, 1, 4];
        assert_eq!(usizes_from_value(&usizes_to_value(&ns)).unwrap(), ns);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(vec3_from_value(&json!([1.0, 2.0])).is_err());
        assert!(frame_from_value(&json!("nope")).is_err());
        assert!(f64s_from_value(&json!({"a": 1})).is_err());
    }
}
