//! Trajectory storage: the frames a simulation command returns to the
//! Copernicus controller.
//!
//! The paper saves coordinates every 50 ps, giving 1000 conformations per
//! 50 ns trajectory; [`Trajectory`] is the in-memory (and serialized)
//! equivalent of that `.xtc` output.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A sequence of coordinate frames with their simulation times.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Trajectory {
    frames: Vec<Vec<Vec3>>,
    times: Vec<f64>,
}

impl Trajectory {
    pub fn new() -> Self {
        Trajectory::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Trajectory {
            frames: Vec::with_capacity(n),
            times: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, time: f64, frame: Vec<Vec3>) {
        if let Some(last) = self.frames.last() {
            assert_eq!(
                last.len(),
                frame.len(),
                "all frames must have the same particle count"
            );
        }
        if let Some(&last_t) = self.times.last() {
            assert!(
                time >= last_t,
                "frame times must be non-decreasing ({time} after {last_t})"
            );
        }
        self.frames.push(frame);
        self.times.push(time);
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn n_particles(&self) -> usize {
        self.frames.first().map_or(0, |f| f.len())
    }

    pub fn frame(&self, i: usize) -> &[Vec3] {
        &self.frames[i]
    }

    pub fn time(&self, i: usize) -> f64 {
        self.times[i]
    }

    pub fn times(&self) -> &[f64] {
        &self.times
    }

    pub fn frames(&self) -> &[Vec<Vec3>] {
        &self.frames
    }

    pub fn last_frame(&self) -> Option<&[Vec3]> {
        self.frames.last().map(|f| f.as_slice())
    }

    pub fn iter(&self) -> impl Iterator<Item = (f64, &[Vec3])> {
        self.times
            .iter()
            .copied()
            .zip(self.frames.iter().map(|f| f.as_slice()))
    }

    /// Append all frames of `other` (times must continue monotonically).
    pub fn extend(&mut self, other: &Trajectory) {
        for (t, f) in other.iter() {
            self.push(t, f.to_vec());
        }
    }

    /// Keep every `stride`-th frame (stride ≥ 1), starting with frame 0.
    pub fn strided(&self, stride: usize) -> Trajectory {
        assert!(stride >= 1, "stride must be >= 1");
        let mut out = Trajectory::new();
        for i in (0..self.len()).step_by(stride) {
            out.push(self.times[i], self.frames[i].clone());
        }
        out
    }

    /// Approximate in-memory size in bytes (used for the bandwidth
    /// accounting of Fig. 9).
    pub fn data_size_bytes(&self) -> u64 {
        (self.len() * self.n_particles() * std::mem::size_of::<Vec3>()
            + self.len() * std::mem::size_of::<f64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    fn frame(x: f64) -> Vec<Vec3> {
        vec![v3(x, 0.0, 0.0), v3(0.0, x, 0.0)]
    }

    #[test]
    fn push_and_query() {
        let mut t = Trajectory::new();
        assert!(t.is_empty());
        t.push(0.0, frame(1.0));
        t.push(1.0, frame(2.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.n_particles(), 2);
        assert_eq!(t.time(1), 1.0);
        assert_eq!(t.frame(1)[0], v3(2.0, 0.0, 0.0));
        assert_eq!(t.last_frame().unwrap()[0], v3(2.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "same particle count")]
    fn rejects_mismatched_frames() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        t.push(1.0, vec![Vec3::ZERO]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut t = Trajectory::new();
        t.push(1.0, frame(1.0));
        t.push(0.5, frame(2.0));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trajectory::new();
        a.push(0.0, frame(1.0));
        let mut b = Trajectory::new();
        b.push(1.0, frame(2.0));
        b.push(2.0, frame(3.0));
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.times(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn strided_subsampling() {
        let mut t = Trajectory::new();
        for i in 0..10 {
            t.push(i as f64, frame(i as f64));
        }
        let s = t.strided(3);
        assert_eq!(s.len(), 4); // frames 0, 3, 6, 9
        assert_eq!(s.times(), &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        t.push(0.5, frame(1.5));
        let json = serde_json::to_string(&t).unwrap();
        let back: Trajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn data_size_accounting() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        // 1 frame * 2 particles * 24 bytes + 1 time * 8 bytes = 56.
        assert_eq!(t.data_size_bytes(), 56);
    }
}
