//! Trajectory storage: the frames a simulation command returns to the
//! Copernicus controller.
//!
//! The paper saves coordinates every 50 ps, giving 1000 conformations per
//! 50 ns trajectory; [`Trajectory`] is the in-memory (and serialized)
//! equivalent of that `.xtc` output.

use crate::jsonv;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// A sequence of coordinate frames with their simulation times.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct Trajectory {
    frames: Vec<Vec<Vec3>>,
    times: Vec<f64>,
}

impl Trajectory {
    pub fn new() -> Self {
        Trajectory::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Trajectory {
            frames: Vec::with_capacity(n),
            times: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, time: f64, frame: Vec<Vec3>) {
        if let Some(last) = self.frames.last() {
            assert_eq!(
                last.len(),
                frame.len(),
                "all frames must have the same particle count"
            );
        }
        if let Some(&last_t) = self.times.last() {
            assert!(
                time >= last_t,
                "frame times must be non-decreasing ({time} after {last_t})"
            );
        }
        self.frames.push(frame);
        self.times.push(time);
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn n_particles(&self) -> usize {
        self.frames.first().map_or(0, |f| f.len())
    }

    pub fn frame(&self, i: usize) -> &[Vec3] {
        &self.frames[i]
    }

    pub fn time(&self, i: usize) -> f64 {
        self.times[i]
    }

    pub fn times(&self) -> &[f64] {
        &self.times
    }

    pub fn frames(&self) -> &[Vec<Vec3>] {
        &self.frames
    }

    pub fn last_frame(&self) -> Option<&[Vec3]> {
        self.frames.last().map(|f| f.as_slice())
    }

    pub fn iter(&self) -> impl Iterator<Item = (f64, &[Vec3])> {
        self.times
            .iter()
            .copied()
            .zip(self.frames.iter().map(|f| f.as_slice()))
    }

    /// Append all frames of `other` (times must continue monotonically).
    pub fn extend(&mut self, other: &Trajectory) {
        for (t, f) in other.iter() {
            self.push(t, f.to_vec());
        }
    }

    /// Keep every `stride`-th frame (stride ≥ 1), starting with frame 0.
    pub fn strided(&self, stride: usize) -> Trajectory {
        assert!(stride >= 1, "stride must be >= 1");
        let mut out = Trajectory::new();
        for i in (0..self.len()).step_by(stride) {
            out.push(self.times[i], self.frames[i].clone());
        }
        out
    }

    /// Append `continuation` as the next segment of this trajectory:
    /// its frame 0 is the restart conformation (identical to our last
    /// frame) and is skipped, and its times — which restart near zero
    /// on the worker — are shifted to continue our clock.
    ///
    /// An empty receiver adopts the continuation whole, so the same
    /// call stitches both the first chunk of a lineage and every later
    /// one.
    pub fn append_continuation(&mut self, continuation: &Trajectory) {
        if self.is_empty() {
            self.extend(continuation);
            return;
        }
        if continuation.is_empty() {
            return;
        }
        let t_offset = self.time(self.len() - 1) - continuation.time(0);
        for (t, f) in continuation.iter().skip(1) {
            self.push(t + t_offset, f.to_vec());
        }
    }

    /// Wire encoding: `{"times": [...], "frames": [[[x,y,z],...],...]}`.
    pub fn to_value(&self) -> Value {
        json!({
            "times": jsonv::f64s_to_value(&self.times),
            "frames": jsonv::frames_to_value(&self.frames),
        })
    }

    pub fn from_value(v: &Value) -> Result<Trajectory, String> {
        let times = jsonv::f64s_from_value(jsonv::field(v, "times")?)?;
        let frames = jsonv::frames_from_value(jsonv::field(v, "frames")?)?;
        if times.len() != frames.len() {
            return Err(format!(
                "trajectory has {} times but {} frames",
                times.len(),
                frames.len()
            ));
        }
        let mut out = Trajectory::with_capacity(times.len());
        for (t, f) in times.into_iter().zip(frames) {
            out.push(t, f);
        }
        Ok(out)
    }

    /// Approximate in-memory size in bytes (used for the bandwidth
    /// accounting of Fig. 9).
    pub fn data_size_bytes(&self) -> u64 {
        (self.len() * self.n_particles() * std::mem::size_of::<Vec3>()
            + self.len() * std::mem::size_of::<f64>()) as u64
    }
}

/// Split a segment of `total_steps` into `chunks` command-sized pieces,
/// each a non-zero multiple of `record_interval` (so every chunk ends
/// exactly on a recorded frame and the next chunk can restart from it).
/// The remainder lands on the last chunk. Fewer chunks are returned
/// when `total_steps` cannot fill the requested count.
pub fn chunk_steps(total_steps: u64, chunks: usize, record_interval: u64) -> Vec<u64> {
    assert!(record_interval > 0, "record_interval must be positive");
    assert!(
        total_steps % record_interval == 0,
        "total_steps ({total_steps}) must be a multiple of record_interval ({record_interval})"
    );
    let n_records = total_steps / record_interval;
    let chunks = (chunks.max(1) as u64).min(n_records.max(1));
    let base = n_records / chunks;
    let extra = n_records % chunks;
    (0..chunks)
        .map(|i| {
            let records = base + if i < extra { 1 } else { 0 };
            records * record_interval
        })
        .filter(|&s| s > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::v3;

    fn frame(x: f64) -> Vec<Vec3> {
        vec![v3(x, 0.0, 0.0), v3(0.0, x, 0.0)]
    }

    #[test]
    fn push_and_query() {
        let mut t = Trajectory::new();
        assert!(t.is_empty());
        t.push(0.0, frame(1.0));
        t.push(1.0, frame(2.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.n_particles(), 2);
        assert_eq!(t.time(1), 1.0);
        assert_eq!(t.frame(1)[0], v3(2.0, 0.0, 0.0));
        assert_eq!(t.last_frame().unwrap()[0], v3(2.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "same particle count")]
    fn rejects_mismatched_frames() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        t.push(1.0, vec![Vec3::ZERO]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut t = Trajectory::new();
        t.push(1.0, frame(1.0));
        t.push(0.5, frame(2.0));
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Trajectory::new();
        a.push(0.0, frame(1.0));
        let mut b = Trajectory::new();
        b.push(1.0, frame(2.0));
        b.push(2.0, frame(3.0));
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.times(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn strided_subsampling() {
        let mut t = Trajectory::new();
        for i in 0..10 {
            t.push(i as f64, frame(i as f64));
        }
        let s = t.strided(3);
        assert_eq!(s.len(), 4); // frames 0, 3, 6, 9
        assert_eq!(s.times(), &[0.0, 3.0, 6.0, 9.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        t.push(0.5, frame(1.5));
        let json = serde_json::to_string(&t).unwrap();
        let back: Trajectory = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn value_roundtrip() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        t.push(0.5, frame(1.5));
        let back = Trajectory::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn value_rejects_length_mismatch() {
        let mut v = Trajectory::new().to_value();
        v["times"] = serde_json::json!([0.0]);
        assert!(Trajectory::from_value(&v).is_err());
    }

    #[test]
    fn continuation_skips_restart_frame_and_shifts_times() {
        let mut a = Trajectory::new();
        a.push(0.0, frame(1.0));
        a.push(2.0, frame(2.0));
        // The worker restarts its clock: frame 0 duplicates a's end.
        let mut b = Trajectory::new();
        b.push(0.0, frame(2.0));
        b.push(1.0, frame(3.0));
        b.push(2.0, frame(4.0));
        a.append_continuation(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.times(), &[0.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.frame(2)[0], v3(3.0, 0.0, 0.0));
    }

    #[test]
    fn continuation_into_empty_adopts_whole() {
        let mut a = Trajectory::new();
        let mut b = Trajectory::new();
        b.push(0.0, frame(1.0));
        b.push(1.0, frame(2.0));
        a.append_continuation(&b);
        assert_eq!(a.len(), 2);
        a.append_continuation(&Trajectory::new());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn chunking_partitions_on_record_boundaries() {
        assert_eq!(chunk_steps(400, 4, 100), vec![100, 100, 100, 100]);
        // 10 records over 4 chunks: 3,3,2,2 records.
        assert_eq!(chunk_steps(1000, 4, 100), vec![300, 300, 200, 200]);
        // More chunks than records: clamps to one record per chunk.
        assert_eq!(chunk_steps(200, 8, 100), vec![100, 100]);
        // Single chunk is the whole segment.
        assert_eq!(chunk_steps(400, 1, 100), vec![400]);
        assert_eq!(chunk_steps(400, 1, 100).iter().sum::<u64>(), 400);
        assert_eq!(chunk_steps(1000, 3, 100).iter().sum::<u64>(), 1000);
    }

    #[test]
    fn data_size_accounting() {
        let mut t = Trajectory::new();
        t.push(0.0, frame(1.0));
        // 1 frame * 2 particles * 24 bytes + 1 time * 8 bytes = 56.
        assert_eq!(t.data_size_bytes(), 56);
    }
}
