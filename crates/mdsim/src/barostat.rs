//! Pressure coupling: Berendsen barostat for NPT simulations.
//!
//! Weak-coupling volume control: the box and all coordinates are scaled
//! by `μ = [1 − (dt/τ_p) κ (P₀ − P)]^{1/3}` each step, relaxing the
//! instantaneous virial pressure toward the target. Like its thermostat
//! sibling it does not sample the exact NPT ensemble but equilibrates
//! robustly — the standard preparation tool.

use crate::pbc::SimBox;
use crate::state::State;
use crate::vec3::Vec3;

/// Berendsen weak-coupling barostat (isotropic).
#[derive(Debug, Clone, Copy)]
pub struct BerendsenBarostat {
    /// Target pressure (reduced units).
    pub p0: f64,
    /// Coupling time constant.
    pub tau: f64,
    /// Isothermal compressibility estimate (sets the scaling gain).
    pub compressibility: f64,
    /// Maximum relative volume change per step (stability clamp).
    pub max_scaling: f64,
}

impl BerendsenBarostat {
    pub fn new(p0: f64, tau: f64, compressibility: f64) -> Self {
        assert!(tau > 0.0 && compressibility > 0.0);
        BerendsenBarostat {
            p0,
            tau,
            compressibility,
            max_scaling: 0.02,
        }
    }

    /// Apply one coupling step given the instantaneous pressure.
    /// Rescales the box and all positions isotropically; returns the
    /// linear scaling factor applied.
    pub fn couple(&self, state: &mut State, pressure: f64, dt: f64) -> f64 {
        let SimBox::Ortho { l } = state.sim_box else {
            panic!("pressure coupling requires a periodic box");
        };
        let factor = 1.0 - (dt / self.tau) * self.compressibility * (self.p0 - pressure);
        let clamped = factor.clamp(1.0 - self.max_scaling, 1.0 + self.max_scaling);
        let mu = clamped.cbrt();
        state.sim_box = SimBox::Ortho { l: l * mu };
        for p in state.positions.iter_mut() {
            *p *= mu;
        }
        mu
    }
}

/// Instantaneous pair virial `W = Σ_pairs r_ij · F_ij` for a
/// Lennard-Jones system evaluated directly from positions (shifted-LJ
/// forces match `NonbondedForce` with the shift on; the potential shift
/// does not change forces).
pub fn lj_pair_virial(
    positions: &[Vec3],
    sim_box: &SimBox,
    sigma: f64,
    epsilon: f64,
    cutoff: f64,
) -> f64 {
    let rc2 = cutoff * cutoff;
    let mut w = 0.0;
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            let dr = sim_box.displacement(positions[i], positions[j]);
            let r2 = dr.norm2();
            if r2 > rc2 || r2 == 0.0 {
                continue;
            }
            let sr2 = sigma * sigma / r2;
            let sr6 = sr2 * sr2 * sr2;
            let sr12 = sr6 * sr6;
            // r·F = 24ε(2 sr12 − sr6).
            w += 24.0 * epsilon * (2.0 * sr12 - sr6);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observables::virial_pressure;
    use crate::topology::{LjParams, Particle, Topology};
    use crate::vec3::v3;

    fn boxed_state(l: f64, positions: Vec<Vec3>) -> State {
        let mut top = Topology::new();
        for _ in 0..positions.len() {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        State::new(positions, &top, SimBox::cubic(l))
    }

    #[test]
    fn overpressure_expands_the_box() {
        let mut state = boxed_state(10.0, vec![v3(1.0, 1.0, 1.0), v3(9.0, 9.0, 9.0)]);
        let barostat = BerendsenBarostat::new(1.0, 1.0, 0.5);
        // Measured pressure above target → box must grow.
        let mu = barostat.couple(&mut state, 5.0, 0.01);
        assert!(mu > 1.0);
        let l = state.sim_box.lengths().unwrap().x;
        assert!(l > 10.0);
        // Positions scale with the box (relative coordinates preserved).
        assert!((state.positions[0].x / l - 0.1 * 10.0 / 10.0 / 1.0).abs() < 0.01);
    }

    #[test]
    fn underpressure_shrinks_the_box() {
        let mut state = boxed_state(10.0, vec![v3(5.0, 5.0, 5.0)]);
        let barostat = BerendsenBarostat::new(2.0, 1.0, 0.5);
        let mu = barostat.couple(&mut state, 0.5, 0.01);
        assert!(mu < 1.0);
        assert!(state.sim_box.lengths().unwrap().x < 10.0);
    }

    #[test]
    fn scaling_is_clamped() {
        let mut state = boxed_state(10.0, vec![v3(5.0, 5.0, 5.0)]);
        let barostat = BerendsenBarostat::new(1.0, 0.001, 10.0); // absurd gain
        let mu = barostat.couple(&mut state, 1e6, 0.1);
        assert!(mu <= 1.02_f64.cbrt() + 1e-12, "clamp failed: {mu}");
    }

    #[test]
    fn equilibrium_pressure_means_no_scaling() {
        let mut state = boxed_state(8.0, vec![v3(4.0, 4.0, 4.0)]);
        let barostat = BerendsenBarostat::new(1.3, 1.0, 0.5);
        let mu = barostat.couple(&mut state, 1.3, 0.01);
        assert!((mu - 1.0).abs() < 1e-12);
        assert!((state.sim_box.lengths().unwrap().x - 8.0).abs() < 1e-12);
    }

    #[test]
    fn repulsive_pair_has_positive_virial() {
        // Two particles inside the repulsive wall push outward: W > 0,
        // raising the pressure above ideal-gas.
        let bx = SimBox::cubic(10.0);
        let pos = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let w = lj_pair_virial(&pos, &bx, 1.0, 1.0, 2.5);
        assert!(w > 0.0);
        let p = virial_pressure(2, 1.0, w, &bx).unwrap();
        assert!(p > 2.0 / 1000.0, "pressure should exceed ideal-gas");
        // A pair at the attractive minimum separation pulls inward
        // (negative virial) at r slightly beyond the minimum.
        let pos_far = vec![v3(0.0, 0.0, 0.0), v3(1.5, 0.0, 0.0)];
        assert!(lj_pair_virial(&pos_far, &bx, 1.0, 1.0, 2.5) < 0.0);
    }

    #[test]
    fn npt_relaxes_toward_target_pressure() {
        // A dense LJ lattice at huge pressure: Berendsen coupling cycles
        // (recompute pressure → couple) must reduce |P − P0|.
        use crate::model::{lj_fluid, LjFluidSpec};
        let mut sim = lj_fluid(
            LjFluidSpec {
                n_particles: 216, // box edge 6σ: room for cutoff+skin
                density: 1.0,     // compressed
                temperature: 1.5,
                threaded: false,
                ..LjFluidSpec::default()
            },
            5,
        );
        let barostat = BerendsenBarostat::new(1.0, 0.5, 0.2);
        let dof = sim.dof();
        let measure = |sim: &crate::Simulation| -> f64 {
            let bx = &sim.state.sim_box;
            let w = lj_pair_virial(&sim.state.positions, bx, 1.0, 1.0, 2.5);
            virial_pressure(sim.state.n_particles(), sim.state.temperature(dof), w, bx).unwrap()
        };
        sim.run(100);
        let p_start = measure(&sim);
        for _ in 0..200 {
            sim.run(5);
            let p = measure(&sim);
            barostat.couple(&mut sim.state, p, 0.004 * 5.0);
        }
        let p_end = measure(&sim);
        assert!(
            (p_end - 1.0).abs() < (p_start - 1.0).abs() * 0.5,
            "pressure did not relax: {p_start} → {p_end}"
        );
        assert!(sim.state.is_finite());
    }

    #[test]
    #[should_panic(expected = "periodic")]
    fn open_box_is_rejected() {
        let mut top = Topology::new();
        top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        let mut state = State::new(vec![Vec3::ZERO], &top, SimBox::Open);
        BerendsenBarostat::new(1.0, 1.0, 0.5).couple(&mut state, 2.0, 0.01);
    }
}
