//! Periodic boundary conditions.
//!
//! The engine supports an orthorhombic (rectangular) box with full periodic
//! wrapping, plus an open (non-periodic) "box" used by the coarse-grained
//! folding models, where a molecule in vacuum needs no minimum-image
//! convention and the branch-free open-space path is measurably faster.

use crate::jsonv;
use crate::vec3::{v3, Vec3};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Simulation cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimBox {
    /// No periodicity; distances are plain Euclidean distances.
    Open,
    /// Orthorhombic periodic box with edge lengths `l`.
    Ortho { l: Vec3 },
}

impl SimBox {
    /// Cubic periodic box with edge `l`.
    pub fn cubic(l: f64) -> SimBox {
        assert!(l > 0.0, "box edge must be positive, got {l}");
        SimBox::Ortho { l: Vec3::splat(l) }
    }

    /// Orthorhombic periodic box.
    pub fn ortho(lx: f64, ly: f64, lz: f64) -> SimBox {
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "box edges must be positive, got ({lx}, {ly}, {lz})"
        );
        SimBox::Ortho { l: v3(lx, ly, lz) }
    }

    pub fn is_periodic(&self) -> bool {
        matches!(self, SimBox::Ortho { .. })
    }

    /// Wire encoding: `{"box": "open"}` or `{"box": "ortho", "l": [...]}`.
    pub fn to_value(&self) -> Value {
        match self {
            SimBox::Open => json!({"box": "open"}),
            SimBox::Ortho { l } => json!({"box": "ortho", "l": jsonv::vec3_to_value(*l)}),
        }
    }

    pub fn from_value(v: &Value) -> Result<SimBox, String> {
        match jsonv::field(v, "box")?.as_str() {
            Some("open") => Ok(SimBox::Open),
            Some("ortho") => Ok(SimBox::Ortho {
                l: jsonv::vec3_from_value(jsonv::field(v, "l")?)?,
            }),
            other => Err(format!("unknown box kind {other:?}")),
        }
    }

    /// Edge lengths; `None` for an open box.
    pub fn lengths(&self) -> Option<Vec3> {
        match self {
            SimBox::Open => None,
            SimBox::Ortho { l } => Some(*l),
        }
    }

    /// Box volume; `None` (infinite) for an open box.
    pub fn volume(&self) -> Option<f64> {
        self.lengths().map(|l| l.x * l.y * l.z)
    }

    /// Minimum-image displacement `a - b`.
    #[inline]
    pub fn displacement(&self, a: Vec3, b: Vec3) -> Vec3 {
        let d = a - b;
        match self {
            SimBox::Open => d,
            SimBox::Ortho { l } => v3(
                d.x - l.x * (d.x / l.x).round(),
                d.y - l.y * (d.y / l.y).round(),
                d.z - l.z * (d.z / l.z).round(),
            ),
        }
    }

    /// Minimum-image squared distance.
    #[inline]
    pub fn dist2(&self, a: Vec3, b: Vec3) -> f64 {
        self.displacement(a, b).norm2()
    }

    /// Minimum-image distance.
    #[inline]
    pub fn dist(&self, a: Vec3, b: Vec3) -> f64 {
        self.dist2(a, b).sqrt()
    }

    /// Wrap a position into the primary cell `[0, L)` per dimension.
    #[inline]
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        match self {
            SimBox::Open => p,
            SimBox::Ortho { l } => v3(
                p.x - l.x * (p.x / l.x).floor(),
                p.y - l.y * (p.y / l.y).floor(),
                p.z - l.z * (p.z / l.z).floor(),
            ),
        }
    }

    /// Wrap all positions in place.
    pub fn wrap_all(&self, positions: &mut [Vec3]) {
        if self.is_periodic() {
            for p in positions.iter_mut() {
                *p = self.wrap(*p);
            }
        }
    }

    /// The largest cutoff radius compatible with the minimum-image
    /// convention (half the shortest edge), or `f64::INFINITY` for an
    /// open box.
    pub fn max_cutoff(&self) -> f64 {
        match self {
            SimBox::Open => f64::INFINITY,
            SimBox::Ortho { l } => 0.5 * l.x.min(l.y).min(l.z),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_box_is_euclidean() {
        let b = SimBox::Open;
        let a = v3(0.0, 0.0, 0.0);
        let c = v3(100.0, 0.0, 0.0);
        assert_eq!(b.dist(a, c), 100.0);
        assert_eq!(b.wrap(c), c);
        assert_eq!(b.volume(), None);
        assert!(!b.is_periodic());
        assert_eq!(b.max_cutoff(), f64::INFINITY);
    }

    #[test]
    fn minimum_image_cubic() {
        let b = SimBox::cubic(10.0);
        // Points near opposite faces are close through the boundary.
        let a = v3(0.5, 5.0, 5.0);
        let c = v3(9.5, 5.0, 5.0);
        assert!((b.dist(a, c) - 1.0).abs() < 1e-12);
        let d = b.displacement(a, c);
        assert!((d.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_into_primary_cell() {
        let b = SimBox::cubic(10.0);
        let p = v3(12.5, -0.5, 20.0);
        let w = b.wrap(p);
        assert!((w.x - 2.5).abs() < 1e-12);
        assert!((w.y - 9.5).abs() < 1e-12);
        assert!(w.z.abs() < 1e-12);
        // Wrapping is idempotent.
        assert_eq!(b.wrap(w), w);
    }

    #[test]
    fn wrap_preserves_distances() {
        let b = SimBox::ortho(8.0, 10.0, 12.0);
        let a = v3(7.9, 9.9, 11.9);
        let c = v3(0.1, 0.1, 0.1);
        let d_before = b.dist(a, c);
        let d_after = b.dist(b.wrap(a + v3(16.0, -20.0, 24.0)), c);
        assert!((d_before - d_after).abs() < 1e-9);
    }

    #[test]
    fn volume_and_cutoff() {
        let b = SimBox::ortho(2.0, 3.0, 4.0);
        assert_eq!(b.volume(), Some(24.0));
        assert_eq!(b.max_cutoff(), 1.0);
        assert_eq!(b.lengths(), Some(v3(2.0, 3.0, 4.0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_edge() {
        let _ = SimBox::cubic(0.0);
    }

    #[test]
    fn wrap_all_only_touches_periodic() {
        let mut ps = vec![v3(11.0, 0.0, 0.0)];
        SimBox::Open.wrap_all(&mut ps);
        assert_eq!(ps[0], v3(11.0, 0.0, 0.0));
        SimBox::cubic(10.0).wrap_all(&mut ps);
        assert!((ps[0].x - 1.0).abs() < 1e-12);
    }
}
