//! Property-based tests of the MD substrate's core invariants.

use mdsim::pbc::SimBox;
use mdsim::rng::rng_from_seed;
use mdsim::state::State;
use mdsim::topology::{LjParams, Particle, Topology};
use mdsim::vec3::{v3, Vec3};
use mdsim::NeighborList;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    -50.0..50.0f64
}

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (small_f64(), small_f64(), small_f64()).prop_map(|(x, y, z)| v3(x, y, z))
}

proptest! {
    #[test]
    fn vec_addition_is_commutative_and_associative(a in arb_vec3(), b in arb_vec3(), c in arb_vec3()) {
        prop_assert!(((a + b) - (b + a)).norm() < 1e-12);
        prop_assert!(((a + (b + c)) - ((a + b) + c)).norm() < 1e-9);
    }

    #[test]
    fn cross_product_is_orthogonal(a in arb_vec3(), b in arb_vec3()) {
        let x = a.cross(b);
        prop_assert!(x.dot(a).abs() < 1e-6 * (1.0 + a.norm2()) * (1.0 + b.norm2()));
        prop_assert!(x.dot(b).abs() < 1e-6 * (1.0 + a.norm2()) * (1.0 + b.norm2()));
    }

    #[test]
    fn scalar_triple_product_is_cyclic(a in arb_vec3(), b in arb_vec3(), c in arb_vec3()) {
        let s1 = a.dot(b.cross(c));
        let s2 = b.dot(c.cross(a));
        let s3 = c.dot(a.cross(b));
        let scale = 1.0 + s1.abs();
        prop_assert!((s1 - s2).abs() < 1e-7 * scale);
        prop_assert!((s1 - s3).abs() < 1e-7 * scale);
    }

    #[test]
    fn pbc_wrap_is_idempotent_and_in_cell(
        p in arb_vec3(),
        l in 1.0..30.0f64,
    ) {
        let bx = SimBox::cubic(l);
        let w = bx.wrap(p);
        prop_assert!(w.x >= 0.0 && w.x < l + 1e-9);
        prop_assert!(w.y >= 0.0 && w.y < l + 1e-9);
        prop_assert!(w.z >= 0.0 && w.z < l + 1e-9);
        prop_assert!((bx.wrap(w) - w).norm() < 1e-9);
    }

    #[test]
    fn pbc_displacement_is_antisymmetric_and_minimal(
        a in arb_vec3(),
        b in arb_vec3(),
        l in 1.0..30.0f64,
    ) {
        let bx = SimBox::cubic(l);
        let dab = bx.displacement(a, b);
        let dba = bx.displacement(b, a);
        prop_assert!((dab + dba).norm() < 1e-9);
        // Each component within half the box.
        prop_assert!(dab.x.abs() <= 0.5 * l + 1e-9);
        prop_assert!(dab.y.abs() <= 0.5 * l + 1e-9);
        prop_assert!(dab.z.abs() <= 0.5 * l + 1e-9);
        // Distance unchanged by wrapping either argument.
        prop_assert!((bx.dist(a, b) - bx.dist(bx.wrap(a), bx.wrap(b))).abs() < 1e-9);
    }

    #[test]
    fn pbc_distance_never_exceeds_euclidean(a in arb_vec3(), b in arb_vec3(), l in 1.0..30.0f64) {
        let bx = SimBox::cubic(l);
        prop_assert!(bx.dist(a, b) <= (a - b).norm() + 1e-9);
    }

    #[test]
    fn neighbor_list_matches_brute_force(
        seed in 0u64..500,
        n in 20usize..120,
        l in 6.0..14.0f64,
    ) {
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        let pos: Vec<Vec3> = (0..n)
            .map(|_| v3(rng.random::<f64>() * l, rng.random::<f64>() * l, rng.random::<f64>() * l))
            .collect();
        let bx = SimBox::cubic(l);
        let cutoff = 2.0;
        let skin = 0.4;
        prop_assume!(cutoff + skin <= bx.max_cutoff());

        let mut nl = NeighborList::new(cutoff, skin);
        nl.build(&pos, &bx, &top);
        let mut got: Vec<(u32, u32)> = nl.pairs().to_vec();
        got.sort_unstable();

        let r2 = (cutoff + skin) * (cutoff + skin);
        let mut expected = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if bx.dist2(pos[i], pos[j]) <= r2 {
                    expected.push((i as u32, j as u32));
                }
            }
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn maxwell_boltzmann_removes_momentum(seed in 0u64..200, n in 4usize..60, t in 0.1..5.0f64) {
        let mut top = Topology::new();
        for k in 0..n {
            top.add_particle(Particle::neutral(1.0 + (k % 3) as f64, LjParams::new(1.0, 1.0)));
        }
        let mut state = State::new(vec![Vec3::ZERO; n], &top, SimBox::Open);
        let dof = top.dof(3);
        let mut rng = rng_from_seed(seed);
        state.init_velocities(t, dof, &mut rng);
        prop_assert!(state.momentum().norm() < 1e-9);
        prop_assert!((state.temperature(dof) - t).abs() < 1e-9);
    }

    #[test]
    fn bonded_forces_have_no_net_force_or_nan(seed in 0u64..300) {
        use mdsim::forces::{BondedForce, ForceTerm};
        use mdsim::rng::sample_normal;
        let mut rng = rng_from_seed(seed);
        let n = 6;
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        for i in 0..n - 1 {
            top.add_bond(i, i + 1, 1.0, 50.0);
        }
        for i in 0..n - 2 {
            top.add_angle(i, i + 1, i + 2, 1.8, 10.0);
        }
        for i in 0..n - 3 {
            top.add_dihedral(i, i + 1, i + 2, i + 3, 0.3, 1.5, 2);
        }
        let pos: Vec<Vec3> = (0..n)
            .map(|i| v3(
                i as f64 * 0.9 + 0.2 * sample_normal(&mut rng),
                (i % 2) as f64 + 0.2 * sample_normal(&mut rng),
                0.2 * sample_normal(&mut rng),
            ))
            .collect();
        let mut bf = BondedForce::from_topology(&top);
        let mut forces = vec![Vec3::ZERO; n];
        let e = bf.compute(&pos, &SimBox::Open, &mut forces);
        prop_assert!(e.is_finite());
        let net: Vec3 = forces.iter().copied().sum();
        prop_assert!(net.norm() < 1e-7, "net bonded force {net:?}");
        prop_assert!(forces.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn checkpoint_json_roundtrip_is_bitwise(seed in 0u64..100) {
        use mdsim::model::villin::VillinModel;
        let model = VillinModel::hp35();
        let mut sim = model.simulation(model.unfolded_start(seed), 0.5, seed);
        sim.run(50);
        let cp = sim.checkpoint(seed);
        let json = cp.to_json();
        let back = mdsim::Checkpoint::from_json(&json).unwrap();
        prop_assert_eq!(&back.state.positions, &cp.state.positions);
        prop_assert_eq!(&back.state.velocities, &cp.state.velocities);
        prop_assert_eq!(back.step, cp.step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn nve_energy_is_conserved_for_random_oscillator_networks(seed in 0u64..50) {
        use mdsim::forces::{BondedForce, ForceField};
        use mdsim::{Simulation, VelocityVerlet};
        use mdsim::rng::sample_normal;
        let mut rng = rng_from_seed(seed);
        let n = 5;
        let mut top = Topology::new();
        for _ in 0..n {
            top.add_particle(Particle::neutral(1.0, LjParams::new(1.0, 1.0)));
        }
        for i in 0..n - 1 {
            top.add_bond(i, i + 1, 1.0, 20.0);
        }
        let pos: Vec<Vec3> = (0..n)
            .map(|i| v3(i as f64 * 1.05, 0.1 * sample_normal(&mut rng), 0.1 * sample_normal(&mut rng)))
            .collect();
        let mut state = State::new(pos, &top, SimBox::Open);
        let dof = top.dof(3);
        state.init_velocities(0.3, dof, &mut rng);
        let ff = ForceField::new().with(Box::new(BondedForce::from_topology(&top)));
        let mut sim = Simulation::new(state, ff, Box::new(VelocityVerlet::nve()), 0.005, dof);
        let e0 = sim.total_energy();
        sim.run(2_000);
        let drift = (sim.total_energy() - e0).abs() / e0.abs().max(1.0);
        prop_assert!(drift < 1e-3, "relative energy drift {drift}");
    }
}
