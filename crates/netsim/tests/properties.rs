//! Property-based tests of the overlay-network simulator.

use netsim::{EventQueue, Link, NodeRole, Overlay};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0.0..1e6f64, 0..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    #[test]
    fn equal_times_preserve_insertion_order(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(1.0, i);
        }
        let mut expected = 0;
        while let Some((_, i)) = q.pop() {
            prop_assert_eq!(i, expected);
            expected += 1;
        }
    }

    #[test]
    fn transfer_time_is_monotone_in_bytes_and_latency(
        lat in 0.0..2.0f64,
        bw in 1.0..1e9f64,
        b1 in 0u64..1_000_000,
        extra in 0u64..1_000_000,
    ) {
        let l = Link::new(lat, bw);
        prop_assert!(l.transfer_time(b1 + extra) >= l.transfer_time(b1));
        prop_assert!(l.transfer_time(0) >= lat - 1e-12);
    }

    #[test]
    fn routes_follow_trusted_links_and_sum_latency(
        seed in 0u64..500,
        n in 2usize..12,
        density in 0.2..0.9f64,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut net = Overlay::new();
        let nodes: Vec<_> = (0..n)
            .map(|i| net.add_node(format!("n{i}"), NodeRole::RelayServer))
            .collect();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random::<f64>() < density {
                    let lat = 0.001 + rng.random::<f64>() * 0.1;
                    net.connect_trusted(nodes[i], nodes[j], Link::new(lat, 1e6));
                }
            }
        }
        let a = nodes[0];
        let b = nodes[n - 1];
        if let Some(path) = net.route(a, b) {
            prop_assert_eq!(path[0], a);
            prop_assert_eq!(*path.last().unwrap(), b);
            // Every hop is a trusted installed link; latency sums match.
            let mut total = 0.0;
            for w in path.windows(2) {
                let link = net.link(w[0], w[1]);
                prop_assert!(link.is_some(), "route uses a missing link");
                prop_assert!(net.is_trusted(w[0], w[1]));
                total += link.unwrap().latency;
            }
            prop_assert!((net.route_latency(a, b).unwrap() - total).abs() < 1e-12);
            // No repeated nodes (shortest paths are simple).
            let mut sorted = path.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len());
        }
    }

    #[test]
    fn dijkstra_is_optimal_on_small_graphs(seed in 0u64..300) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 6;
        let mut net = Overlay::new();
        let nodes: Vec<_> = (0..n)
            .map(|i| net.add_node(format!("n{i}"), NodeRole::RelayServer))
            .collect();
        let mut lat = vec![vec![f64::INFINITY; n]; n];
        for i in 0..n {
            lat[i][i] = 0.0;
            for j in (i + 1)..n {
                if rng.random::<f64>() < 0.6 {
                    let l = 0.01 + rng.random::<f64>();
                    net.connect_trusted(nodes[i], nodes[j], Link::new(l, 1e6));
                    lat[i][j] = l;
                    lat[j][i] = l;
                }
            }
        }
        // Floyd-Warshall reference.
        let mut dist = lat.clone();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = dist[i][k] + dist[k][j];
                    if via < dist[i][j] {
                        dist[i][j] = via;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let got = net.route_latency(nodes[i], nodes[j]);
                if dist[i][j].is_finite() {
                    prop_assert!(got.is_some());
                    prop_assert!((got.unwrap() - dist[i][j]).abs() < 1e-9,
                        "route {i}->{j}: {} vs {}", got.unwrap(), dist[i][j]);
                } else {
                    prop_assert!(got.is_none());
                }
            }
        }
    }
}
