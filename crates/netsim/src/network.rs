//! Overlay network topology: servers, authenticated links, routing.
//!
//! Models §2.2 of the paper: a small, relatively static graph of servers
//! (project servers, cluster head-node relays) plus workers hanging off
//! their closest server. Links are authenticated by explicit key exchange
//! — messages only route over trusted links — and each link carries a
//! latency and a bandwidth, so a transfer time is `Σ_hops (latency +
//! bytes / bandwidth)` (store-and-forward).

use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Node identifier in the overlay — the shared id type from
/// [`copernicus_ids`], so simulated topologies and the live transport
/// name nodes identically.
pub use copernicus_ids::NodeId;

/// What a node does in the deployment (Fig. 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRole {
    /// Holds projects and runs controllers.
    ProjectServer,
    /// Relays between workers and project servers (cluster head node).
    RelayServer,
    /// Executes commands.
    Worker,
    /// Command-line / web client.
    Client,
}

/// A directed-capable (but always installed bidirectionally) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl Link {
    pub fn new(latency: f64, bandwidth: f64) -> Self {
        assert!(latency >= 0.0, "latency must be non-negative");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Link { latency, bandwidth }
    }

    /// Wide-area SSL link (the paper's inter-continental case):
    /// >100 ms latency, ~100 MB/s peak.
    pub fn wan() -> Self {
        Link::new(0.120, 100e6)
    }

    /// Data-centre LAN between head nodes: 1 ms, 1 GB/s.
    pub fn lan() -> Self {
        Link::new(0.001, 1e9)
    }

    /// Cluster-internal link between a head node and compute nodes
    /// (Infiniband-class): 10 µs, 2.7 GB/s (the paper's QDR figure).
    pub fn infiniband() -> Self {
        Link::new(10e-6, 2.7e9)
    }

    /// Transfer time for a payload over this single hop.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// The authenticated overlay graph.
#[derive(Debug, Clone, Default)]
pub struct Overlay {
    roles: Vec<NodeRole>,
    names: Vec<String>,
    links: HashMap<(NodeId, NodeId), Link>,
    /// Pairs that have exchanged public keys (required before a link is
    /// usable).
    trusted: HashSet<(NodeId, NodeId)>,
    adjacency: HashMap<NodeId, Vec<NodeId>>,
}

impl Overlay {
    pub fn new() -> Self {
        Overlay::default()
    }

    pub fn add_node(&mut self, name: impl Into<String>, role: NodeRole) -> NodeId {
        let id = NodeId(self.roles.len() as u64);
        self.roles.push(role);
        self.names.push(name.into());
        id
    }

    pub fn n_nodes(&self) -> usize {
        self.roles.len()
    }

    pub fn role(&self, n: NodeId) -> NodeRole {
        self.roles[n.0 as usize]
    }

    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.0 as usize]
    }

    /// Install a bidirectional link. The link is unusable until
    /// [`Overlay::exchange_keys`] is called for the pair.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert!(a != b, "cannot link a node to itself");
        assert!((a.0 as usize) < self.n_nodes() && (b.0 as usize) < self.n_nodes());
        self.links.insert(key(a, b), link);
        self.adjacency.entry(a).or_default().push(b);
        self.adjacency.entry(b).or_default().push(a);
    }

    /// Exchange public keys between two nodes (§2.2: links require an
    /// explicit, user-initiated key exchange).
    pub fn exchange_keys(&mut self, a: NodeId, b: NodeId) {
        self.trusted.insert(key(a, b));
    }

    /// Convenience: connect and authenticate in one step.
    pub fn connect_trusted(&mut self, a: NodeId, b: NodeId, link: Link) {
        self.connect(a, b, link);
        self.exchange_keys(a, b);
    }

    pub fn is_trusted(&self, a: NodeId, b: NodeId) -> bool {
        self.trusted.contains(&key(a, b))
    }

    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&key(a, b))
    }

    /// Usable (connected *and* authenticated) neighbours of `n`.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(&n)
            .map(|adj| {
                adj.iter()
                    .copied()
                    .filter(|&m| self.is_trusted(n, m))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Lowest-latency route between two nodes over trusted links
    /// (Dijkstra). Returns the node sequence including both endpoints.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut dist: HashMap<NodeId, f64> = HashMap::new();
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut heap: BinaryHeap<(std::cmp::Reverse<OrderedF64>, NodeId)> = BinaryHeap::new();
        dist.insert(from, 0.0);
        heap.push((std::cmp::Reverse(OrderedF64(0.0)), from));
        while let Some((std::cmp::Reverse(OrderedF64(d)), u)) = heap.pop() {
            if u == to {
                break;
            }
            if d > *dist.get(&u).unwrap_or(&f64::INFINITY) {
                continue;
            }
            for v in self.neighbors(u) {
                let w = self.link(u, v).expect("neighbor implies link").latency;
                let nd = d + w;
                if nd < *dist.get(&v).unwrap_or(&f64::INFINITY) {
                    dist.insert(v, nd);
                    prev.insert(v, u);
                    heap.push((std::cmp::Reverse(OrderedF64(nd)), v));
                }
            }
        }
        if !dist.contains_key(&to) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[&cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Store-and-forward transfer time along a route.
    pub fn transfer_time(&self, path: &[NodeId], bytes: u64) -> f64 {
        path.windows(2)
            .map(|w| {
                self.link(w[0], w[1])
                    .expect("route must follow links")
                    .transfer_time(bytes)
            })
            .sum()
    }

    /// End-to-end one-way latency of a route (zero-byte transfer).
    pub fn route_latency(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.route(from, to).map(|p| self.transfer_time(&p, 0))
    }
}

#[derive(PartialEq, PartialOrd)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("latency is never NaN")
    }
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Build the paper's Fig. 1 deployment: two project servers, a gateway,
/// relay servers on three clusters, and `workers_per_cluster` workers per
/// cluster. Returns `(overlay, project_servers, relays, workers)`.
pub fn fig1_topology(
    workers_per_cluster: usize,
) -> (Overlay, Vec<NodeId>, Vec<NodeId>, Vec<Vec<NodeId>>) {
    let mut net = Overlay::new();
    let ps_titin = net.add_node("project-titin", NodeRole::ProjectServer);
    let ps_villin = net.add_node("project-villin", NodeRole::ProjectServer);
    let gateway = net.add_node("gateway-stockholm", NodeRole::RelayServer);
    let relay0 = net.add_node("cluster0-head", NodeRole::RelayServer);
    let relay1 = net.add_node("cluster1-head", NodeRole::RelayServer);
    let relay2 = net.add_node("cluster2-head", NodeRole::RelayServer);

    // Project servers reach the Stockholm gateway over the LAN, and the
    // Palo Alto cluster (2) over the WAN.
    net.connect_trusted(ps_titin, gateway, Link::lan());
    net.connect_trusted(ps_villin, gateway, Link::lan());
    net.connect_trusted(gateway, relay0, Link::lan());
    net.connect_trusted(gateway, relay1, Link::lan());
    net.connect_trusted(ps_titin, relay2, Link::wan());
    net.connect_trusted(ps_villin, relay2, Link::wan());

    let mut workers = Vec::new();
    for (c, &relay) in [relay0, relay1, relay2].iter().enumerate() {
        let mut ws = Vec::new();
        for w in 0..workers_per_cluster {
            let id = net.add_node(format!("c{c}-worker{w}"), NodeRole::Worker);
            net.connect_trusted(id, relay, Link::infiniband());
            ws.push(id);
        }
        workers.push(ws);
    }
    (
        net,
        vec![ps_titin, ps_villin],
        vec![gateway, relay0, relay1, relay2],
        workers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_time() {
        let l = Link::new(0.1, 1000.0);
        assert!((l.transfer_time(0) - 0.1).abs() < 1e-12);
        assert!((l.transfer_time(500) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn untrusted_links_do_not_route() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::ProjectServer);
        let b = net.add_node("b", NodeRole::Worker);
        net.connect(a, b, Link::lan());
        assert!(net.route(a, b).is_none(), "unauthenticated link routed");
        net.exchange_keys(a, b);
        assert_eq!(net.route(a, b), Some(vec![a, b]));
    }

    #[test]
    fn routes_choose_lowest_latency() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::ProjectServer);
        let m = net.add_node("m", NodeRole::RelayServer);
        let b = net.add_node("b", NodeRole::Worker);
        // Direct slow link vs two-hop fast path.
        net.connect_trusted(a, b, Link::new(1.0, 1e9));
        net.connect_trusted(a, m, Link::new(0.01, 1e9));
        net.connect_trusted(m, b, Link::new(0.01, 1e9));
        assert_eq!(net.route(a, b), Some(vec![a, m, b]));
        assert!((net.route_latency(a, b).unwrap() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::Client);
        assert_eq!(net.route(a, a), Some(vec![a]));
        assert_eq!(net.transfer_time(&[a], 1000), 0.0);
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::ProjectServer);
        let b = net.add_node("b", NodeRole::Worker);
        assert!(net.route(a, b).is_none());
    }

    #[test]
    fn store_and_forward_adds_per_hop_cost() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::ProjectServer);
        let m = net.add_node("m", NodeRole::RelayServer);
        let b = net.add_node("b", NodeRole::Worker);
        net.connect_trusted(a, m, Link::new(0.1, 1000.0));
        net.connect_trusted(m, b, Link::new(0.2, 2000.0));
        let path = net.route(a, b).unwrap();
        let t = net.transfer_time(&path, 1000);
        assert!((t - (0.1 + 1.0 + 0.2 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn fig1_topology_shape() {
        let (net, projects, relays, workers) = fig1_topology(4);
        assert_eq!(projects.len(), 2);
        assert_eq!(relays.len(), 4);
        assert_eq!(workers.len(), 3);
        assert_eq!(net.n_nodes(), 6 + 12);
        // Every worker can reach every project server.
        for cluster in &workers {
            for &w in cluster {
                for &p in &projects {
                    assert!(net.route(w, p).is_some(), "no route worker→project");
                }
            }
        }
        // Cluster-2 workers go over the WAN: much higher latency than
        // cluster-0 workers.
        let lat_local = net.route_latency(workers[0][0], projects[0]).unwrap();
        let lat_remote = net.route_latency(workers[2][0], projects[0]).unwrap();
        assert!(lat_remote > 50.0 * lat_local);
    }

    #[test]
    fn roles_and_names_are_stored() {
        let (net, projects, _, workers) = fig1_topology(1);
        assert_eq!(net.role(projects[0]), NodeRole::ProjectServer);
        assert_eq!(net.role(workers[0][0]), NodeRole::Worker);
        assert!(net.name(projects[0]).starts_with("project"));
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn no_self_links() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::Client);
        net.connect(a, a, Link::lan());
    }
}
