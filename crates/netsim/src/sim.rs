//! Message-level simulation over an [`Overlay`]: transfers, heartbeats,
//! worker-failure detection (§2.3 of the paper), and per-link traffic
//! accounting (Figs. 6 and 9).

use crate::events::EventQueue;
use crate::network::{NodeId, NodeRole, Overlay};
use copernicus_telemetry::{labels, names, Event as JournalEvent, Labels, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Why a message is being sent (used for traffic accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// Worker → server: 200-byte liveness report (paper default every
    /// 120 s).
    Heartbeat,
    /// Server → worker: command specification / input data.
    Workload,
    /// Worker → server: command output (trajectory data).
    Output,
    /// Control-plane chatter (routing, monitoring).
    Control,
}

impl MessageKind {
    /// Stable label value for the `net_bytes` counter series.
    pub fn tag(self) -> &'static str {
        match self {
            MessageKind::Heartbeat => "heartbeat",
            MessageKind::Workload => "workload",
            MessageKind::Output => "output",
            MessageKind::Control => "control",
        }
    }
}

/// A record the simulation emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NetRecord {
    Delivered {
        time: f64,
        src: NodeId,
        dst: NodeId,
        kind: MessageKind,
        bytes: u64,
    },
    Undeliverable {
        time: f64,
        src: NodeId,
        dst: NodeId,
        kind: MessageKind,
    },
    WorkerLost {
        time: f64,
        server: NodeId,
        worker: NodeId,
    },
}

enum Event {
    /// A message finishes traversing one hop.
    HopDone {
        src: NodeId,
        dst: NodeId,
        path: Vec<NodeId>,
        hop: usize,
        kind: MessageKind,
        bytes: u64,
    },
    /// A worker's next heartbeat is due.
    HeartbeatDue { worker: NodeId, server: NodeId },
    /// Server-side liveness check for a worker.
    Watchdog { server: NodeId, worker: NodeId },
    /// Node failure injection.
    NodeFails { node: NodeId },
}

/// Heartbeat configuration: interval and payload size (paper §2.3:
/// 120 s default, "message size typically less than 200 bytes", timeout
/// after twice the interval).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    pub interval: f64,
    pub payload_bytes: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: 120.0,
            payload_bytes: 200,
        }
    }
}

/// The network simulator.
pub struct NetSim {
    pub overlay: Overlay,
    queue: EventQueue<Event>,
    clock: f64,
    failed: Vec<bool>,
    /// (server, worker) → time of last received heartbeat.
    last_heartbeat: HashMap<(NodeId, NodeId), f64>,
    /// (server, worker) → already declared lost.
    declared_lost: HashMap<(NodeId, NodeId), bool>,
    heartbeat_cfg: HeartbeatConfig,
    /// Traffic accounting: per-link carried bytes become
    /// `net_link_bytes{link,level}` counters, delivered payload becomes
    /// `net_bytes{kind}` counters, and worker losses are journaled. A
    /// private handle by default; attach a shared one to fold the network
    /// levels into a project-wide report (Figs. 6 and 9).
    telemetry: Telemetry,
    records: Vec<NetRecord>,
}

impl NetSim {
    pub fn new(overlay: Overlay) -> Self {
        let n = overlay.n_nodes();
        NetSim {
            overlay,
            queue: EventQueue::new(),
            clock: 0.0,
            failed: vec![false; n],
            last_heartbeat: HashMap::new(),
            declared_lost: HashMap::new(),
            heartbeat_cfg: HeartbeatConfig::default(),
            telemetry: Telemetry::new(),
            records: Vec::new(),
        }
    }

    pub fn with_heartbeat_config(mut self, cfg: HeartbeatConfig) -> Self {
        self.heartbeat_cfg = cfg;
        self
    }

    /// Account traffic into a shared telemetry handle instead of the
    /// simulator-private one.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The telemetry handle traffic is accounted into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub fn now(&self) -> f64 {
        self.clock
    }

    pub fn records(&self) -> &[NetRecord] {
        &self.records
    }

    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.0 as usize]
    }

    /// Queue a message for delivery (routed at send time).
    pub fn send(&mut self, at: f64, src: NodeId, dst: NodeId, kind: MessageKind, bytes: u64) {
        match self.overlay.route(src, dst) {
            Some(path) if path.len() >= 2 => {
                let first_hop_time =
                    at + self
                        .overlay
                        .link(path[0], path[1])
                        .expect("route follows links")
                        .transfer_time(bytes);
                self.queue.push(
                    first_hop_time,
                    Event::HopDone {
                        src,
                        dst,
                        path,
                        hop: 1,
                        kind,
                        bytes,
                    },
                );
            }
            Some(_) => {
                // src == dst: instant local delivery.
                self.records.push(NetRecord::Delivered {
                    time: at,
                    src,
                    dst,
                    kind,
                    bytes,
                });
            }
            None => {
                self.records.push(NetRecord::Undeliverable {
                    time: at,
                    src,
                    dst,
                    kind,
                });
            }
        }
    }

    /// Start periodic heartbeats from `worker` to `server`, with the
    /// server's watchdog (timeout = 2 × interval).
    pub fn start_heartbeats(&mut self, at: f64, worker: NodeId, server: NodeId) {
        self.last_heartbeat.insert((server, worker), at);
        self.declared_lost.insert((server, worker), false);
        self.queue
            .push(at + self.heartbeat_cfg.interval, Event::HeartbeatDue { worker, server });
        self.queue.push(
            at + 2.0 * self.heartbeat_cfg.interval,
            Event::Watchdog { server, worker },
        );
    }

    /// Inject a node failure at the given time.
    pub fn fail_node_at(&mut self, at: f64, node: NodeId) {
        self.queue.push(at, Event::NodeFails { node });
    }

    /// Run the simulation until the event queue is exhausted or the clock
    /// passes `t_end`. Returns the records emitted during this call.
    pub fn run_until(&mut self, t_end: f64) -> Vec<NetRecord> {
        let start_records = self.records.len();
        while let Some(peek) = self.queue.peek_time() {
            if peek > t_end {
                break;
            }
            let (time, event) = self.queue.pop().expect("peeked");
            self.clock = time;
            self.handle(time, event);
        }
        self.clock = self.clock.max(t_end);
        self.records[start_records..].to_vec()
    }

    fn handle(&mut self, time: f64, event: Event) {
        match event {
            Event::HopDone {
                src,
                dst,
                path,
                hop,
                kind,
                bytes,
            } => {
                let from = path[hop - 1];
                let to = path[hop];
                // Account traffic on the traversed link.
                self.telemetry
                    .registry()
                    .counter(names::NET_LINK_BYTES, self.link_labels(from, to))
                    .add(bytes);
                if self.is_failed(to) {
                    self.records.push(NetRecord::Undeliverable {
                        time,
                        src,
                        dst,
                        kind,
                    });
                    return;
                }
                if hop + 1 == path.len() {
                    self.telemetry
                        .registry()
                        .counter(names::NET_BYTES, labels(&[("kind", kind.tag())]))
                        .add(bytes);
                    if kind == MessageKind::Heartbeat {
                        self.last_heartbeat.insert((dst, src), time);
                    }
                    self.records.push(NetRecord::Delivered {
                        time,
                        src,
                        dst,
                        kind,
                        bytes,
                    });
                } else {
                    let next_time = time
                        + self
                            .overlay
                            .link(path[hop], path[hop + 1])
                            .expect("route follows links")
                            .transfer_time(bytes);
                    self.queue.push(
                        next_time,
                        Event::HopDone {
                            src,
                            dst,
                            path,
                            hop: hop + 1,
                            kind,
                            bytes,
                        },
                    );
                }
            }
            Event::HeartbeatDue { worker, server } => {
                if self.is_failed(worker) {
                    return; // dead workers stop beating; no reschedule
                }
                self.send(
                    time,
                    worker,
                    server,
                    MessageKind::Heartbeat,
                    self.heartbeat_cfg.payload_bytes,
                );
                self.queue.push(
                    time + self.heartbeat_cfg.interval,
                    Event::HeartbeatDue { worker, server },
                );
            }
            Event::Watchdog { server, worker } => {
                if *self.declared_lost.get(&(server, worker)).unwrap_or(&true) {
                    return;
                }
                let last = *self
                    .last_heartbeat
                    .get(&(server, worker))
                    .unwrap_or(&f64::NEG_INFINITY);
                if time - last > 2.0 * self.heartbeat_cfg.interval {
                    self.declared_lost.insert((server, worker), true);
                    self.telemetry.journal().record(JournalEvent::WorkerLost {
                        worker: worker.0 as u64,
                    });
                    self.records.push(NetRecord::WorkerLost {
                        time,
                        server,
                        worker,
                    });
                } else {
                    self.queue.push(
                        time + self.heartbeat_cfg.interval,
                        Event::Watchdog { server, worker },
                    );
                }
            }
            Event::NodeFails { node } => {
                self.failed[node.0 as usize] = true;
            }
        }
    }

    /// Labels identifying an undirected link: its endpoint names and the
    /// level pair it connects (the Figs. 6/9 breakdown).
    fn link_labels(&self, a: NodeId, b: NodeId) -> Labels {
        let (a, b) = link_key(a, b);
        let link = format!("{}<->{}", self.overlay.name(a), self.overlay.name(b));
        labels(&[
            ("link", &link),
            ("level", level_label(self.overlay.role(a), self.overlay.role(b))),
        ])
    }

    /// Total bytes carried by a specific link so far.
    pub fn link_traffic(&self, a: NodeId, b: NodeId) -> u64 {
        self.telemetry
            .registry()
            .find_counter(names::NET_LINK_BYTES, &self.link_labels(a, b))
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Total bytes carried across all links of one level pair (e.g.
    /// `"relay-worker"`).
    pub fn level_traffic(&self, level: &str) -> u64 {
        self.telemetry
            .registry()
            .counter_series(names::NET_LINK_BYTES)
            .into_iter()
            .filter(|(l, _)| l.iter().any(|(k, v)| k == "level" && v == level))
            .map(|(_, total)| total)
            .sum()
    }

    /// Delivered payload bytes by message kind.
    pub fn traffic_by_kind(&self, kind: MessageKind) -> u64 {
        self.telemetry
            .registry()
            .find_counter(names::NET_BYTES, &labels(&[("kind", kind.tag())]))
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Average bandwidth (bytes/s) of a given kind over `elapsed` seconds.
    pub fn average_bandwidth(&self, kind: MessageKind, elapsed: f64) -> f64 {
        assert!(elapsed > 0.0);
        self.traffic_by_kind(kind) as f64 / elapsed
    }
}

fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn role_tag(role: NodeRole) -> &'static str {
    match role {
        NodeRole::ProjectServer => "server",
        NodeRole::RelayServer => "relay",
        NodeRole::Worker => "worker",
        NodeRole::Client => "client",
    }
}

/// Order-independent level pair, e.g. `"relay-worker"`.
fn level_label(a: NodeRole, b: NodeRole) -> &'static str {
    let (mut x, mut y) = (role_tag(a), role_tag(b));
    if x > y {
        std::mem::swap(&mut x, &mut y);
    }
    match (x, y) {
        ("client", "client") => "client-client",
        ("client", "relay") => "client-relay",
        ("client", "server") => "client-server",
        ("client", "worker") => "client-worker",
        ("relay", "relay") => "relay-relay",
        ("relay", "server") => "relay-server",
        ("relay", "worker") => "relay-worker",
        ("server", "server") => "server-server",
        ("server", "worker") => "server-worker",
        ("worker", "worker") => "worker-worker",
        _ => unreachable!("role tags are sorted"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{fig1_topology, Link, NodeRole};

    fn pair() -> (Overlay, NodeId, NodeId) {
        let mut net = Overlay::new();
        let s = net.add_node("server", NodeRole::ProjectServer);
        let w = net.add_node("worker", NodeRole::Worker);
        net.connect_trusted(s, w, Link::new(0.5, 1000.0));
        (net, s, w)
    }

    #[test]
    fn message_delivery_timing() {
        let (net, s, w) = pair();
        let mut sim = NetSim::new(net);
        sim.send(0.0, w, s, MessageKind::Output, 500);
        let recs = sim.run_until(10.0);
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            NetRecord::Delivered { time, bytes, .. } => {
                assert!((time - 1.0).abs() < 1e-12); // 0.5 latency + 0.5 transfer
                assert_eq!(*bytes, 500);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn multihop_accounting() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::ProjectServer);
        let m = net.add_node("m", NodeRole::RelayServer);
        let b = net.add_node("b", NodeRole::Worker);
        net.connect_trusted(a, m, Link::new(0.1, 1e6));
        net.connect_trusted(m, b, Link::new(0.1, 1e6));
        let mut sim = NetSim::new(net);
        sim.send(0.0, b, a, MessageKind::Output, 1_000_000);
        sim.run_until(100.0);
        // Both links carried the payload once.
        assert_eq!(sim.link_traffic(a, m), 1_000_000);
        assert_eq!(sim.link_traffic(m, b), 1_000_000);
        assert_eq!(sim.traffic_by_kind(MessageKind::Output), 1_000_000);
    }

    #[test]
    fn heartbeats_flow_until_failure() {
        let (net, s, w) = pair();
        let mut sim = NetSim::new(net).with_heartbeat_config(HeartbeatConfig {
            interval: 10.0,
            payload_bytes: 200,
        });
        sim.start_heartbeats(0.0, w, s);
        sim.fail_node_at(35.0, w);
        let recs = sim.run_until(200.0);
        let beats = recs
            .iter()
            .filter(|r| matches!(r, NetRecord::Delivered { kind: MessageKind::Heartbeat, .. }))
            .count();
        // Due at 10, 20, 30 — then the worker dies.
        assert_eq!(beats, 3);
        // The watchdog declares the worker lost within ~2 intervals of the
        // last heartbeat.
        let lost: Vec<&NetRecord> = recs
            .iter()
            .filter(|r| matches!(r, NetRecord::WorkerLost { .. }))
            .collect();
        assert_eq!(lost.len(), 1);
        if let NetRecord::WorkerLost { time, worker, server } = lost[0] {
            assert_eq!(*worker, w);
            assert_eq!(*server, s);
            assert!(*time > 35.0 && *time <= 60.0, "lost at {time}");
        }
    }

    #[test]
    fn healthy_worker_is_never_declared_lost() {
        let (net, s, w) = pair();
        let mut sim = NetSim::new(net).with_heartbeat_config(HeartbeatConfig {
            interval: 5.0,
            payload_bytes: 200,
        });
        sim.start_heartbeats(0.0, w, s);
        let recs = sim.run_until(300.0);
        assert!(
            !recs.iter().any(|r| matches!(r, NetRecord::WorkerLost { .. })),
            "false positive worker loss"
        );
    }

    #[test]
    fn messages_to_failed_nodes_bounce() {
        let (net, s, w) = pair();
        let mut sim = NetSim::new(net);
        sim.fail_node_at(0.0, s);
        sim.send(1.0, w, s, MessageKind::Output, 10);
        let recs = sim.run_until(10.0);
        assert!(recs
            .iter()
            .any(|r| matches!(r, NetRecord::Undeliverable { .. })));
    }

    #[test]
    fn unroutable_messages_are_reported() {
        let mut net = Overlay::new();
        let a = net.add_node("a", NodeRole::ProjectServer);
        let b = net.add_node("b", NodeRole::Worker);
        let mut sim = NetSim::new(net);
        // Unroutable sends are recorded immediately at send time.
        sim.send(0.0, a, b, MessageKind::Control, 1);
        sim.run_until(1.0);
        assert_eq!(sim.records().len(), 1);
        assert!(matches!(sim.records()[0], NetRecord::Undeliverable { .. }));
    }

    #[test]
    fn heartbeat_traffic_is_tiny_compared_to_output() {
        // The paper's design point: heartbeats don't leave the closest
        // server and are negligible bandwidth.
        let (net, projects, _, workers) = fig1_topology(8);
        let mut sim = NetSim::new(net).with_heartbeat_config(HeartbeatConfig {
            interval: 120.0,
            payload_bytes: 200,
        });
        // Heartbeats from every cluster-0 worker to its relay; one 100 MB
        // trajectory output to the project server.
        for &w in &workers[0] {
            let relay = sim.overlay.route(w, projects[0]).unwrap()[1];
            sim.start_heartbeats(0.0, w, relay);
        }
        sim.send(0.0, workers[0][0], projects[0], MessageKind::Output, 100_000_000);
        sim.run_until(3600.0);
        let hb = sim.average_bandwidth(MessageKind::Heartbeat, 3600.0);
        let out = sim.average_bandwidth(MessageKind::Output, 3600.0);
        assert!(hb < 100.0, "heartbeat bandwidth {hb} B/s");
        assert!(out > 1000.0 * hb, "output should dwarf heartbeats");
    }

    #[test]
    fn traffic_flows_into_shared_telemetry() {
        let t = Telemetry::new();
        let mut net = Overlay::new();
        let s = net.add_node("server", NodeRole::ProjectServer);
        let m = net.add_node("relay", NodeRole::RelayServer);
        let w = net.add_node("worker", NodeRole::Worker);
        net.connect_trusted(s, m, Link::new(0.1, 1e6));
        net.connect_trusted(m, w, Link::new(0.1, 1e6));
        let mut sim = NetSim::new(net).with_telemetry(t.clone());
        sim.send(0.0, w, s, MessageKind::Output, 1000);
        sim.run_until(100.0);
        // Each level pair carried the payload once.
        assert_eq!(sim.level_traffic("relay-worker"), 1000);
        assert_eq!(sim.level_traffic("relay-server"), 1000);
        assert_eq!(sim.level_traffic("server-worker"), 0);
        // The shared registry sees exactly the same accounting: carried
        // bytes per link, delivered payload per kind.
        assert_eq!(t.registry().counter_total(names::NET_LINK_BYTES), 2000);
        assert_eq!(t.registry().counter_total(names::NET_BYTES), 1000);
        assert_eq!(sim.traffic_by_kind(MessageKind::Output), 1000);
        assert_eq!(sim.traffic_by_kind(MessageKind::Heartbeat), 0);
    }

    #[test]
    fn worker_loss_is_journaled() {
        let (net, s, w) = pair();
        let mut sim = NetSim::new(net).with_heartbeat_config(HeartbeatConfig {
            interval: 10.0,
            payload_bytes: 200,
        });
        sim.start_heartbeats(0.0, w, s);
        sim.fail_node_at(5.0, w);
        sim.run_until(200.0);
        let entries = sim.telemetry().journal().entries();
        assert_eq!(
            entries
                .iter()
                .filter(|e| e.event.kind() == "worker_lost")
                .count(),
            1
        );
    }

    #[test]
    fn bandwidth_accounting_averages() {
        let (net, s, w) = pair();
        let mut sim = NetSim::new(net);
        sim.send(0.0, w, s, MessageKind::Output, 5000);
        sim.run_until(100.0);
        assert!((sim.average_bandwidth(MessageKind::Output, 100.0) - 50.0).abs() < 1e-9);
    }
}
