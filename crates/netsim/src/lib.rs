//! # netsim — overlay-network discrete-event simulation
//!
//! Models §2.2–2.3 of the Copernicus paper: the small authenticated
//! overlay of project servers and cluster head-node relays, lowest-latency
//! routing over trusted links, store-and-forward transfer timing,
//! heartbeat liveness reporting, and server-side worker-failure detection.
//! Used by the performance benchmarks (Figs. 6 and 9) to account traffic
//! per network level, and by the fault-tolerance tests.

pub mod events;
pub mod network;
pub mod sim;

pub use events::EventQueue;
pub use network::{fig1_topology, Link, NodeId, NodeRole, Overlay};
pub use sim::{HeartbeatConfig, MessageKind, NetRecord, NetSim};
