//! A generic discrete-event queue: (time, insertion order, event), popped
//! in time order with FIFO tie-breaking so simulations are deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest time pops first;
        // among equal times, the earliest-scheduled event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then(other.seq.cmp(&self.seq))
    }
}

/// Time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event, returning `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((2.0, "b")));
        q.push(1.0, "a");
        q.push(3.0, "c");
        assert_eq!(q.pop(), Some((1.0, "a")));
        q.push(0.5, "z"); // scheduling "in the past" is the caller's business
        assert_eq!(q.pop(), Some((0.5, "z")));
        assert_eq!(q.pop(), Some((3.0, "c")));
    }
}
