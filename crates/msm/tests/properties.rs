//! Property-based tests of the MSM toolkit's invariants.

use mdsim::rng::{rng_from_seed, sample_normal};
use mdsim::vec3::{v3, Vec3};
use msm::{
    allocate_spawns, k_centers, largest_connected_set, rmsd, rmsd_raw,
    strongly_connected_components, superpose, CountMatrix, TransitionMatrix,
};
use proptest::prelude::*;

fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = rng_from_seed(seed);
    (0..n)
        .map(|_| {
            v3(
                3.0 * sample_normal(&mut rng),
                3.0 * sample_normal(&mut rng),
                3.0 * sample_normal(&mut rng),
            )
        })
        .collect()
}

fn rotate(points: &[Vec3], yaw: f64, pitch: f64) -> Vec<Vec3> {
    let (sy, cy) = yaw.sin_cos();
    let (sp, cp) = pitch.sin_cos();
    points
        .iter()
        .map(|p| {
            // Rz(yaw) then Ry(pitch).
            let q = v3(cy * p.x - sy * p.y, sy * p.x + cy * p.y, p.z);
            v3(cp * q.x + sp * q.z, q.y, -sp * q.x + cp * q.z)
        })
        .collect()
}

proptest! {
    #[test]
    fn rmsd_is_rigid_motion_invariant(
        seed in 0u64..300,
        n in 4usize..40,
        yaw in -3.1..3.1f64,
        pitch in -1.5..1.5f64,
        tx in -20.0..20.0f64,
        ty in -20.0..20.0f64,
    ) {
        let a = random_points(n, seed);
        let mut b = rotate(&a, yaw, pitch);
        for p in b.iter_mut() {
            *p += v3(tx, ty, 2.0);
        }
        prop_assert!(rmsd(&a, &b) < 1e-6, "congruent sets must have ~0 RMSD");
    }

    #[test]
    fn rmsd_is_symmetric_and_bounded(seed in 0u64..300, n in 4usize..30) {
        let a = random_points(n, seed);
        let b = random_points(n, seed + 1000);
        let dab = rmsd(&a, &b);
        let dba = rmsd(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-8);
        prop_assert!(dab >= 0.0);
        prop_assert!(dab <= rmsd_raw(&a, &b) + 1e-9);
    }

    #[test]
    fn superposition_achieves_the_metric(seed in 0u64..200, n in 4usize..25) {
        let a = random_points(n, seed);
        let b = random_points(n, seed + 7);
        let aligned = superpose(&a, &b);
        prop_assert!((rmsd_raw(&a, &aligned) - rmsd(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn kcenters_invariants(seed in 0u64..200, n in 5usize..80, k in 1usize..10) {
        let items: Vec<f64> = {
            use rand::Rng;
            let mut rng = rng_from_seed(seed);
            (0..n).map(|_| rng.random::<f64>() * 100.0).collect()
        };
        let d = |a: &f64, b: &f64| (a - b).abs();
        let c = k_centers(&items, k, 0, d);
        // Assignments point at real clusters and distances match.
        for (i, &a) in c.assignment.iter().enumerate() {
            prop_assert!(a < c.n_clusters());
            let center_val = items[c.centers[a]];
            prop_assert!((d(&items[i], &center_val) - c.distances[i]).abs() < 1e-12);
            // No other center is strictly closer.
            for &other in &c.centers {
                prop_assert!(d(&items[i], &items[other]) >= c.distances[i] - 1e-12);
            }
        }
        // Radius is non-increasing in k.
        if k >= 2 {
            let c_fewer = k_centers(&items, k - 1, 0, d);
            prop_assert!(c.max_radius() <= c_fewer.max_radius() + 1e-12);
        }
    }

    #[test]
    fn allocation_sums_and_respects_zero_weights(
        weights in proptest::collection::vec(0.0..10.0f64, 1..20),
        n_new in 0usize..100,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let alloc = allocate_spawns(&weights, n_new);
        prop_assert_eq!(alloc.iter().sum::<usize>(), n_new);
        for (w, &a) in weights.iter().zip(&alloc) {
            if *w == 0.0 {
                // Largest-remainder may hand a zero-weight state at most
                // the rounding surplus, never a floor share.
                prop_assert!(a <= 1);
            }
        }
    }

    #[test]
    fn count_matrix_total_matches_window_count(
        dtraj in proptest::collection::vec(0usize..8, 0..200),
        lag in 1usize..5,
    ) {
        let c = CountMatrix::from_dtrajs(std::slice::from_ref(&dtraj), 8, lag);
        let expected = dtraj.len().saturating_sub(lag);
        prop_assert_eq!(c.total(), expected as f64);
    }

    #[test]
    fn transition_matrices_are_row_stochastic_and_conserve_mass(
        dtraj in proptest::collection::vec(0usize..6, 10..300),
        lag in 1usize..4,
    ) {
        let c = CountMatrix::from_dtrajs(std::slice::from_ref(&dtraj), 6, lag);
        let t = TransitionMatrix::from_counts(&c, 1e-6);
        prop_assert!(t.is_row_stochastic(1e-9));
        let p0 = vec![1.0 / 6.0; 6];
        let p1 = t.propagate(&p0);
        prop_assert!((p1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p1.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn reversible_mle_detailed_balance_on_random_counts(seed in 0u64..200, n in 2usize..8) {
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        let mut c = CountMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                c.add(i, j, (rng.random::<f64>() * 20.0).floor() + 1.0);
            }
        }
        let t = TransitionMatrix::reversible_mle(&c, 0.0, 20_000);
        prop_assert!(t.is_row_stochastic(1e-8));
        let pi = t.stationary(1e-13, 500_000);
        for i in 0..n {
            for j in 0..n {
                let f_ij = pi[i] * t.get(i, j);
                let f_ji = pi[j] * t.get(j, i);
                prop_assert!((f_ij - f_ji).abs() < 1e-6, "detailed balance ({i},{j}): {f_ij} vs {f_ji}");
            }
        }
    }

    #[test]
    fn scc_components_partition_the_states(seed in 0u64..300, n in 1usize..15) {
        use rand::Rng;
        let mut rng = rng_from_seed(seed);
        let mut c = CountMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j && rng.random::<f64>() < 0.25 {
                    c.add(i, j, 1.0);
                }
            }
        }
        let comps = strongly_connected_components(&c);
        // Partition: every state exactly once.
        let mut seen = vec![false; n];
        for comp in &comps {
            for &s in comp {
                prop_assert!(!seen[s], "state {s} in two components");
                seen[s] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|x| x));
        // The largest connected set is one of the components.
        let largest = largest_connected_set(&c);
        prop_assert!(comps.contains(&largest));
        // Mutual reachability within the largest component.
        if largest.len() > 1 {
            let reach = |from: usize| -> Vec<bool> {
                let mut vis = vec![false; n];
                let mut stack = vec![from];
                vis[from] = true;
                while let Some(u) = stack.pop() {
                    for v in 0..n {
                        if c.get(u, v) > 0.0 && !vis[v] {
                            vis[v] = true;
                            stack.push(v);
                        }
                    }
                }
                vis
            };
            for &a in &largest {
                let r = reach(a);
                for &b in &largest {
                    prop_assert!(r[b], "{a} cannot reach {b} inside an SCC");
                }
            }
        }
    }
}
