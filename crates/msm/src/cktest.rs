//! Chapman-Kolmogorov validation.
//!
//! A Markov state model at lag τ predicts the dynamics at lag kτ via
//! `T(τ)^k`; the CK test compares that prediction against a model
//! estimated *directly* at lag kτ. The paper validates its villin model
//! by this family of tests ("a sensitivity analysis showed the system
//! became Markovian…"); this module implements the set-persistence
//! variant: for a metastable set A, compare
//! `p_pred(stay in A after kτ)` vs `p_est(stay in A after kτ)`.

use crate::connectivity::largest_connected_set;
use crate::counts::CountMatrix;
use crate::tmatrix::TransitionMatrix;
use serde::{Deserialize, Serialize};

/// Result of a CK test on one state set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CkTestResult {
    /// Lag multiples tested (k = 1, 2, …).
    pub multiples: Vec<usize>,
    /// Persistence probability predicted by `T(τ)^k`.
    pub predicted: Vec<f64>,
    /// Persistence probability of the model estimated at lag kτ.
    pub estimated: Vec<f64>,
    /// Largest |predicted − estimated| across the multiples.
    pub max_error: f64,
}

/// Run the set-persistence CK test.
///
/// `subset` lists states (original ids, before connectivity trimming)
/// forming the metastable set; the reported probability is the
/// π-weighted chance of still being in the set after kτ, starting inside
/// it. Both models use the reversible MLE on the base-lag connected set.
pub fn chapman_kolmogorov_test(
    dtrajs: &[Vec<usize>],
    n_states: usize,
    base_lag: usize,
    multiples: &[usize],
    subset: &[usize],
) -> CkTestResult {
    assert!(base_lag >= 1);
    assert!(!multiples.is_empty());

    let base_counts = CountMatrix::from_dtrajs(dtrajs, n_states, base_lag);
    let active = largest_connected_set(&base_counts);
    let t_base = TransitionMatrix::reversible_mle(&base_counts.restrict(&active), 1e-6, 10_000);
    let pi = t_base.stationary(1e-12, 200_000);

    // Active-set indices of the subset.
    let set_idx: Vec<usize> = subset
        .iter()
        .filter_map(|&s| active.binary_search(&s).ok())
        .collect();
    assert!(
        !set_idx.is_empty(),
        "subset has no overlap with the connected set"
    );

    // π restricted to the set, normalized: the start distribution.
    let mut p0 = vec![0.0; active.len()];
    let mass: f64 = set_idx.iter().map(|&k| pi[k]).sum();
    for &k in &set_idx {
        p0[k] = pi[k] / mass;
    }

    let persistence = |t: &TransitionMatrix, p_start: &[f64], steps: usize| -> f64 {
        let mut p = p_start.to_vec();
        for _ in 0..steps {
            p = t.propagate(&p);
        }
        set_idx.iter().map(|&k| p[k]).sum()
    };

    let mut predicted = Vec::with_capacity(multiples.len());
    let mut estimated = Vec::with_capacity(multiples.len());
    for &k in multiples {
        assert!(k >= 1);
        predicted.push(persistence(&t_base, &p0, k));
        // Direct estimate at lag kτ, on the same active set.
        let counts_k = CountMatrix::from_dtrajs(dtrajs, n_states, base_lag * k);
        let t_k = TransitionMatrix::reversible_mle(&counts_k.restrict(&active), 1e-6, 10_000);
        estimated.push(persistence(&t_k, &p0, 1));
    }

    let max_error = predicted
        .iter()
        .zip(&estimated)
        .map(|(p, e)| (p - e).abs())
        .fold(0.0, f64::max);
    CkTestResult {
        multiples: multiples.to_vec(),
        predicted,
        estimated,
        max_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::rng::rng_from_seed;
    use rand::Rng;

    /// Sample a discrete trajectory from an explicit chain.
    fn sample_chain(t: &TransitionMatrix, len: usize, seed: u64) -> Vec<usize> {
        let mut rng = rng_from_seed(seed);
        let mut state = 0usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(state);
            let u: f64 = rng.random();
            let mut acc = 0.0;
            for j in 0..t.n_states() {
                acc += t.get(state, j);
                if u <= acc {
                    state = j;
                    break;
                }
            }
        }
        out
    }

    fn two_state() -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![0.95, 0.05], vec![0.02, 0.98]])
    }

    #[test]
    fn markovian_data_passes_ck() {
        let chain = two_state();
        let dtrajs: Vec<Vec<usize>> = (0..5).map(|s| sample_chain(&chain, 20_000, s)).collect();
        let result = chapman_kolmogorov_test(&dtrajs, 2, 1, &[1, 2, 4, 8], &[1]);
        assert!(
            result.max_error < 0.03,
            "CK should pass on Markovian data: {result:?}"
        );
        // Persistence decays with the lag multiple.
        for w in result.predicted.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn hidden_state_lumping_fails_ck() {
        // A 3-state chain 0 ↔ 1 ↔ 2 observed through a 2-state lens that
        // lumps {1, 2}: the lumped process is non-Markovian at lag 1, so
        // the CK error must be visibly larger than in the Markovian case.
        let chain = TransitionMatrix::from_rows(vec![
            vec![0.90, 0.10, 0.00],
            vec![0.40, 0.20, 0.40],
            vec![0.00, 0.02, 0.98],
        ]);
        let dtrajs: Vec<Vec<usize>> = (0..5)
            .map(|s| {
                sample_chain(&chain, 20_000, s + 100)
                    .into_iter()
                    .map(|x| if x == 0 { 0 } else { 1 })
                    .collect()
            })
            .collect();
        let result = chapman_kolmogorov_test(&dtrajs, 2, 1, &[1, 2, 4, 8], &[0]);
        assert!(
            result.max_error > 0.05,
            "lumped non-Markovian dynamics should fail CK: {result:?}"
        );
    }

    #[test]
    fn longer_lag_restores_markovianity() {
        // The same lumped process tested at a longer base lag shows a
        // smaller CK error — the paper's criterion for choosing 25 ns.
        let chain = TransitionMatrix::from_rows(vec![
            vec![0.90, 0.10, 0.00],
            vec![0.40, 0.20, 0.40],
            vec![0.00, 0.02, 0.98],
        ]);
        let dtrajs: Vec<Vec<usize>> = (0..5)
            .map(|s| {
                sample_chain(&chain, 40_000, s + 200)
                    .into_iter()
                    .map(|x| if x == 0 { 0 } else { 1 })
                    .collect()
            })
            .collect();
        let short = chapman_kolmogorov_test(&dtrajs, 2, 1, &[2, 4], &[0]);
        let long = chapman_kolmogorov_test(&dtrajs, 2, 10, &[2, 4], &[0]);
        assert!(
            long.max_error < short.max_error,
            "longer lag should reduce CK error: short {short:?}, long {long:?}"
        );
    }

    #[test]
    fn multiple_one_is_exact() {
        // k = 1 compares the model with itself: error ~ 0.
        let chain = two_state();
        let dtrajs = vec![sample_chain(&chain, 5_000, 9)];
        let result = chapman_kolmogorov_test(&dtrajs, 2, 2, &[1], &[0]);
        assert!(result.max_error < 1e-9);
    }
}
