//! Chapman-Kolmogorov propagation of state populations (paper Eq. 1) and
//! the kinetic observables derived from it (Fig. 4): population time
//! series, folded fraction, and folding half-time t½.

use crate::tmatrix::TransitionMatrix;

/// Population time series `p(0), p(τ), p(2τ), …` with `n_steps`
/// propagation steps (so `n_steps + 1` rows).
pub fn propagate_series(t: &TransitionMatrix, p0: &[f64], n_steps: usize) -> Vec<Vec<f64>> {
    let mut series = Vec::with_capacity(n_steps + 1);
    series.push(p0.to_vec());
    let mut p = p0.to_vec();
    for _ in 0..n_steps {
        p = t.propagate(&p);
        series.push(p.clone());
    }
    series
}

/// Total population of a state subset at each time point.
pub fn subset_population(series: &[Vec<f64>], subset: &[usize]) -> Vec<f64> {
    series
        .iter()
        .map(|p| subset.iter().map(|&s| p[s]).sum())
        .collect()
}

/// First time (linear interpolation between samples) at which `values`
/// crosses `target` from below. `times` and `values` run in parallel.
pub fn first_crossing(times: &[f64], values: &[f64], target: f64) -> Option<f64> {
    assert_eq!(times.len(), values.len());
    for w in 0..values.len().saturating_sub(1) {
        let (v0, v1) = (values[w], values[w + 1]);
        if v0 < target && v1 >= target {
            let f = (target - v0) / (v1 - v0);
            return Some(times[w] + f * (times[w + 1] - times[w]));
        }
    }
    if values.first().is_some_and(|&v| v >= target) {
        return Some(times[0]);
    }
    None
}

/// Folding half-time: the time at which the subset population first
/// reaches half of its final (last-sample) value.
pub fn half_life(times: &[f64], population: &[f64]) -> Option<f64> {
    let last = *population.last()?;
    first_crossing(times, population, 0.5 * last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(a: f64, b: f64) -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![1.0 - a, a], vec![b, 1.0 - b]])
    }

    #[test]
    fn series_shape_and_start() {
        let t = two_state(0.2, 0.1);
        let series = propagate_series(&t, &[1.0, 0.0], 10);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0], vec![1.0, 0.0]);
    }

    #[test]
    fn relaxation_approaches_stationary() {
        let t = two_state(0.3, 0.1);
        let series = propagate_series(&t, &[1.0, 0.0], 500);
        let last = series.last().unwrap();
        assert!((last[0] - 0.25).abs() < 1e-9);
        assert!((last[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn analytic_two_state_relaxation() {
        // p1(t) = π1 (1 - (1-a-b)^t) from p = (1, 0).
        let (a, b) = (0.3, 0.1);
        let t = two_state(a, b);
        let series = propagate_series(&t, &[1.0, 0.0], 20);
        let pi1 = a / (a + b);
        for (step, p) in series.iter().enumerate() {
            let expected = pi1 * (1.0 - (1.0 - a - b).powi(step as i32));
            assert!(
                (p[1] - expected).abs() < 1e-12,
                "step {step}: {} vs {expected}",
                p[1]
            );
        }
    }

    #[test]
    fn subset_population_sums_states() {
        let t = two_state(0.5, 0.5);
        let series = propagate_series(&t, &[0.6, 0.4], 3);
        let all = subset_population(&series, &[0, 1]);
        for v in all {
            assert!((v - 1.0).abs() < 1e-12);
        }
        let only1 = subset_population(&series, &[1]);
        assert_eq!(only1[0], 0.4);
    }

    #[test]
    fn first_crossing_interpolates() {
        let times = vec![0.0, 1.0, 2.0];
        let values = vec![0.0, 0.5, 1.0];
        let t = first_crossing(&times, &values, 0.25).unwrap();
        assert!((t - 0.5).abs() < 1e-12);
        // Already above at t=0.
        assert_eq!(first_crossing(&times, &values, 0.0), Some(0.0));
        // Never reached.
        assert_eq!(first_crossing(&times, &values, 2.0), None);
    }

    #[test]
    fn half_life_of_two_state_folding() {
        // Folding into state 1 with rate a, no unfolding: p1(t) = 1-(1-a)^t,
        // final value 1, half-life where p1 = 0.5: t = ln 0.5/ln(1-a).
        let a = 0.1;
        let t = two_state(a, 0.0);
        let series = propagate_series(&t, &[1.0, 0.0], 200);
        let folded = subset_population(&series, &[1]);
        let times: Vec<f64> = (0..=200).map(|i| i as f64).collect();
        let t_half = half_life(&times, &folded).unwrap();
        let expected = (0.5f64).ln() / (1.0 - a).ln();
        assert!(
            (t_half - expected).abs() < 0.2,
            "t½ = {t_half}, expected {expected}"
        );
    }

    #[test]
    fn half_life_none_for_empty() {
        assert_eq!(half_life(&[], &[]), None);
    }
}
