//! Conformational clustering: k-centers and k-medoids.
//!
//! The paper's MSM plugin clusters all trajectory data into microstates
//! (10,000 clusters at full scale) with an RMSD metric. K-centers
//! (Gonzalez farthest-point traversal) is the standard msmbuilder-era
//! choice: O(k·N) distance evaluations and approximately uniform state
//! radii. A k-medoids refinement pass tightens the centers.

use rayon::prelude::*;

/// Result of clustering `n` items into `k` states.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Item index of each cluster center, length k.
    pub centers: Vec<usize>,
    /// Cluster id of every item, length n.
    pub assignment: Vec<usize>,
    /// Distance from every item to its assigned center, length n.
    pub distances: Vec<f64>,
}

impl Clustering {
    pub fn n_clusters(&self) -> usize {
        self.centers.len()
    }

    pub fn n_items(&self) -> usize {
        self.assignment.len()
    }

    /// Items belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }

    /// Cluster populations (item counts), length k.
    pub fn populations(&self) -> Vec<usize> {
        let mut pops = vec![0usize; self.n_clusters()];
        for &a in &self.assignment {
            pops[a] += 1;
        }
        pops
    }

    /// Largest distance of any item to its center (the clustering radius).
    pub fn max_radius(&self) -> f64 {
        self.distances.iter().copied().fold(0.0, f64::max)
    }
}

/// K-centers clustering (Gonzalez): start from `first`, repeatedly promote
/// the item farthest from all existing centers. Guarantees a 2-approximation
/// of the optimal covering radius.
///
/// `dist` must be a metric (symmetric, non-negative, zero on identity).
pub fn k_centers<T: Sync>(
    items: &[T],
    k: usize,
    first: usize,
    dist: impl Fn(&T, &T) -> f64 + Sync,
) -> Clustering {
    let n = items.len();
    assert!(n > 0, "cannot cluster zero items");
    assert!(first < n, "first-center index out of range");
    let k = k.min(n);

    let mut centers = Vec::with_capacity(k);
    let mut assignment = vec![0usize; n];
    let mut distances = vec![f64::INFINITY; n];

    let mut next_center = first;
    for c in 0..k {
        centers.push(next_center);
        let center_item = &items[next_center];
        // Relax distances against the new center (parallel over items).
        let updates: Vec<(usize, f64)> = items
            .par_iter()
            .enumerate()
            .filter_map(|(i, item)| {
                let d = dist(item, center_item);
                if d < distances[i] {
                    Some((i, d))
                } else {
                    None
                }
            })
            .collect();
        for (i, d) in updates {
            distances[i] = d;
            assignment[i] = c;
        }
        // Pick the farthest item as the next center.
        if c + 1 < k {
            let (argmax, _) = distances
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .expect("non-empty");
            next_center = argmax;
        }
    }
    Clustering {
        centers,
        assignment,
        distances,
    }
}

/// K-medoids refinement: for each cluster, move the center to the member
/// minimizing the sum of in-cluster distances; reassign; repeat up to
/// `max_iter` times or until stable. Returns the refined clustering and
/// the number of update iterations performed.
pub fn k_medoids_refine<T: Sync>(
    items: &[T],
    clustering: &Clustering,
    max_iter: usize,
    dist: impl Fn(&T, &T) -> f64 + Sync,
) -> (Clustering, usize) {
    let n = items.len();
    let k = clustering.n_clusters();
    let mut centers = clustering.centers.clone();
    let mut assignment = clustering.assignment.clone();
    let mut iters = 0;

    for _ in 0..max_iter {
        iters += 1;
        // Update step: exact medoid of each cluster.
        let members_of: Vec<Vec<usize>> = {
            let mut m: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (i, &a) in assignment.iter().enumerate() {
                m[a].push(i);
            }
            m
        };
        let new_centers: Vec<usize> = (0..k)
            .into_par_iter()
            .map(|c| {
                let members = &members_of[c];
                if members.is_empty() {
                    return centers[c];
                }
                *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        let cost = |x: usize| -> f64 {
                            members.iter().map(|&m| dist(&items[x], &items[m])).sum()
                        };
                        cost(a).partial_cmp(&cost(b)).unwrap()
                    })
                    .expect("non-empty members")
            })
            .collect();

        // Assign step.
        let new_assignment: Vec<usize> = (0..n)
            .into_par_iter()
            .map(|i| {
                (0..k)
                    .min_by(|&a, &b| {
                        dist(&items[i], &items[new_centers[a]])
                            .partial_cmp(&dist(&items[i], &items[new_centers[b]]))
                            .unwrap()
                    })
                    .expect("k > 0")
            })
            .collect();

        let stable = new_centers == centers && new_assignment == assignment;
        centers = new_centers;
        assignment = new_assignment;
        if stable {
            break;
        }
    }

    let distances: Vec<f64> = (0..n)
        .into_par_iter()
        .map(|i| dist(&items[i], &items[centers[assignment[i]]]))
        .collect();
    (
        Clustering {
            centers,
            assignment,
            distances,
        },
        iters,
    )
}

/// Assign new items to the nearest of the given centers.
pub fn assign<T: Sync>(
    items: &[T],
    center_items: &[T],
    dist: impl Fn(&T, &T) -> f64 + Sync,
) -> Vec<usize> {
    assert!(!center_items.is_empty(), "no centers to assign to");
    items
        .par_iter()
        .map(|item| {
            (0..center_items.len())
                .min_by(|&a, &b| {
                    dist(item, &center_items[a])
                        .partial_cmp(&dist(item, &center_items[b]))
                        .unwrap()
                })
                .expect("non-empty centers")
        })
        .collect()
}

/// Nearest center of `item` under `dist`: `(center index, distance)`.
/// The single-item core of [`assign`], exposed for streaming use where
/// frames arrive one segment at a time.
pub fn nearest_center<T>(
    item: &T,
    center_items: &[T],
    dist: impl Fn(&T, &T) -> f64,
) -> (usize, f64) {
    assert!(!center_items.is_empty(), "no centers to assign to");
    let mut best = (0, dist(item, &center_items[0]));
    for (c, center) in center_items.iter().enumerate().skip(1) {
        let d = dist(item, center);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// One mini-batch k-means step (Sculley 2010) for conformational
/// centers: superpose the new member onto the center, then pull the
/// center toward it with per-center learning rate `1/count`, where
/// `count` includes the new member. Early members move a center a lot;
/// as the state fills in, the center converges to the state mean.
pub fn minibatch_center_update(
    center: &mut [mdsim::vec3::Vec3],
    member: &[mdsim::vec3::Vec3],
    count: f64,
) {
    assert_eq!(center.len(), member.len(), "particle count mismatch");
    assert!(count >= 1.0, "count must include the new member");
    let fitted = crate::metric::superpose(center, member);
    let eta = 1.0 / count;
    for (c, m) in center.iter_mut().zip(&fitted) {
        *c = *c + (*m - *c) * eta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    /// Three well-separated 1-D blobs.
    fn blobs() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(0.0 + i as f64 * 0.01);
            v.push(10.0 + i as f64 * 0.01);
            v.push(20.0 + i as f64 * 0.01);
        }
        v
    }

    #[test]
    fn kcenters_separates_blobs() {
        let items = blobs();
        let c = k_centers(&items, 3, 0, d1);
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.n_items(), 30);
        // All members of one blob share a cluster.
        for blob in 0..3 {
            let ids: Vec<usize> = (0..10).map(|i| c.assignment[blob + 3 * i]).collect();
            assert!(
                ids.iter().all(|&x| x == ids[0]),
                "blob {blob} split across clusters"
            );
        }
        // Radius is within a blob, not across blobs.
        assert!(c.max_radius() < 1.0);
    }

    #[test]
    fn kcenters_handles_k_larger_than_n() {
        let items = vec![1.0, 2.0];
        let c = k_centers(&items, 10, 0, d1);
        assert_eq!(c.n_clusters(), 2);
        assert!(c.max_radius() < 1e-12);
    }

    #[test]
    fn kcenters_first_center_is_respected() {
        let items = blobs();
        let c = k_centers(&items, 3, 5, d1);
        assert_eq!(c.centers[0], 5);
    }

    #[test]
    fn populations_sum_to_n() {
        let items = blobs();
        let c = k_centers(&items, 3, 0, d1);
        assert_eq!(c.populations().iter().sum::<usize>(), 30);
    }

    #[test]
    fn members_match_assignment() {
        let items = blobs();
        let c = k_centers(&items, 3, 0, d1);
        for cl in 0..3 {
            for &m in &c.members(cl) {
                assert_eq!(c.assignment[m], cl);
            }
        }
    }

    #[test]
    fn kmedoids_moves_centers_to_blob_middles() {
        let items = blobs();
        let c = k_centers(&items, 3, 0, d1);
        let (refined, iters) = k_medoids_refine(&items, &c, 10, d1);
        assert!(iters <= 10);
        // Each refined center should be the medoid of a 10-point blob:
        // the sum of distances from the true medoid is minimal.
        for &center in &refined.centers {
            let val = items[center];
            let blob_base = (val / 10.0).round() * 10.0;
            // Blob spans base..base+0.09; the medoid is near the middle.
            assert!(
                (val - (blob_base + 0.04)).abs() <= 0.011,
                "center {val} not at blob medoid"
            );
        }
        // Refinement never increases the assignment distance sum.
        let before: f64 = c.distances.iter().sum();
        let after: f64 = refined.distances.iter().sum();
        assert!(after <= before + 1e-9);
    }

    #[test]
    fn assign_picks_nearest_center() {
        let centers = vec![0.0, 10.0];
        let items = vec![1.0, 9.0, 4.9, 5.1];
        let a = assign(&items, &centers, d1);
        assert_eq!(a, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn rejects_empty_input() {
        let items: Vec<f64> = vec![];
        let _ = k_centers(&items, 3, 0, d1);
    }

    #[test]
    fn kcenters_radius_shrinks_with_k() {
        let items: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let r2 = k_centers(&items, 2, 0, d1).max_radius();
        let r10 = k_centers(&items, 10, 0, d1).max_radius();
        let r50 = k_centers(&items, 50, 0, d1).max_radius();
        assert!(r2 > r10 && r10 > r50);
    }

    #[test]
    fn nearest_center_matches_assign() {
        let centers = vec![0.0, 10.0];
        for (item, want) in [(1.0, 0), (9.0, 1), (4.9, 0), (5.1, 1)] {
            let (c, d) = nearest_center(&item, &centers, d1);
            assert_eq!(c, want);
            assert!((d - d1(&item, &centers[c])).abs() < 1e-12);
        }
    }

    #[test]
    fn minibatch_update_converges_to_member_mean() {
        use mdsim::v3;
        // A two-particle "conformation"; members scatter around a mean
        // displaced from the initial center. Repeated updates with
        // count = 1, 2, 3, … compute exactly the running mean (after
        // superposition, which is near-identity here).
        let mut center = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let members: Vec<Vec<mdsim::Vec3>> = (0..20)
            .map(|i| {
                let eps = 0.01 * ((i % 5) as f64 - 2.0);
                vec![v3(0.5 + eps, 0.0, 0.0), v3(1.5 - eps, 0.0, 0.0)]
            })
            .collect();
        for (i, m) in members.iter().enumerate() {
            minibatch_center_update(&mut center, m, (i + 1) as f64);
        }
        // Mean member has particles at x = 0.5 and 1.5; superposition
        // removes the common translation so only the relative geometry
        // (bond length 1.0, same as the start) is preserved.
        let bond = (center[1] - center[0]).norm();
        assert!((bond - 1.0).abs() < 0.05, "bond drifted to {bond}");
    }

    #[test]
    fn minibatch_large_count_barely_moves_center() {
        use mdsim::v3;
        let orig = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let mut center = orig.clone();
        let member = vec![v3(0.0, 0.0, 0.0), v3(2.0, 0.0, 0.0)];
        minibatch_center_update(&mut center, &member, 1000.0);
        let moved: f64 = center
            .iter()
            .zip(&orig)
            .map(|(a, b)| (*a - *b).norm())
            .sum();
        assert!(moved < 0.01, "center moved {moved} at count 1000");
    }
}
