//! Time-lagged independent component analysis (TICA).
//!
//! The msmbuilder-era dimensionality reduction that followed the paper:
//! find the linear combinations of input features whose autocorrelation
//! at lag τ is maximal — the slow collective coordinates. Solves the
//! generalized eigenproblem `C(τ) v = λ C(0) v` by whitening with the
//! instantaneous covariance and diagonalizing the symmetrized lagged
//! covariance (both via the small dense Jacobi solver).

use crate::linalg::jacobi_eigen_sym;

/// A fitted TICA model.
#[derive(Debug, Clone)]
pub struct Tica {
    /// Feature means (length d).
    pub mean: Vec<f64>,
    /// Projection matrix, one row per component (each length d), sorted
    /// by descending autocorrelation.
    pub components: Vec<Vec<f64>>,
    /// Autocorrelations (eigenvalues) per component, in [-1, 1] up to
    /// estimation noise.
    pub autocorrelations: Vec<f64>,
    /// Lag used for the fit, in frames.
    pub lag: usize,
}

impl Tica {
    /// Fit on feature trajectories: `trajs[k][t]` is the feature vector
    /// of frame `t` in trajectory `k`. Keeps `n_components` components.
    pub fn fit(trajs: &[Vec<Vec<f64>>], lag: usize, n_components: usize) -> Tica {
        assert!(lag >= 1, "lag must be at least one frame");
        let d = trajs
            .iter()
            .flat_map(|t| t.iter())
            .map(|f| f.len())
            .next()
            .expect("no frames to fit TICA on");
        assert!(
            trajs.iter().flat_map(|t| t.iter()).all(|f| f.len() == d),
            "inconsistent feature dimension"
        );
        let n_components = n_components.min(d);

        // Mean over all frames that participate in lagged pairs (use all
        // frames: simpler and consistent for long trajectories).
        let mut mean = vec![0.0; d];
        let mut count = 0.0;
        for t in trajs {
            for f in t {
                for (m, &x) in mean.iter_mut().zip(f) {
                    *m += x;
                }
                count += 1.0;
            }
        }
        assert!(count > 0.0);
        for m in mean.iter_mut() {
            *m /= count;
        }

        // Instantaneous covariance C0 and symmetrized lagged covariance Ct.
        let mut c0 = vec![vec![0.0; d]; d];
        let mut ct = vec![vec![0.0; d]; d];
        let mut pairs = 0.0;
        for t in trajs {
            for w in 0..t.len().saturating_sub(lag) {
                let a: Vec<f64> = t[w].iter().zip(&mean).map(|(x, m)| x - m).collect();
                let b: Vec<f64> = t[w + lag].iter().zip(&mean).map(|(x, m)| x - m).collect();
                for i in 0..d {
                    for j in 0..d {
                        // Symmetrized estimates (reversible dynamics).
                        c0[i][j] += 0.5 * (a[i] * a[j] + b[i] * b[j]);
                        ct[i][j] += 0.5 * (a[i] * b[j] + b[i] * a[j]);
                    }
                }
                pairs += 1.0;
            }
        }
        assert!(pairs > 0.0, "trajectories shorter than the lag");
        for i in 0..d {
            for j in 0..d {
                c0[i][j] /= pairs;
                ct[i][j] /= pairs;
            }
        }

        // Whiten: C0 = U S Uᵀ → W = S^{-1/2} Uᵀ. Small regularization for
        // near-singular feature sets.
        let (s_vals, u_vecs) = jacobi_eigen_sym(&c0);
        let eps = 1e-10 * s_vals.first().copied().unwrap_or(1.0).max(1e-30);
        let mut whiten: Vec<Vec<f64>> = Vec::new(); // rows: whitened directions
        for (sv, uv) in s_vals.iter().zip(&u_vecs) {
            if *sv > eps {
                let inv_sqrt = 1.0 / sv.sqrt();
                whiten.push(uv.iter().map(|x| x * inv_sqrt).collect());
            }
        }
        let r = whiten.len(); // effective rank

        // M = W Ct Wᵀ (r × r), symmetric.
        let mut m = vec![vec![0.0; r]; r];
        for a in 0..r {
            for b in 0..r {
                let mut acc = 0.0;
                for i in 0..d {
                    for j in 0..d {
                        acc += whiten[a][i] * ct[i][j] * whiten[b][j];
                    }
                }
                m[a][b] = acc;
            }
        }
        let (lambdas, m_vecs) = jacobi_eigen_sym(&m);

        // Back-transform: component rows are vᵀ W.
        let mut components = Vec::with_capacity(n_components);
        let mut autocorrelations = Vec::with_capacity(n_components);
        for (lambda, mv) in lambdas.iter().zip(&m_vecs).take(n_components) {
            let mut row = vec![0.0; d];
            for (coef, wrow) in mv.iter().zip(&whiten) {
                for (x, w) in row.iter_mut().zip(wrow) {
                    *x += coef * w;
                }
            }
            components.push(row);
            autocorrelations.push(*lambda);
        }

        Tica {
            mean,
            components,
            autocorrelations,
            lag,
        }
    }

    /// Number of kept components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Project one feature vector onto the TICA components.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.mean.len());
        self.components
            .iter()
            .map(|row| {
                row.iter()
                    .zip(features)
                    .zip(&self.mean)
                    .map(|((w, x), m)| w * (x - m))
                    .sum()
            })
            .collect()
    }

    /// Project a whole trajectory.
    pub fn transform_trajectory(&self, traj: &[Vec<f64>]) -> Vec<Vec<f64>> {
        traj.iter().map(|f| self.transform(f)).collect()
    }

    /// Implied timescales of the components at the fit lag (frames).
    pub fn timescales(&self) -> Vec<f64> {
        self.autocorrelations
            .iter()
            .map(|&l| {
                if l >= 1.0 {
                    f64::INFINITY
                } else if l <= 0.0 {
                    0.0
                } else {
                    -(self.lag as f64) / l.ln()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::rng::{rng_from_seed, sample_normal};

    /// Synthetic data: feature 0 is a slow OU process, feature 1 fast,
    /// feature 2 pure noise, plus a mixing rotation.
    fn make_data(seed: u64, mix: bool) -> Vec<Vec<Vec<f64>>> {
        let mut rng = rng_from_seed(seed);
        let mut trajs = Vec::new();
        for _ in 0..4 {
            let mut slow: f64 = 0.0;
            let mut fast: f64 = 0.0;
            let mut frames = Vec::with_capacity(3000);
            for _ in 0..3000 {
                slow = 0.995 * slow + 0.1 * sample_normal(&mut rng);
                fast = 0.5 * fast + 0.5 * sample_normal(&mut rng);
                let noise = sample_normal(&mut rng);
                let f = if mix {
                    vec![
                        0.8 * slow + 0.3 * fast + 0.1 * noise,
                        -0.4 * slow + 0.7 * fast,
                        0.2 * fast + 0.9 * noise,
                    ]
                } else {
                    vec![slow, fast, noise]
                };
                frames.push(f);
            }
            trajs.push(frames);
        }
        trajs
    }

    #[test]
    fn identifies_the_slow_coordinate() {
        let trajs = make_data(1, false);
        let tica = Tica::fit(&trajs, 10, 3);
        assert_eq!(tica.n_components(), 3);
        // First autocorrelation ≈ 0.995^10 ≈ 0.95; the others tiny.
        assert!(
            tica.autocorrelations[0] > 0.85,
            "slow mode autocorrelation {}",
            tica.autocorrelations[0]
        );
        assert!(tica.autocorrelations[1] < 0.3);
        // The first component points along feature 0.
        let c = &tica.components[0];
        let norm: f64 = c.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            c[0].abs() / norm > 0.95,
            "component not aligned with the slow feature: {c:?}"
        );
    }

    #[test]
    fn unmixes_rotated_features() {
        let trajs = make_data(2, true);
        let tica = Tica::fit(&trajs, 10, 2);
        // Project data; the first TICA coordinate must track the hidden
        // slow process far better than any raw feature does. Proxy check:
        // its lag-10 autocorrelation is high.
        assert!(
            tica.autocorrelations[0] > 0.8,
            "slow mode not recovered: {:?}",
            tica.autocorrelations
        );
        // Ordering is descending.
        assert!(tica.autocorrelations[0] >= tica.autocorrelations[1]);
    }

    #[test]
    fn transform_is_mean_free_and_consistent() {
        let trajs = make_data(3, true);
        let tica = Tica::fit(&trajs, 5, 2);
        let projected: Vec<Vec<f64>> = trajs
            .iter()
            .flat_map(|t| tica.transform_trajectory(t))
            .collect();
        let n = projected.len() as f64;
        for k in 0..2 {
            let mean: f64 = projected.iter().map(|p| p[k]).sum::<f64>() / n;
            assert!(mean.abs() < 0.05, "component {k} not mean-free: {mean}");
        }
        // Whitening: unit variance of the projections (up to sampling
        // noise and the symmetrized estimator's bias).
        let var0: f64 = projected.iter().map(|p| p[0] * p[0]).sum::<f64>() / n;
        assert!((var0 - 1.0).abs() < 0.2, "projection variance {var0}");
    }

    #[test]
    fn timescales_are_ordered() {
        let trajs = make_data(4, false);
        let tica = Tica::fit(&trajs, 10, 3);
        let ts = tica.timescales();
        assert!(ts[0] > ts[1]);
        assert!(ts[0] > 50.0, "slow timescale {:.1} frames", ts[0]);
    }

    #[test]
    #[should_panic(expected = "lag")]
    fn rejects_zero_lag() {
        let trajs = make_data(5, false);
        let _ = Tica::fit(&trajs, 0, 2);
    }

    #[test]
    fn handles_degenerate_features() {
        // A constant feature (zero variance) must not break the fit.
        let mut trajs = make_data(6, false);
        for t in trajs.iter_mut() {
            for f in t.iter_mut() {
                f.push(42.0);
            }
        }
        let tica = Tica::fit(&trajs, 10, 4);
        assert!(tica.n_components() <= 4);
        assert!(tica.autocorrelations[0] > 0.85);
    }
}
