//! Bootstrap error estimation over trajectories.
//!
//! §2 of the paper: projects run *"until the project finishes — for
//! example when the standard error estimate of the output result has
//! reached a user-specified minimum value."* The natural resampling unit
//! for MSM observables is the trajectory (frames within one trajectory
//! are correlated); this module resamples trajectories with replacement,
//! re-estimates the transition matrix with fixed state definitions, and
//! reports the spread of any derived observable.

use crate::connectivity::largest_connected_set;
use crate::counts::CountMatrix;
use crate::tmatrix::TransitionMatrix;
use mdsim::rng::{rng_from_seed, SimRng};
use rand::Rng;

/// Mean and standard error of a bootstrapped statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapEstimate {
    pub mean: f64,
    pub std_err: f64,
    pub n_resamples: usize,
}

/// Generic trajectory bootstrap: `statistic` receives a resampled list
/// of trajectory indices (with replacement) and returns an observable;
/// the spread over `n_resamples` resamples is its standard error.
pub fn bootstrap_over_trajectories(
    n_trajectories: usize,
    n_resamples: usize,
    seed: u64,
    mut statistic: impl FnMut(&[usize]) -> f64,
) -> BootstrapEstimate {
    assert!(n_trajectories > 0, "nothing to resample");
    assert!(n_resamples >= 2, "need at least two resamples");
    let mut rng: SimRng = rng_from_seed(seed);
    let mut values = Vec::with_capacity(n_resamples);
    let mut picks = vec![0usize; n_trajectories];
    for _ in 0..n_resamples {
        for p in picks.iter_mut() {
            *p = rng.random_range(0..n_trajectories);
        }
        values.push(statistic(&picks));
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    BootstrapEstimate {
        mean,
        std_err: var.sqrt(),
        n_resamples,
    }
}

/// Bootstrap standard error of an equilibrium subset population:
/// trajectories are resampled, transition counts re-accumulated at the
/// given lag with fixed state definitions, the reversible MLE refit, and
/// the stationary mass of `subset` (original state ids) summed over the
/// resample's largest connected set.
pub fn bootstrap_subset_population(
    dtrajs: &[Vec<usize>],
    n_states: usize,
    lag: usize,
    subset: &[usize],
    n_resamples: usize,
    seed: u64,
) -> BootstrapEstimate {
    bootstrap_over_trajectories(dtrajs.len(), n_resamples, seed, |picks| {
        let sample: Vec<Vec<usize>> = picks.iter().map(|&i| dtrajs[i].clone()).collect();
        let counts = CountMatrix::from_dtrajs(&sample, n_states, lag);
        let active = largest_connected_set(&counts);
        if active.is_empty() {
            return 0.0;
        }
        let t = TransitionMatrix::reversible_mle(&counts.restrict(&active), 1e-6, 5_000);
        let pi = t.stationary(1e-10, 100_000);
        subset
            .iter()
            .filter_map(|s| active.binary_search(s).ok())
            .map(|k| pi[k])
            .sum::<f64>()
            .max(0.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::rng::sample_normal;

    #[test]
    fn bootstrap_of_the_mean_matches_analytic_se() {
        // Statistic: mean of per-trajectory values. With n iid values of
        // variance σ², the SE of the mean is σ/√n.
        let n = 100;
        let mut rng = rng_from_seed(7);
        let values: Vec<f64> = (0..n).map(|_| 2.0 * sample_normal(&mut rng)).collect();
        let est = bootstrap_over_trajectories(n, 400, 3, |picks| {
            picks.iter().map(|&i| values[i]).sum::<f64>() / picks.len() as f64
        });
        let analytic = 2.0 / (n as f64).sqrt();
        assert!(
            (est.std_err - analytic).abs() < 0.4 * analytic,
            "bootstrap SE {} vs analytic {analytic}",
            est.std_err
        );
        assert_eq!(est.n_resamples, 400);
    }

    #[test]
    fn deterministic_per_seed() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let f = |picks: &[usize]| picks.iter().map(|&i| vals[i]).sum::<f64>();
        let a = bootstrap_over_trajectories(4, 50, 11, f);
        let b = bootstrap_over_trajectories(4, 50, 11, f);
        assert_eq!(a, b);
        let c = bootstrap_over_trajectories(4, 50, 12, f);
        assert_ne!(a, c);
    }

    #[test]
    fn subset_population_error_shrinks_with_more_data() {
        // Two-state chain; estimate the population of state 1 with few vs
        // many trajectories.
        let make_dtrajs = |n_traj: usize, len: usize, seed: u64| -> Vec<Vec<usize>> {
            let mut rng = rng_from_seed(seed);
            (0..n_traj)
                .map(|_| {
                    let mut s = 0usize;
                    (0..len)
                        .map(|_| {
                            let u: f64 = rng.random();
                            s = match (s, u) {
                                (0, u) if u < 0.1 => 1,
                                (1, u) if u < 0.05 => 0,
                                (s, _) => s,
                            };
                            s
                        })
                        .collect()
                })
                .collect()
        };
        let few = make_dtrajs(5, 200, 1);
        let many = make_dtrajs(40, 200, 2);
        let est_few = bootstrap_subset_population(&few, 2, 1, &[1], 60, 5);
        let est_many = bootstrap_subset_population(&many, 2, 1, &[1], 60, 5);
        // π1 = (0.1)/(0.1+0.05) = 2/3.
        assert!(
            (est_many.mean - 2.0 / 3.0).abs() < 0.1,
            "mean {}",
            est_many.mean
        );
        assert!(
            est_many.std_err < est_few.std_err,
            "more data must shrink the error: few {} vs many {}",
            est_few.std_err,
            est_many.std_err
        );
    }

    #[test]
    #[should_panic(expected = "resample")]
    fn rejects_empty_input() {
        let _ = bootstrap_over_trajectories(0, 10, 1, |_| 0.0);
    }
}
