//! Small dense linear algebra: symmetric Jacobi eigensolver and a 3×3
//! matrix type, used by the Kabsch/Horn superposition code.

use mdsim::vec3::Vec3;

/// Row-major 3×3 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3(pub [[f64; 3]; 3]);

impl Mat3 {
    pub const IDENTITY: Mat3 = Mat3([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);

    pub fn zeros() -> Mat3 {
        Mat3([[0.0; 3]; 3])
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.0[0][0] * v.x + self.0[0][1] * v.y + self.0[0][2] * v.z,
            self.0[1][0] * v.x + self.0[1][1] * v.y + self.0[1][2] * v.z,
            self.0[2][0] * v.x + self.0[2][1] * v.y + self.0[2][2] * v.z,
        )
    }

    pub fn transpose(&self) -> Mat3 {
        let m = &self.0;
        Mat3([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    pub fn mul(&self, o: &Mat3) -> Mat3 {
        let mut r = Mat3::zeros();
        for i in 0..3 {
            for j in 0..3 {
                for (k, ok) in o.0.iter().enumerate() {
                    r.0[i][j] += self.0[i][k] * ok[j];
                }
            }
        }
        r
    }

    pub fn det(&self) -> f64 {
        let m = &self.0;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Rotation matrix from a unit quaternion (w, x, y, z).
    pub fn from_quaternion(q: [f64; 4]) -> Mat3 {
        let [w, x, y, z] = q;
        Mat3([
            [
                w * w + x * x - y * y - z * z,
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                w * w - x * x + y * y - z * z,
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                w * w - x * x - y * y + z * z,
            ],
        ])
    }
}

/// Eigen-decomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as columns,
/// sorted by descending eigenvalue. Intended for tiny matrices (the 4×4
/// quaternion matrix of Horn's method); complexity is O(n³) per sweep.
pub fn jacobi_eigen_sym(matrix: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = matrix.len();
    for row in matrix {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    for _sweep in 0..100 {
        let mut off: f64 = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-18 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for vk in v.iter_mut() {
                    let vp = vk[p];
                    let vq = vk[q];
                    vk[p] = c * vp - s * vq;
                    vk[q] = s * vp + c * vq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[j][j].partial_cmp(&a[i][i]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    (eigenvalues, eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::vec3::v3;

    #[test]
    fn identity_and_products() {
        let m = Mat3([[1.0, 2.0, 0.0], [0.0, 1.0, 3.0], [4.0, 0.0, 1.0]]);
        let i = Mat3::IDENTITY;
        assert_eq!(m.mul(&i), m);
        assert_eq!(i.mul(&m), m);
        assert_eq!(i.mul_vec(v3(1.0, 2.0, 3.0)), v3(1.0, 2.0, 3.0));
    }

    #[test]
    fn determinant() {
        assert_eq!(Mat3::IDENTITY.det(), 1.0);
        let swap = Mat3([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]);
        assert_eq!(swap.det(), -1.0);
    }

    #[test]
    fn quaternion_rotation_is_orthonormal() {
        // 90° about z: q = (cos45, 0, 0, sin45).
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let r = Mat3::from_quaternion([s, 0.0, 0.0, s]);
        let rx = r.mul_vec(v3(1.0, 0.0, 0.0));
        assert!((rx - v3(0.0, 1.0, 0.0)).norm() < 1e-12);
        assert!((r.det() - 1.0).abs() < 1e-12);
        let rtr = r.transpose().mul(&r);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((rtr.0[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, vecs) = jacobi_eigen_sym(&m);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 1.0).abs() < 1e-12);
        // First eigenvector is e_x (up to sign).
        assert!(vecs[0][0].abs() > 0.999);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, vecs) = jacobi_eigen_sym(&m);
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        // Eigenvector for 3 is (1,1)/√2.
        assert!((vecs[0][0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let m = vec![
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.5],
            vec![-2.0, 0.0, 5.0, 1.0],
            vec![0.5, 1.5, 1.0, 2.0],
        ];
        let (vals, vecs) = jacobi_eigen_sym(&m);
        // Check A v = λ v for every pair.
        for (lambda, vec_) in vals.iter().zip(&vecs) {
            for i in 0..4 {
                let av: f64 = (0..4).map(|j| m[i][j] * vec_[j]).sum();
                assert!(
                    (av - lambda * vec_[i]).abs() < 1e-9,
                    "eigenpair violated: λ={lambda}"
                );
            }
        }
        // Trace preserved.
        let trace: f64 = vals.iter().sum();
        assert!((trace - 14.0).abs() < 1e-9);
    }
}
