//! Transition probability matrices: estimation, propagation, spectra.
//!
//! Implements Eq. (1) of the paper, `p(t+τ) = p(t) T(τ)`, the stationary
//! distribution used for blind native-state prediction, and the implied
//! timescales used for the Markovian lag-time sensitivity analysis.

use crate::counts::CountMatrix;
use serde::{Deserialize, Serialize};

/// Dense row-stochastic transition matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    n: usize,
    data: Vec<f64>,
}

impl TransitionMatrix {
    /// Maximum-likelihood (non-reversible) estimator: row-normalized
    /// counts with an optional uniform pseudocount prior. Rows with no
    /// observations become self-loops.
    pub fn from_counts(counts: &CountMatrix, prior: f64) -> Self {
        let c = if prior > 0.0 {
            counts.with_prior(prior)
        } else {
            counts.clone()
        };
        Self::normalize(&c)
    }

    /// Naive reversible estimator via symmetrized counts `(C + Cᵀ)/2`.
    /// Satisfies detailed balance, but its stationary distribution equals
    /// the raw visitation frequency — biased whenever sampling is not yet
    /// equilibrated (the entire point of adaptive sampling). Prefer
    /// [`TransitionMatrix::reversible_mle`] for analysis.
    pub fn reversible_from_counts(counts: &CountMatrix, prior: f64) -> Self {
        let sym = counts.symmetrized().with_prior(prior);
        Self::normalize(&sym)
    }

    /// Maximum-likelihood reversible estimator (the self-consistent
    /// iteration of Bowman et al., J. Chem. Phys. 131:124101 (2009) — the
    /// paper's ref. \[2\]):
    ///
    /// `x_ij ← (c_ij + c_ji) / (c_i/x_i + c_j/x_j)`,
    ///
    /// iterated to convergence with `x_i = Σ_j x_ij` and fixed row counts
    /// `c_i = Σ_j c_ij`. Unlike the naive symmetrized estimator, the
    /// stationary distribution `π_i = x_i/Σx` is a genuine equilibrium
    /// estimate, which is what makes blind native-state prediction from
    /// non-equilibrium adaptive sampling possible. Requires counts
    /// restricted to a strongly connected set.
    pub fn reversible_mle(counts: &CountMatrix, prior: f64, max_iter: usize) -> Self {
        let c = if prior > 0.0 {
            counts.with_prior(prior)
        } else {
            counts.clone()
        };
        let n = c.n_states();
        let c_row: Vec<f64> = (0..n).map(|i| c.row_sum(i)).collect();
        // Initialize with the symmetrized counts.
        let mut x: Vec<f64> = (0..n * n)
            .map(|idx| {
                let (i, j) = (idx / n, idx % n);
                c.get(i, j) + c.get(j, i)
            })
            .collect();
        let mut x_row: Vec<f64> = (0..n).map(|i| x[i * n..(i + 1) * n].iter().sum()).collect();

        for _ in 0..max_iter {
            let mut max_rel_change: f64 = 0.0;
            let mut new_x = vec![0.0; n * n];
            for i in 0..n {
                for j in i..n {
                    let c_sym = c.get(i, j) + c.get(j, i);
                    if c_sym == 0.0 {
                        continue;
                    }
                    let denom = c_row[i] / x_row[i].max(1e-300) + c_row[j] / x_row[j].max(1e-300);
                    let v = c_sym / denom;
                    new_x[i * n + j] = v;
                    new_x[j * n + i] = v;
                    let old = x[i * n + j];
                    if old > 0.0 {
                        max_rel_change = max_rel_change.max((v - old).abs() / old);
                    }
                }
            }
            x = new_x;
            x_row = (0..n).map(|i| x[i * n..(i + 1) * n].iter().sum()).collect();
            if max_rel_change < 1e-10 {
                break;
            }
        }

        let mut data = vec![0.0; n * n];
        for i in 0..n {
            if x_row[i] > 0.0 {
                for j in 0..n {
                    data[i * n + j] = x[i * n + j] / x_row[i];
                }
            } else {
                data[i * n + i] = 1.0;
            }
        }
        TransitionMatrix { n, data }
    }

    fn normalize(c: &CountMatrix) -> Self {
        let n = c.n_states();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            let s = c.row_sum(i);
            if s > 0.0 {
                for j in 0..n {
                    data[i * n + j] = c.get(i, j) / s;
                }
            } else {
                data[i * n + i] = 1.0; // absorbing self-loop for empty rows
            }
        }
        TransitionMatrix { n, data }
    }

    /// Build directly from row data (rows must be non-negative; they are
    /// normalized here).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            let s: f64 = row.iter().sum();
            assert!(s > 0.0, "row {i} sums to zero");
            for &x in row {
                assert!(x >= 0.0, "negative probability in row {i}");
                data.push(x / s);
            }
        }
        TransitionMatrix { n, data }
    }

    pub fn n_states(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Verify row-stochasticity within `tol`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.n).all(|i| {
            let s: f64 = self.row(i).iter().sum();
            (s - 1.0).abs() <= tol && self.row(i).iter().all(|&x| x >= -tol)
        })
    }

    /// One Chapman-Kolmogorov step: `p' = p T`.
    pub fn propagate(&self, p: &[f64]) -> Vec<f64> {
        assert_eq!(p.len(), self.n, "distribution length mismatch");
        let mut out = vec![0.0; self.n];
        for (i, &pi) in p.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &tij) in out.iter_mut().zip(row) {
                *o += pi * tij;
            }
        }
        out
    }

    /// Stationary distribution by power iteration of `pT` from uniform.
    /// Converges for irreducible aperiodic chains; returns when the L1
    /// change drops below `tol` or after `max_iter` steps.
    pub fn stationary(&self, tol: f64, max_iter: usize) -> Vec<f64> {
        let mut p = vec![1.0 / self.n as f64; self.n];
        for _ in 0..max_iter {
            let q = self.propagate(&p);
            let delta: f64 = q.iter().zip(&p).map(|(a, b)| (a - b).abs()).sum();
            p = q;
            if delta < tol {
                break;
            }
        }
        // Normalize against drift.
        let s: f64 = p.iter().sum();
        for x in p.iter_mut() {
            *x /= s;
        }
        p
    }

    /// Top-`k` eigenpairs of a *reversible* transition matrix: like
    /// [`TransitionMatrix::eigenvalues_reversible`] but also returning
    /// the right eigenvectors of T (recovered from the symmetrized form
    /// as `ψ = D^{-1/2} v`). Eigenvectors are the input to PCCA-style
    /// macrostate lumping.
    pub fn eigen_reversible(&self, k: usize, stationary: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
        let (vals, sym_vecs) = self.eigen_symmetrized(k, stationary);
        let sqrt_pi: Vec<f64> = stationary.iter().map(|&x| x.max(1e-300).sqrt()).collect();
        let right: Vec<Vec<f64>> = sym_vecs
            .into_iter()
            .map(|v| v.iter().zip(&sqrt_pi).map(|(x, s)| x / s).collect())
            .collect();
        (vals, right)
    }

    /// Top-`k` eigenvalues of a *reversible* transition matrix, via
    /// deflated power iteration on the symmetrized form
    /// `S = D^{1/2} T D^{-1/2}` (D = diag π), whose spectrum equals T's
    /// and whose eigenvectors are orthogonal.
    ///
    /// Returns eigenvalues in descending order, starting with λ₀ = 1.
    pub fn eigenvalues_reversible(&self, k: usize, stationary: &[f64]) -> Vec<f64> {
        self.eigen_symmetrized(k, stationary).0
    }

    fn eigen_symmetrized(&self, k: usize, stationary: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
        assert_eq!(stationary.len(), self.n);
        let n = self.n;
        let k = k.min(n);
        // S_ij = sqrt(pi_i / pi_j) T_ij.
        let sqrt_pi: Vec<f64> = stationary.iter().map(|&x| x.max(1e-300).sqrt()).collect();
        let s_mat: Vec<f64> = (0..n * n)
            .map(|idx| {
                let (i, j) = (idx / n, idx % n);
                self.data[idx] * sqrt_pi[i] / sqrt_pi[j]
            })
            .collect();
        let mul = |v: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; n];
            for i in 0..n {
                let row = &s_mat[i * n..(i + 1) * n];
                out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
            }
            out
        };

        let mut eigenvalues = Vec::with_capacity(k);
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(k);
        for m in 0..k {
            // Deterministic, reproducible start vector.
            let mut v: Vec<f64> = (0..n)
                .map(|i| 1.0 + ((i * 2654435761 + m * 40503) % 1000) as f64 / 1000.0)
                .collect();
            orthogonalize(&mut v, &basis);
            let mut lambda = 0.0;
            for _ in 0..5000 {
                let mut w = mul(&v);
                orthogonalize(&mut w, &basis);
                let norm = (w.iter().map(|x| x * x).sum::<f64>()).sqrt();
                if norm < 1e-14 {
                    lambda = 0.0;
                    break;
                }
                for x in w.iter_mut() {
                    *x /= norm;
                }
                let new_lambda: f64 = {
                    let sw = mul(&w);
                    w.iter().zip(&sw).map(|(a, b)| a * b).sum()
                };
                let done = (new_lambda - lambda).abs() < 1e-12;
                lambda = new_lambda;
                v = w;
                if done {
                    break;
                }
            }
            eigenvalues.push(lambda);
            basis.push(v);
        }
        (eigenvalues, basis)
    }
}

fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
        for (x, &bi) in v.iter_mut().zip(b) {
            *x -= dot * bi;
        }
    }
}

/// Implied timescale from an eigenvalue at lag time τ: `t = -τ / ln λ`.
/// Returns `f64::INFINITY` for λ ≥ 1 and `None` for λ ≤ 0 (no physical
/// timescale).
pub fn implied_timescale(lambda: f64, lag_time: f64) -> Option<f64> {
    if lambda >= 1.0 {
        Some(f64::INFINITY)
    } else if lambda <= 0.0 {
        None
    } else {
        Some(-lag_time / lambda.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(a: f64, b: f64) -> TransitionMatrix {
        TransitionMatrix::from_rows(vec![vec![1.0 - a, a], vec![b, 1.0 - b]])
    }

    #[test]
    fn normalization_from_counts() {
        let d = vec![vec![0usize, 0, 1, 0, 0, 1]];
        let c = CountMatrix::from_dtrajs(&d, 2, 1);
        let t = TransitionMatrix::from_counts(&c, 0.0);
        assert!(t.is_row_stochastic(1e-12));
        // From state 0: saw 0→0 twice? dtraj 0,0,1,0,0,1: 0→0, 0→1, 1→0, 0→0, 0→1.
        assert!((t.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((t.get(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_become_self_loops() {
        let c = CountMatrix::zeros(3);
        let t = TransitionMatrix::from_counts(&c, 0.0);
        assert!(t.is_row_stochastic(1e-12));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 2), 1.0);
    }

    #[test]
    fn reversible_mle_satisfies_detailed_balance() {
        let d = vec![vec![0usize, 1, 1, 2, 1, 0, 1, 2, 2, 1, 0, 1]];
        let c = CountMatrix::from_dtrajs(&d, 3, 1);
        let t = TransitionMatrix::reversible_mle(&c, 0.0, 10_000);
        assert!(t.is_row_stochastic(1e-9));
        let pi = t.stationary(1e-14, 200_000);
        for i in 0..3 {
            for j in 0..3 {
                let flux_ij = pi[i] * t.get(i, j);
                let flux_ji = pi[j] * t.get(j, i);
                assert!(
                    (flux_ij - flux_ji).abs() < 1e-8,
                    "detailed balance violated at ({i},{j}): {flux_ij} vs {flux_ji}"
                );
            }
        }
    }

    #[test]
    fn reversible_mle_unbiases_stationary_distribution() {
        // Downhill sampling: trajectories start in state 0, flow to state
        // 1 and mostly stay. Visitation is split ~50/50, but the dynamics
        // say state 1 is far more stable (it is rarely left). The naive
        // symmetrized estimator pins π to visitation; the MLE must not.
        let mut c = CountMatrix::zeros(2);
        c.add(0, 0, 30.0);
        c.add(0, 1, 10.0); // leaving 0 is easy
        c.add(1, 1, 39.0);
        c.add(1, 0, 1.0); // leaving 1 is rare
        let naive = TransitionMatrix::reversible_from_counts(&c, 0.0);
        let mle = TransitionMatrix::reversible_mle(&c, 0.0, 10_000);
        let pi_naive = naive.stationary(1e-14, 200_000);
        let pi_mle = mle.stationary(1e-14, 200_000);
        // Both states sampled ~40 counts: the naive estimator's π tracks
        // (symmetrized) visitation, staying near 1/2.
        assert!(
            (pi_naive[1] - 0.5).abs() < 0.1,
            "naive π1 = {}",
            pi_naive[1]
        );
        // The MLE recognises state 1 as the deep well.
        assert!(
            pi_mle[1] > 0.75,
            "MLE should concentrate on the stable state, π1 = {}",
            pi_mle[1]
        );
    }

    #[test]
    fn reversible_mle_matches_naive_for_equilibrium_data() {
        // For data that already satisfies detailed balance in counts, the
        // MLE and the symmetrized estimator agree.
        let mut c = CountMatrix::zeros(2);
        c.add(0, 0, 80.0);
        c.add(0, 1, 20.0);
        c.add(1, 0, 20.0);
        c.add(1, 1, 80.0);
        let naive = TransitionMatrix::reversible_from_counts(&c, 0.0);
        let mle = TransitionMatrix::reversible_mle(&c, 0.0, 10_000);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (naive.get(i, j) - mle.get(i, j)).abs() < 1e-8,
                    "estimators disagree at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn reversible_estimator_satisfies_detailed_balance() {
        let d = vec![vec![0usize, 1, 1, 2, 1, 0, 1, 2, 2, 1]];
        let c = CountMatrix::from_dtrajs(&d, 3, 1);
        let t = TransitionMatrix::reversible_from_counts(&c, 0.01);
        let pi = t.stationary(1e-14, 100_000);
        for i in 0..3 {
            for j in 0..3 {
                let flux_ij = pi[i] * t.get(i, j);
                let flux_ji = pi[j] * t.get(j, i);
                assert!(
                    (flux_ij - flux_ji).abs() < 1e-9,
                    "detailed balance violated at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn propagation_conserves_probability() {
        let t = two_state(0.3, 0.1);
        let mut p = vec![1.0, 0.0];
        for _ in 0..50 {
            p = t.propagate(&p);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_state_stationary_analytic() {
        // π = (b, a)/(a+b) for rates a: 0→1 and b: 1→0.
        let t = two_state(0.3, 0.1);
        let pi = t.stationary(1e-15, 100_000);
        assert!((pi[0] - 0.25).abs() < 1e-9, "π0 = {}", pi[0]);
        assert!((pi[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn two_state_eigenvalues_analytic() {
        // Eigenvalues are 1 and 1 - a - b.
        let t = two_state(0.3, 0.1);
        let pi = t.stationary(1e-15, 100_000);
        let ev = t.eigenvalues_reversible(2, &pi);
        assert!((ev[0] - 1.0).abs() < 1e-9, "λ0 = {}", ev[0]);
        assert!((ev[1] - 0.6).abs() < 1e-9, "λ1 = {}", ev[1]);
    }

    #[test]
    fn implied_timescales() {
        assert_eq!(implied_timescale(1.0, 25.0), Some(f64::INFINITY));
        assert_eq!(implied_timescale(-0.1, 25.0), None);
        let t = implied_timescale(0.6, 25.0).unwrap();
        assert!((t - (-25.0 / 0.6f64.ln())).abs() < 1e-12);
        // Slower process (λ closer to 1) → longer timescale.
        assert!(implied_timescale(0.9, 25.0).unwrap() > t);
    }

    #[test]
    fn three_state_chain_spectrum() {
        // Symmetric nearest-neighbour chain: analytically known spectrum.
        let t = TransitionMatrix::from_rows(vec![
            vec![0.8, 0.2, 0.0],
            vec![0.2, 0.6, 0.2],
            vec![0.0, 0.2, 0.8],
        ]);
        let pi = t.stationary(1e-15, 100_000);
        // Uniform stationary distribution by symmetry.
        for &x in &pi {
            assert!((x - 1.0 / 3.0).abs() < 1e-8);
        }
        let ev = t.eigenvalues_reversible(3, &pi);
        assert!((ev[0] - 1.0).abs() < 1e-8);
        assert!((ev[1] - 0.8).abs() < 1e-8, "λ1 = {}", ev[1]);
        assert!((ev[2] - 0.4).abs() < 1e-8, "λ2 = {}", ev[2]);
    }

    #[test]
    #[should_panic(expected = "sums to zero")]
    fn from_rows_rejects_zero_rows() {
        let _ = TransitionMatrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn prior_smooths_unvisited_transitions() {
        let d = vec![vec![0usize, 1, 0, 1]];
        let c = CountMatrix::from_dtrajs(&d, 2, 1);
        let t = TransitionMatrix::from_counts(&c, 0.5);
        assert!(t.get(0, 0) > 0.0, "prior should open unseen transitions");
        assert!(t.is_row_stochastic(1e-12));
    }
}
