//! Kinetic analysis on transition matrices: committor probabilities and
//! mean first-passage times.
//!
//! §3.2 of the paper: *"an important strength of a converged kinetic
//! model is that it allows prediction not only of the equilibrium
//! distribution of states but also folding rates, mechanism, and any
//! kinetic or thermodynamic quantities"*. The forward committor
//! q⁺(i) — the probability of reaching the folded set before the
//! unfolded set from state i — is the standard mechanism coordinate; the
//! mean first-passage time to the folded set gives the rate.

use crate::tmatrix::TransitionMatrix;

/// Forward committor q⁺: probability of reaching `target` before
/// `source`, from each state. Boundary conditions `q⁺ = 0` on `source`,
/// `q⁺ = 1` on `target`; in between, `q⁺(i) = Σ_j T_ij q⁺(j)`. Solved by
/// Gauss-Seidel iteration (diagonally dominant for lag-time chains).
pub fn forward_committor(t: &TransitionMatrix, source: &[usize], target: &[usize]) -> Vec<f64> {
    let n = t.n_states();
    validate_sets(n, source, target);
    let mut q = vec![0.5; n];
    for &s in source {
        q[s] = 0.0;
    }
    for &s in target {
        q[s] = 1.0;
    }
    let is_boundary = boundary_mask(n, source, target);

    for _ in 0..100_000 {
        let mut max_change: f64 = 0.0;
        for i in 0..n {
            if is_boundary[i] {
                continue;
            }
            // q_i = (Σ_{j≠i} T_ij q_j) / (1 − T_ii).
            let mut acc = 0.0;
            for j in 0..n {
                if j != i {
                    acc += t.get(i, j) * q[j];
                }
            }
            let denom = 1.0 - t.get(i, i);
            let new = if denom > 1e-12 { acc / denom } else { q[i] };
            max_change = max_change.max((new - q[i]).abs());
            q[i] = new;
        }
        if max_change < 1e-12 {
            break;
        }
    }
    q
}

/// Mean first-passage time (in lag-time units) from every state to the
/// `target` set: `m(i) = 0` on the target and
/// `m(i) = 1 + Σ_j T_ij m(j)` elsewhere (Gauss-Seidel).
pub fn mean_first_passage_times(t: &TransitionMatrix, target: &[usize]) -> Vec<f64> {
    let n = t.n_states();
    assert!(!target.is_empty(), "target set must not be empty");
    for &s in target {
        assert!(s < n, "target state out of range");
    }
    let mut in_target = vec![false; n];
    for &s in target {
        in_target[s] = true;
    }
    let mut m = vec![0.0; n];

    for _ in 0..200_000 {
        let mut max_change: f64 = 0.0;
        for i in 0..n {
            if in_target[i] {
                continue;
            }
            let mut acc = 1.0;
            for j in 0..n {
                if j != i {
                    acc += t.get(i, j) * m[j];
                }
            }
            let denom = 1.0 - t.get(i, i);
            let new = if denom > 1e-12 { acc / denom } else { m[i] };
            max_change = max_change.max((new - m[i]).abs());
            m[i] = new;
        }
        if max_change < 1e-10 {
            break;
        }
    }
    m
}

/// Folding rate as the inverse of the π-weighted MFPT from the source
/// set to the target set (in inverse lag-time units).
pub fn folding_rate(
    t: &TransitionMatrix,
    stationary: &[f64],
    source: &[usize],
    target: &[usize],
) -> f64 {
    let m = mean_first_passage_times(t, target);
    let mass: f64 = source.iter().map(|&s| stationary[s]).sum();
    assert!(mass > 0.0, "source set has no stationary mass");
    let mfpt: f64 = source.iter().map(|&s| stationary[s] * m[s]).sum::<f64>() / mass;
    if mfpt > 0.0 {
        1.0 / mfpt
    } else {
        f64::INFINITY
    }
}

fn validate_sets(n: usize, source: &[usize], target: &[usize]) {
    assert!(
        !source.is_empty() && !target.is_empty(),
        "sets must be non-empty"
    );
    for &s in source.iter().chain(target) {
        assert!(s < n, "state {s} out of range");
    }
    for &s in source {
        assert!(!target.contains(&s), "source and target sets overlap");
    }
}

fn boundary_mask(n: usize, source: &[usize], target: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &s in source.iter().chain(target) {
        mask[s] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Symmetric nearest-neighbour random walk on 0..n-1 with hop
    /// probability p each way.
    fn chain(n: usize, p: f64) -> TransitionMatrix {
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            if i > 0 {
                row[i - 1] = p;
            }
            if i < n - 1 {
                row[i + 1] = p;
            }
            row[i] = 1.0 - row.iter().sum::<f64>();
        }
        TransitionMatrix::from_rows(rows)
    }

    #[test]
    fn committor_of_symmetric_walk_is_linear() {
        // Gambler's ruin: q⁺(i) = i/(n−1) between absorbing ends.
        let n = 7;
        let t = chain(n, 0.3);
        let q = forward_committor(&t, &[0], &[n - 1]);
        for (i, &qi) in q.iter().enumerate() {
            let expected = i as f64 / (n - 1) as f64;
            assert!(
                (qi - expected).abs() < 1e-6,
                "q⁺({i}) = {qi}, expected {expected}"
            );
        }
    }

    #[test]
    fn committor_boundaries_are_exact() {
        let t = chain(5, 0.25);
        let q = forward_committor(&t, &[0, 1], &[4]);
        assert_eq!(q[0], 0.0);
        assert_eq!(q[1], 0.0);
        assert_eq!(q[4], 1.0);
        assert!(q[2] > 0.0 && q[2] < q[3]);
    }

    #[test]
    fn mfpt_of_symmetric_walk_matches_analytic() {
        // For a symmetric walk with hop rate p each way, the MFPT from
        // site i to site n−1 is (L² − i²)/(2p) with L = n−1... verify the
        // standard result m(i) = (L(L+... simpler: check against direct
        // linear-solve values for a small chain.
        let t = chain(4, 0.25);
        let m = mean_first_passage_times(&t, &[3]);
        assert_eq!(m[3], 0.0);
        // Solve by hand: m2 = 1 + 0.25 m1 + 0.5 m2 → with symmetry the
        // system gives m = [18, 16, 12] steps… verify via simulation-free
        // consistency: m(i) = 1 + Σ T_ij m(j).
        for i in 0..3 {
            let rhs: f64 = 1.0 + (0..4).map(|j| t.get(i, j) * m[j]).sum::<f64>();
            assert!((m[i] - rhs).abs() < 1e-6, "MFPT equation violated at {i}");
        }
        // Farther from the target takes longer.
        assert!(m[0] > m[1] && m[1] > m[2]);
    }

    #[test]
    fn two_state_rate_matches_transition_probability() {
        // Two states, fold probability a per step, no unfolding: MFPT
        // from 0 to 1 is 1/a, so the rate is a.
        let a = 0.05;
        let t = TransitionMatrix::from_rows(vec![vec![1.0 - a, a], vec![0.0, 1.0]]);
        let m = mean_first_passage_times(&t, &[1]);
        assert!((m[0] - 1.0 / a).abs() < 1e-6, "MFPT {}", m[0]);
        let rate = folding_rate(&t, &[1.0, 0.0], &[0], &[1]);
        assert!((rate - a).abs() < 1e-8);
    }

    #[test]
    fn committor_monotone_along_a_funnel() {
        // Biased walk toward the target: committor increases monotonically
        // and exceeds the unbiased diagonal.
        let n = 6;
        let mut rows = vec![vec![0.0; n]; n];
        for (i, row) in rows.iter_mut().enumerate() {
            if i > 0 {
                row[i - 1] = 0.1;
            }
            if i < n - 1 {
                row[i + 1] = 0.3; // downhill bias
            }
            row[i] = 1.0 - row.iter().sum::<f64>();
        }
        let t = TransitionMatrix::from_rows(rows);
        let q = forward_committor(&t, &[0], &[n - 1]);
        for w in q.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        assert!(
            q[1] > 1.0 / (n - 1) as f64,
            "bias should raise the committor"
        );
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlapping_sets() {
        let t = chain(4, 0.25);
        let _ = forward_committor(&t, &[0, 2], &[2, 3]);
    }
}
