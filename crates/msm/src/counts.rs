//! Transition count matrices from discrete trajectories.

use serde::{Deserialize, Serialize};

/// Dense transition-count matrix. Stored as `f64` so pseudocount priors
/// can be added without a second type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CountMatrix {
    pub fn zeros(n: usize) -> Self {
        CountMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Count transitions at the given lag (in frames) with a sliding
    /// window over every trajectory: every pair `(d[t], d[t+lag])`
    /// contributes one count.
    pub fn from_dtrajs(dtrajs: &[Vec<usize>], n_states: usize, lag: usize) -> Self {
        assert!(lag >= 1, "lag must be at least one frame");
        let mut c = CountMatrix::zeros(n_states);
        for d in dtrajs {
            for t in 0..d.len().saturating_sub(lag) {
                c.add(d[t], d[t + lag], 1.0);
            }
        }
        c
    }

    pub fn n_states(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    #[inline]
    pub fn add(&mut self, i: usize, j: usize, w: f64) {
        assert!(i < self.n && j < self.n, "state index out of range");
        self.data[i * self.n + j] += w;
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    pub fn row_sum(&self, i: usize) -> f64 {
        self.row(i).iter().sum()
    }

    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// States with at least one observed transition (in or out).
    pub fn visited_states(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&i| self.row_sum(i) > 0.0 || (0..self.n).any(|j| self.get(j, i) > 0.0))
            .collect()
    }

    /// Symmetrized counts `C + Cᵀ` — the simple reversible estimator.
    pub fn symmetrized(&self) -> CountMatrix {
        let mut out = CountMatrix::zeros(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                out.data[i * self.n + j] = self.get(i, j) + self.get(j, i);
            }
        }
        out
    }

    /// Restrict to a state subset: returns the submatrix and keeps the
    /// subset order (`subset[k]` is the original id of new state `k`).
    pub fn restrict(&self, subset: &[usize]) -> CountMatrix {
        let m = subset.len();
        let mut out = CountMatrix::zeros(m);
        for (a, &i) in subset.iter().enumerate() {
            for (b, &j) in subset.iter().enumerate() {
                out.data[a * m + b] = self.get(i, j);
            }
        }
        out
    }

    /// Add `prior` to every element (a uniform pseudocount).
    pub fn with_prior(&self, prior: f64) -> CountMatrix {
        assert!(prior >= 0.0);
        CountMatrix {
            n: self.n,
            data: self.data.iter().map(|c| c + prior).collect(),
        }
    }

    /// Enlarge the state space by `n_new` states, preserving every
    /// existing count. New rows/columns start at zero. This is the
    /// primitive behind streaming estimation: discovering a microstate
    /// mid-run must not discard the counts gathered so far.
    pub fn grow(&mut self, n_new: usize) {
        if n_new == 0 {
            return;
        }
        let old = self.n;
        let n = old + n_new;
        let mut data = vec![0.0; n * n];
        for i in 0..old {
            data[i * n..i * n + old].copy_from_slice(&self.data[i * old..(i + 1) * old]);
        }
        self.n = n;
        self.data = data;
    }

    /// Hand-rolled JSON encoding (`{"n": …, "data": […]}`), the format
    /// used inside controller WAL snapshots.
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "n": self.n as u64,
            "data": serde_json::Value::from(self.data.clone()),
        })
    }

    pub fn from_value(v: &serde_json::Value) -> Result<CountMatrix, String> {
        let n = mdsim::jsonv::int(v, "n")? as usize;
        let data = mdsim::jsonv::f64s_from_value(mdsim::jsonv::field(v, "data")?)?;
        if data.len() != n * n {
            return Err(format!(
                "count matrix data length {} != n² for n = {n}",
                data.len()
            ));
        }
        Ok(CountMatrix { n, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_window_counts() {
        // Trajectory 0 1 0 1 at lag 1: transitions 0→1, 1→0, 0→1.
        let d = vec![vec![0usize, 1, 0, 1]];
        let c = CountMatrix::from_dtrajs(&d, 2, 1);
        assert_eq!(c.get(0, 1), 2.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.total(), 3.0);
    }

    #[test]
    fn lag_two_counts() {
        // 0 1 0 1 at lag 2: pairs (0,0) and (1,1).
        let d = vec![vec![0usize, 1, 0, 1]];
        let c = CountMatrix::from_dtrajs(&d, 2, 2);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 1), 1.0);
        assert_eq!(c.total(), 2.0);
    }

    #[test]
    fn multiple_trajectories_accumulate() {
        let d = vec![vec![0usize, 1], vec![0, 1], vec![1, 0]];
        let c = CountMatrix::from_dtrajs(&d, 2, 1);
        assert_eq!(c.get(0, 1), 2.0);
        assert_eq!(c.get(1, 0), 1.0);
    }

    #[test]
    fn short_trajectories_contribute_nothing() {
        let d = vec![vec![0usize]];
        let c = CountMatrix::from_dtrajs(&d, 1, 1);
        assert_eq!(c.total(), 0.0);
    }

    #[test]
    fn symmetrization() {
        let d = vec![vec![0usize, 1, 1]];
        let c = CountMatrix::from_dtrajs(&d, 2, 1);
        let s = c.symmetrized();
        assert_eq!(s.get(0, 1), 1.0);
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(1, 1), 2.0);
    }

    #[test]
    fn restriction_keeps_subset_counts() {
        let d = vec![vec![0usize, 1, 2, 1, 0]];
        let c = CountMatrix::from_dtrajs(&d, 3, 1);
        let r = c.restrict(&[1, 2]);
        assert_eq!(r.n_states(), 2);
        assert_eq!(r.get(0, 1), c.get(1, 2));
        assert_eq!(r.get(1, 0), c.get(2, 1));
    }

    #[test]
    fn visited_states_excludes_unseen() {
        let d = vec![vec![0usize, 2]];
        let c = CountMatrix::from_dtrajs(&d, 5, 1);
        assert_eq!(c.visited_states(), vec![0, 2]);
    }

    #[test]
    fn prior_adds_uniformly() {
        let c = CountMatrix::zeros(2).with_prior(0.5);
        assert_eq!(c.total(), 2.0);
        assert_eq!(c.get(1, 0), 0.5);
    }

    #[test]
    fn row_access() {
        let mut c = CountMatrix::zeros(3);
        c.add(1, 0, 2.0);
        c.add(1, 2, 3.0);
        assert_eq!(c.row(1), &[2.0, 0.0, 3.0]);
        assert_eq!(c.row_sum(1), 5.0);
    }

    #[test]
    fn grow_preserves_counts_and_zeros_new_states() {
        let d = vec![vec![0usize, 1, 0, 1]];
        let mut c = CountMatrix::from_dtrajs(&d, 2, 1);
        c.grow(2);
        assert_eq!(c.n_states(), 4);
        assert_eq!(c.get(0, 1), 2.0);
        assert_eq!(c.get(1, 0), 1.0);
        assert_eq!(c.get(0, 3), 0.0);
        assert_eq!(c.get(3, 0), 0.0);
        assert_eq!(c.total(), 3.0);
        // Counting continues in the enlarged space.
        c.add(3, 2, 1.0);
        assert_eq!(c.get(3, 2), 1.0);
        assert_eq!(c.total(), 4.0);
    }

    #[test]
    fn grow_zero_is_noop() {
        let mut c = CountMatrix::zeros(2);
        c.add(0, 1, 1.0);
        let before = c.clone();
        c.grow(0);
        assert_eq!(c, before);
    }

    #[test]
    fn value_roundtrip() {
        let d = vec![vec![0usize, 1, 2, 1, 0]];
        let c = CountMatrix::from_dtrajs(&d, 3, 1);
        let back = CountMatrix::from_value(&c.to_value()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn value_rejects_bad_shape() {
        let v = serde_json::json!({"n": 3u64, "data": [1.0, 2.0]});
        assert!(CountMatrix::from_value(&v).is_err());
    }
}
