//! Structural metrics: optimal-superposition (Kabsch) RMSD.
//!
//! The paper scores conformations by Cα RMSD to the 2F4K native structure;
//! this module provides that metric. The optimal rotation is found with
//! Horn's quaternion method (equivalent to Kabsch SVD but reflection-safe):
//! the largest eigenvalue of a 4×4 symmetric matrix built from the
//! coordinate cross-covariance.

use crate::linalg::{jacobi_eigen_sym, Mat3};
use mdsim::vec3::Vec3;

/// Centroid of a point set.
pub fn centroid(points: &[Vec3]) -> Vec3 {
    assert!(!points.is_empty(), "cannot take centroid of no points");
    points.iter().copied().sum::<Vec3>() / points.len() as f64
}

/// RMSD without alignment (both sets taken as-is).
pub fn rmsd_raw(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "point sets must have equal size");
    let ss: f64 = a.iter().zip(b).map(|(p, q)| p.dist2(*q)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Horn's 4×4 quaternion matrix from the cross-covariance of two centered
/// point sets, plus the two radii of gyration terms (Ga, Gb).
fn horn_matrix(a: &[Vec3], b: &[Vec3]) -> (Vec<Vec<f64>>, f64, f64) {
    let ca = centroid(a);
    let cb = centroid(b);
    let mut m = [[0.0f64; 3]; 3];
    let mut ga = 0.0;
    let mut gb = 0.0;
    for (p0, q0) in a.iter().zip(b) {
        let p = *p0 - ca;
        let q = *q0 - cb;
        ga += p.norm2();
        gb += q.norm2();
        let pa = p.as_array();
        let qa = q.as_array();
        for (i, &pi) in pa.iter().enumerate() {
            for (j, &qj) in qa.iter().enumerate() {
                m[i][j] += pi * qj;
            }
        }
    }
    let (sxx, sxy, sxz) = (m[0][0], m[0][1], m[0][2]);
    let (syx, syy, syz) = (m[1][0], m[1][1], m[1][2]);
    let (szx, szy, szz) = (m[2][0], m[2][1], m[2][2]);
    let k = vec![
        vec![sxx + syy + szz, syz - szy, szx - sxz, sxy - syx],
        vec![syz - szy, sxx - syy - szz, sxy + syx, szx + sxz],
        vec![szx - sxz, sxy + syx, -sxx + syy - szz, syz + szy],
        vec![sxy - syx, szx + sxz, syz + szy, -sxx - syy + szz],
    ];
    (k, ga, gb)
}

/// Minimum RMSD between two conformations over all rigid-body
/// superpositions (rotation + translation).
pub fn rmsd(a: &[Vec3], b: &[Vec3]) -> f64 {
    assert_eq!(a.len(), b.len(), "point sets must have equal size");
    assert!(!a.is_empty());
    let (k, ga, gb) = horn_matrix(a, b);
    let (vals, _) = jacobi_eigen_sym(&k);
    let lambda_max = vals[0];
    let msd = ((ga + gb - 2.0 * lambda_max) / a.len() as f64).max(0.0);
    msd.sqrt()
}

/// Optimal rotation matrix that superposes `mobile` (centered) onto
/// `target` (centered), i.e. minimizes `Σ |R·(m−cm) − (t−ct)|²`.
pub fn optimal_rotation(target: &[Vec3], mobile: &[Vec3]) -> Mat3 {
    let (k, _, _) = horn_matrix(target, mobile);
    let (_, vecs) = jacobi_eigen_sym(&k);
    let q = &vecs[0];
    // Horn's quaternion rotates `mobile` into `target`'s frame; the matrix
    // built from the conjugate quaternion performs the forward rotation.
    Mat3::from_quaternion([q[0], -q[1], -q[2], -q[3]])
}

/// Return a copy of `mobile` rigid-body superposed onto `target`.
pub fn superpose(target: &[Vec3], mobile: &[Vec3]) -> Vec<Vec3> {
    assert_eq!(target.len(), mobile.len());
    let ct = centroid(target);
    let cm = centroid(mobile);
    let r = optimal_rotation(target, mobile);
    mobile.iter().map(|&p| r.mul_vec(p - cm) + ct).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::rng::{rng_from_seed, sample_normal};
    use mdsim::vec3::v3;
    use rand::Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = rng_from_seed(seed);
        (0..n)
            .map(|_| {
                v3(
                    sample_normal(&mut rng) * 3.0,
                    sample_normal(&mut rng) * 3.0,
                    sample_normal(&mut rng) * 3.0,
                )
            })
            .collect()
    }

    fn rotate_z(points: &[Vec3], angle: f64) -> Vec<Vec3> {
        let (s, c) = angle.sin_cos();
        points
            .iter()
            .map(|p| v3(c * p.x - s * p.y, s * p.x + c * p.y, p.z))
            .collect()
    }

    #[test]
    fn identical_sets_have_zero_rmsd() {
        let a = random_points(20, 1);
        assert!(rmsd(&a, &a) < 1e-10);
        assert!(rmsd_raw(&a, &a) < 1e-12);
    }

    #[test]
    fn rmsd_is_invariant_to_rotation_and_translation() {
        let a = random_points(30, 2);
        let mut b = rotate_z(&a, 1.1);
        for p in b.iter_mut() {
            *p += v3(5.0, -3.0, 2.0);
        }
        assert!(rmsd_raw(&a, &b) > 1.0, "raw RMSD should see the transform");
        assert!(rmsd(&a, &b) < 1e-9, "aligned RMSD should vanish");
    }

    #[test]
    fn rmsd_is_symmetric() {
        let a = random_points(25, 3);
        let b = random_points(25, 4);
        let d_ab = rmsd(&a, &b);
        let d_ba = rmsd(&b, &a);
        assert!((d_ab - d_ba).abs() < 1e-9, "{d_ab} vs {d_ba}");
        assert!(d_ab > 0.0);
    }

    #[test]
    fn rmsd_upper_bounded_by_raw() {
        for seed in 0..5 {
            let a = random_points(15, seed);
            let b = random_points(15, seed + 100);
            assert!(rmsd(&a, &b) <= rmsd_raw(&a, &b) + 1e-9);
        }
    }

    #[test]
    fn known_displacement_rmsd() {
        // Two points displaced by d have raw RMSD d; after alignment the
        // best superposition is exact for congruent pairs.
        let a = vec![v3(0.0, 0.0, 0.0), v3(1.0, 0.0, 0.0)];
        let b = vec![v3(0.0, 1.0, 0.0), v3(1.0, 1.0, 0.0)];
        assert!((rmsd_raw(&a, &b) - 1.0).abs() < 1e-12);
        assert!(rmsd(&a, &b) < 1e-9);
    }

    #[test]
    fn superpose_aligns_exactly_for_congruent_sets() {
        let a = random_points(40, 5);
        let mut b = rotate_z(&a, -0.7);
        for p in b.iter_mut() {
            *p += v3(-2.0, 8.0, 1.0);
        }
        let aligned = superpose(&a, &b);
        assert!(rmsd_raw(&a, &aligned) < 1e-9);
    }

    #[test]
    fn superpose_improves_noisy_alignment() {
        let a = random_points(40, 6);
        let mut rng = rng_from_seed(7);
        let mut b = rotate_z(&a, 0.4);
        for p in b.iter_mut() {
            *p += v3(
                0.1 * rng.random::<f64>(),
                0.1 * rng.random::<f64>(),
                0.1 * rng.random::<f64>(),
            );
        }
        let aligned = superpose(&a, &b);
        assert!(rmsd_raw(&a, &aligned) <= rmsd_raw(&a, &b));
        // Aligned raw RMSD equals the rotational-minimum RMSD.
        assert!((rmsd_raw(&a, &aligned) - rmsd(&a, &b)).abs() < 1e-6);
    }

    #[test]
    fn reflection_is_not_matched() {
        // A mirrored chiral set cannot be superposed by a proper rotation:
        // RMSD must stay > 0.
        let a = vec![
            v3(0.0, 0.0, 0.0),
            v3(1.0, 0.0, 0.0),
            v3(0.0, 1.0, 0.0),
            v3(0.0, 0.0, 1.0),
            v3(1.0, 1.0, 0.3),
        ];
        let b: Vec<Vec3> = a.iter().map(|p| v3(p.x, p.y, -p.z)).collect();
        assert!(rmsd(&a, &b) > 0.1, "mirror image treated as congruent");
    }

    #[test]
    fn triangle_inequality_heuristic() {
        // RMSD after optimal superposition is a proper metric on shape
        // space; spot-check the triangle inequality.
        for seed in 0..5 {
            let a = random_points(12, seed);
            let b = random_points(12, seed + 50);
            let c = random_points(12, seed + 90);
            assert!(rmsd(&a, &c) <= rmsd(&a, &b) + rmsd(&b, &c) + 1e-9);
        }
    }
}
