//! Strong connectivity of the transition-count graph.
//!
//! The paper performs its analysis *"on the largest connected subset of
//! the Markovian transition matrix"*; this module finds that subset via
//! Tarjan's strongly-connected-components algorithm (iterative, so deep
//! chains cannot overflow the stack).

use crate::counts::CountMatrix;

/// All strongly connected components of the directed graph with an edge
/// `i → j` wherever `counts(i, j) > 0`. Components are returned in reverse
/// topological order (Tarjan's natural output order).
pub fn strongly_connected_components(counts: &CountMatrix) -> Vec<Vec<usize>> {
    let n = counts.n_states();
    let adjacency: Vec<Vec<usize>> = (0..n)
        .map(|i| (0..n).filter(|&j| counts.get(i, j) > 0.0).collect())
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: (node, child-iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adjacency[v].get(*child_pos) {
                *child_pos += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                // All children processed.
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }
    }
    components
}

/// The largest strongly connected component, preferring more states and
/// breaking ties by total in-component transition counts. States are
/// returned sorted ascending.
pub fn largest_connected_set(counts: &CountMatrix) -> Vec<usize> {
    let components = strongly_connected_components(counts);
    components
        .into_iter()
        .max_by(|a, b| {
            let weight = |comp: &Vec<usize>| -> (usize, f64) {
                let total: f64 = comp
                    .iter()
                    .flat_map(|&i| comp.iter().map(move |&j| counts.get(i, j)))
                    .sum();
                (comp.len(), total)
            };
            let (la, wa) = weight(a);
            let (lb, wb) = weight(b);
            la.cmp(&lb).then(wa.partial_cmp(&wb).unwrap())
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_from_edges(n: usize, edges: &[(usize, usize)]) -> CountMatrix {
        let mut c = CountMatrix::zeros(n);
        for &(i, j) in edges {
            c.add(i, j, 1.0);
        }
        c
    }

    #[test]
    fn fully_connected_is_one_component() {
        let c = counts_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2]);
    }

    #[test]
    fn one_way_edge_splits_components() {
        // 0 ↔ 1, and 2 reachable from 1 but never returning.
        let c = counts_from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 2);
        assert_eq!(largest_connected_set(&c), vec![0, 1]);
    }

    #[test]
    fn isolated_states_are_singletons() {
        let c = counts_from_edges(4, &[(0, 1), (1, 0)]);
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 3); // {0,1}, {2}, {3}
        assert_eq!(largest_connected_set(&c), vec![0, 1]);
    }

    #[test]
    fn two_equal_components_tie_break_by_counts() {
        let mut c = counts_from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        c.add(2, 3, 10.0); // strengthen the second component
        assert_eq!(largest_connected_set(&c), vec![2, 3]);
    }

    #[test]
    fn self_loops_count_as_connectivity() {
        let c = counts_from_edges(2, &[(0, 0)]);
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 2);
        // Both are singletons; largest-by-count is {0}.
        assert_eq!(largest_connected_set(&c), vec![0]);
    }

    #[test]
    fn long_chain_does_not_overflow() {
        // A 10,000-state bidirectional chain: one big SCC, and the
        // iterative Tarjan must handle the recursion depth.
        let n = 10_000;
        let mut edges = Vec::new();
        for i in 0..n - 1 {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        let c = counts_from_edges(n, &edges);
        let largest = largest_connected_set(&c);
        assert_eq!(largest.len(), n);
    }

    #[test]
    fn empty_graph_all_singletons() {
        let c = CountMatrix::zeros(3);
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 3);
        assert_eq!(largest_connected_set(&c).len(), 1);
    }

    #[test]
    fn dag_components_follow_reachability() {
        // 0→1→2→3 with no back edges: four singletons.
        let c = counts_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 4);
    }
}
