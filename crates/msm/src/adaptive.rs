//! Adaptive-sampling spawn weights (§3.2 of the paper).
//!
//! After each clustering step the MSM controller decides how many new
//! trajectories to start from each microstate:
//!
//! - **Even weighting** starts a uniform number from every discovered
//!   state — best early on, when the state decomposition itself is the
//!   dominant uncertainty.
//! - **Adaptive weighting** weights states *"by the uncertainty in the
//!   transitions between clusters"* — best once the partitioning is
//!   stable; the paper credits it with up to a 2× sampling-efficiency
//!   gain.

use crate::counts::CountMatrix;
use serde::{Deserialize, Serialize};

/// Spawn-weighting policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Weighting {
    Even,
    Adaptive,
}

/// Uniform weights over `n` states.
pub fn even_weights(n: usize) -> Vec<f64> {
    assert!(n > 0, "no states to weight");
    vec![1.0 / n as f64; n]
}

/// Uncertainty-based weights: state `i` gets weight proportional to the
/// total standard error of its outgoing transition-probability estimates,
///
/// `w_i ∝ sqrt( Σ_j T̂_ij (1 − T̂_ij) / (N_i + 1) )`,
///
/// where `T̂` is the row-normalized count estimate and `N_i` the row
/// count. Rarely-visited states and states with broad, undetermined
/// outgoing distributions draw the most new trajectories.
pub fn adaptive_weights(counts: &CountMatrix) -> Vec<f64> {
    let n = counts.n_states();
    assert!(n > 0, "no states to weight");
    let mut w = vec![0.0; n];
    for (i, wi) in w.iter_mut().enumerate() {
        let row_sum = counts.row_sum(i);
        if row_sum == 0.0 {
            // Never sampled: maximal uncertainty.
            *wi = 1.0;
            continue;
        }
        let mut var = 0.0;
        for j in 0..n {
            let t_ij = counts.get(i, j) / row_sum;
            var += t_ij * (1.0 - t_ij) / (row_sum + 1.0);
        }
        *wi = var.sqrt();
    }
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        for x in w.iter_mut() {
            *x /= total;
        }
    } else {
        // Degenerate (all rows deterministic): fall back to even.
        w = even_weights(n);
    }
    w
}

/// Turn fractional weights into an integer allocation of `n_new` spawns
/// using the largest-remainder method; the allocation always sums to
/// exactly `n_new`.
pub fn allocate_spawns(weights: &[f64], n_new: usize) -> Vec<usize> {
    assert!(!weights.is_empty(), "no states to allocate to");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let ideal: Vec<f64> = weights.iter().map(|w| w / total * n_new as f64).collect();
    let mut alloc: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = alloc.iter().sum();
    let mut remainders: Vec<(usize, f64)> = ideal
        .iter()
        .enumerate()
        .map(|(i, x)| (i, x - x.floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for k in 0..(n_new - assigned) {
        alloc[remainders[k % remainders.len()].0] += 1;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_weights_are_uniform() {
        let w = even_weights(4);
        assert_eq!(w, vec![0.25; 4]);
    }

    #[test]
    fn unsampled_states_get_max_weight() {
        let mut c = CountMatrix::zeros(3);
        // State 0 heavily sampled with a deterministic outcome.
        c.add(0, 1, 1000.0);
        // State 1 lightly sampled with a split outcome.
        c.add(1, 0, 2.0);
        c.add(1, 2, 2.0);
        // State 2 never sampled.
        let w = adaptive_weights(&c);
        assert!(w[2] > w[1], "unsampled should outrank lightly sampled");
        assert!(w[1] > w[0], "uncertain should outrank well-determined");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_counts_reduce_weight() {
        let mut few = CountMatrix::zeros(2);
        few.add(0, 0, 2.0);
        few.add(0, 1, 2.0);
        few.add(1, 0, 100.0);
        few.add(1, 1, 100.0);
        let w = adaptive_weights(&few);
        // Same split (50/50) but different sampling depth.
        assert!(w[0] > w[1]);
    }

    #[test]
    fn deterministic_rows_fall_back_to_even() {
        let mut c = CountMatrix::zeros(2);
        c.add(0, 1, 5.0);
        c.add(1, 0, 5.0);
        let w = adaptive_weights(&c);
        // Both rows have some variance? p=1 exactly → variance 0 → fallback.
        assert_eq!(w, even_weights(2));
    }

    #[test]
    fn allocation_sums_exactly() {
        let w = vec![0.5, 0.3, 0.2];
        for n in [0usize, 1, 7, 10, 100] {
            let a = allocate_spawns(&w, n);
            assert_eq!(a.iter().sum::<usize>(), n, "n = {n}");
        }
    }

    #[test]
    fn allocation_follows_weights() {
        let w = vec![0.7, 0.2, 0.1];
        let a = allocate_spawns(&w, 10);
        assert_eq!(a, vec![7, 2, 1]);
    }

    #[test]
    fn allocation_handles_rounding() {
        let w = vec![1.0, 1.0, 1.0];
        let a = allocate_spawns(&w, 10);
        assert_eq!(a.iter().sum::<usize>(), 10);
        // Max spread of 1 between any two states.
        assert!(a.iter().max().unwrap() - a.iter().min().unwrap() <= 1);
    }

    #[test]
    fn even_allocation_matches_paper_protocol() {
        // 9 starting structures × 25 tasks each = 225 (paper §3.2).
        let a = allocate_spawns(&even_weights(9), 225);
        assert_eq!(a, vec![25; 9]);
    }

    #[test]
    #[should_panic(expected = "no states")]
    fn rejects_empty_weights() {
        let _ = allocate_spawns(&[], 5);
    }
}
