//! Ensemble statistics over trajectory collections (paper Fig. 5: time
//! evolution of the ensemble-average Cα RMSD with standard deviations).

use mdsim::trajectory::Trajectory;
use mdsim::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Per-time-point mean / standard deviation of a frame observable across
/// an ensemble of trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleSeries {
    pub times: Vec<f64>,
    pub mean: Vec<f64>,
    pub std_dev: Vec<f64>,
    /// Number of trajectories contributing at each time point.
    pub n_samples: Vec<usize>,
}

impl EnsembleSeries {
    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Standard error of the mean at each time point.
    pub fn std_err(&self) -> Vec<f64> {
        self.std_dev
            .iter()
            .zip(&self.n_samples)
            .map(|(&s, &n)| if n > 1 { s / (n as f64).sqrt() } else { s })
            .collect()
    }
}

/// Evaluate `observable` on every frame of every trajectory and aggregate
/// by frame index. Trajectories may have different lengths (the paper
/// terminates and spawns runs mid-project); shorter ones simply stop
/// contributing. Times are taken from the longest trajectory.
pub fn ensemble_statistic(
    trajs: &[Trajectory],
    observable: impl Fn(&[Vec3]) -> f64 + Sync,
) -> EnsembleSeries {
    let max_len = trajs.iter().map(|t| t.len()).max().unwrap_or(0);
    let longest = trajs
        .iter()
        .max_by_key(|t| t.len())
        .map(|t| t.times().to_vec())
        .unwrap_or_default();

    let mut times = Vec::with_capacity(max_len);
    let mut mean = Vec::with_capacity(max_len);
    let mut std_dev = Vec::with_capacity(max_len);
    let mut n_samples = Vec::with_capacity(max_len);

    for k in 0..max_len {
        let values: Vec<f64> = trajs
            .iter()
            .filter(|t| k < t.len())
            .map(|t| observable(t.frame(k)))
            .collect();
        let n = values.len();
        let m = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        times.push(longest[k]);
        mean.push(m);
        std_dev.push(var.sqrt());
        n_samples.push(n);
    }
    EnsembleSeries {
        times,
        mean,
        std_dev,
        n_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::vec3::v3;

    fn traj_of(xs: &[f64]) -> Trajectory {
        let mut t = Trajectory::new();
        for (k, &x) in xs.iter().enumerate() {
            t.push(k as f64, vec![v3(x, 0.0, 0.0)]);
        }
        t
    }

    #[test]
    fn mean_and_std_of_two_trajectories() {
        let trajs = vec![traj_of(&[1.0, 2.0]), traj_of(&[3.0, 4.0])];
        let s = ensemble_statistic(&trajs, |f| f[0].x);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean, vec![2.0, 3.0]);
        // Sample std dev of {1,3} is √2.
        assert!((s.std_dev[0] - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.n_samples, vec![2, 2]);
    }

    #[test]
    fn ragged_lengths_reduce_sample_count() {
        let trajs = vec![traj_of(&[1.0, 2.0, 3.0]), traj_of(&[5.0])];
        let s = ensemble_statistic(&trajs, |f| f[0].x);
        assert_eq!(s.n_samples, vec![2, 1, 1]);
        assert_eq!(s.mean, vec![3.0, 2.0, 3.0]);
        assert_eq!(s.std_dev[1], 0.0);
        assert_eq!(s.times, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn std_err_scales_with_sqrt_n() {
        let trajs = vec![
            traj_of(&[0.0]),
            traj_of(&[1.0]),
            traj_of(&[2.0]),
            traj_of(&[3.0]),
        ];
        let s = ensemble_statistic(&trajs, |f| f[0].x);
        let se = s.std_err();
        assert!((se[0] - s.std_dev[0] / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_empty_series() {
        let s = ensemble_statistic(&[], |_| 0.0);
        assert!(s.is_empty());
    }
}
