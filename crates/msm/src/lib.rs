//! # msm — Markov state modeling substrate
//!
//! The kinetic-clustering and statistical-model-building layer of the
//! Copernicus reproduction (the role msmbuilder-era tooling plays for the
//! paper's MSM plugin):
//!
//! - Kabsch/Horn optimal-superposition RMSD ([`metric`]);
//! - k-centers and k-medoids conformational clustering ([`cluster`]);
//! - lagged transition counting, connectivity trimming, reversible and
//!   non-reversible transition-matrix estimation ([`counts`],
//!   [`connectivity`], [`tmatrix`]);
//! - Chapman-Kolmogorov propagation and kinetic observables
//!   ([`propagate`]);
//! - even / adaptive sampling weights for trajectory spawning
//!   ([`adaptive`]);
//! - incremental estimation for the streaming adaptive loop: assign-or-
//!   mint clustering, mini-batch center refinement, lagged counts across
//!   segment boundaries, drift-triggered rebasing ([`streaming`]);
//! - ensemble statistics ([`ensemble`]) and the high-level
//!   [`MarkovStateModel`] builder ([`model`]).

pub mod adaptive;
pub mod bootstrap;
pub mod cktest;
pub mod cluster;
pub mod connectivity;
pub mod counts;
pub mod ensemble;
pub mod kinetics;
pub mod linalg;
pub mod lumping;
pub mod metric;
pub mod model;
pub mod propagate;
pub mod streaming;
pub mod tica;
pub mod tmatrix;

pub use adaptive::{adaptive_weights, allocate_spawns, even_weights, Weighting};
pub use bootstrap::{bootstrap_over_trajectories, bootstrap_subset_population, BootstrapEstimate};
pub use cktest::{chapman_kolmogorov_test, CkTestResult};
pub use cluster::{assign, k_centers, k_medoids_refine, Clustering};
pub use connectivity::{largest_connected_set, strongly_connected_components};
pub use counts::CountMatrix;
pub use ensemble::{ensemble_statistic, EnsembleSeries};
pub use kinetics::{folding_rate, forward_committor, mean_first_passage_times};
pub use lumping::{lump_distribution, lump_transition_matrix, pcca_spectral};
pub use metric::{centroid, rmsd, rmsd_raw, superpose};
pub use model::{MarkovStateModel, MsmConfig};
pub use propagate::{first_crossing, half_life, propagate_series, subset_population};
pub use streaming::{StateWeights, StreamingConfig, StreamingMsm};
pub use tica::Tica;
pub use tmatrix::{implied_timescale, TransitionMatrix};
