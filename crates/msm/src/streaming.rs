//! Incremental MSM estimation for the streaming adaptive loop.
//!
//! The generational loop of the paper rebuilds the whole model — full
//! k-centers clustering over every frame ever sampled — at each
//! generation barrier, while the worker fleet sits idle. [`StreamingMsm`]
//! removes that barrier: trajectory segments are folded into the model
//! *as they finish*,
//!
//! - assigning each new frame to its nearest existing center, or minting
//!   a new microstate when the frame falls outside the assignment radius
//!   (incremental k-centers);
//! - optionally refining the nearest center toward the new frame with a
//!   mini-batch k-means step ([`crate::cluster::minibatch_center_update`]);
//! - accumulating lagged transition counts across segment boundaries via
//!   per-lineage assignment tails, so chunked trajectories count exactly
//!   the same transitions as their unchunked equivalents;
//! - tracking *drift* — the fraction of recent frames that minted new
//!   states — to decide when a full background recluster is worth
//!   scheduling.
//!
//! A full recluster (run as an ordinary background command on the worker
//! fleet) produces fresh centers and dtrajs for the frames frozen at
//! dispatch time; [`StreamingMsm::rebase`] swaps that model in atomically
//! and the controller replays post-freeze frames through
//! [`StreamingMsm::observe`]. The estimator is deliberately free of any
//! I/O or scheduling: it is a pure data structure the controller drives,
//! snapshottable to JSON for the server's write-ahead log.

use crate::adaptive::{adaptive_weights, even_weights, Weighting};
use crate::cluster::{minibatch_center_update, nearest_center};
use crate::connectivity::largest_connected_set;
use crate::counts::CountMatrix;
use crate::metric::rmsd;
use mdsim::jsonv;
use mdsim::vec3::Vec3;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Tunables of the incremental estimator.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Microstate budget: new centers are minted until this many exist.
    pub max_states: usize,
    /// Transition-count lag in frames.
    pub lag_frames: usize,
    /// Refine the nearest center with a mini-batch k-means step on every
    /// assignment (off keeps centers exactly at their founding frames,
    /// matching plain k-centers).
    pub minibatch: bool,
    /// A rebuild is due when more than this fraction of `max_states` has
    /// been minted since the last rebase …
    pub drift_state_frac: f64,
    /// … or when the frame count has grown by this factor since the last
    /// rebase (counts keep accumulating, but center placement reflects
    /// an ever-smaller prefix of the data).
    pub drift_frame_factor: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            max_states: 100,
            lag_frames: 5,
            minibatch: true,
            drift_state_frac: 0.25,
            drift_frame_factor: 2.0,
        }
    }
}

impl StreamingConfig {
    pub fn to_value(&self) -> Value {
        json!({
            "max_states": self.max_states as u64,
            "lag_frames": self.lag_frames as u64,
            "minibatch": self.minibatch,
            "drift_state_frac": self.drift_state_frac,
            "drift_frame_factor": self.drift_frame_factor,
        })
    }

    pub fn from_value(v: &Value) -> Result<StreamingConfig, String> {
        Ok(StreamingConfig {
            max_states: jsonv::int(v, "max_states")? as usize,
            lag_frames: jsonv::int(v, "lag_frames")? as usize,
            minibatch: jsonv::boolean(v, "minibatch")?,
            drift_state_frac: jsonv::num(v, "drift_state_frac")?,
            drift_frame_factor: jsonv::num(v, "drift_frame_factor")?,
        })
    }
}

/// Spawn weights over the active (largest strongly connected) set.
#[derive(Debug, Clone)]
pub struct StateWeights {
    /// Original microstate ids, ascending.
    pub active: Vec<usize>,
    /// Weight of each active state, parallel to `active`, summing to 1.
    pub weights: Vec<f64>,
}

impl StateWeights {
    /// Weight of an original state id; `None` when the state is outside
    /// the active set (disconnected — its kinetics are undetermined, so
    /// callers usually treat it as maximally interesting).
    pub fn weight_of(&self, state: usize) -> Option<f64> {
        self.active
            .binary_search(&state)
            .ok()
            .map(|k| self.weights[k])
    }
}

/// The incremental estimator. See the module docs for the life cycle.
#[derive(Debug, Clone)]
pub struct StreamingMsm {
    config: StreamingConfig,
    /// Assignment radius: frames farther than this from every center
    /// found a new state (while the budget lasts). Set from the k-centers
    /// max radius of the founding build, updated on every rebase.
    radius: f64,
    /// Center conformations, indexed by microstate id.
    centers: Vec<Vec<Vec3>>,
    /// Frames assigned to each center (mini-batch learning rates).
    center_counts: Vec<f64>,
    /// Last *raw* frame assigned to each state. Respawns start from an
    /// exemplar, never from a (blended, possibly off-manifold) center.
    exemplars: Vec<Vec<Vec3>>,
    /// Lagged transition counts over all microstates.
    counts: CountMatrix,
    /// Last `lag_frames` assignments of each live lineage, so counts
    /// bridge segment boundaries.
    tails: BTreeMap<u64, Vec<usize>>,
    frames_seen: u64,
    /// Drift bookkeeping, reset on rebase.
    states_minted_since_rebase: usize,
    frames_at_rebase: u64,
    /// Incremented on every rebase; lets the controller match background
    /// rebuild results to the model generation they were computed from.
    epoch: u64,
}

impl StreamingMsm {
    /// Found the estimator on an initial clustering (typically a small
    /// k-centers build over the first round of segments). `dtrajs` maps
    /// lineage id → state sequence of the frames clustered so far.
    pub fn from_parts(
        config: StreamingConfig,
        centers: Vec<Vec<Vec3>>,
        radius: f64,
        dtrajs: &BTreeMap<u64, Vec<usize>>,
    ) -> StreamingMsm {
        assert!(!centers.is_empty(), "cannot stream without centers");
        assert!(config.lag_frames >= 1, "lag must be at least one frame");
        let n = centers.len();
        let seqs: Vec<Vec<usize>> = dtrajs.values().cloned().collect();
        let counts = CountMatrix::from_dtrajs(&seqs, n, config.lag_frames);
        let mut center_counts = vec![0.0; n];
        for seq in &seqs {
            for &s in seq {
                center_counts[s] += 1.0;
            }
        }
        let frames_seen: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let tails = dtrajs
            .iter()
            .map(|(&l, seq)| (l, tail_of(seq, config.lag_frames)))
            .collect();
        // Until a state receives a live frame its exemplar is its center
        // (which at founding time *is* a raw frame).
        let exemplars = centers.clone();
        StreamingMsm {
            config,
            radius,
            centers,
            center_counts,
            exemplars,
            counts,
            tails,
            frames_seen,
            states_minted_since_rebase: 0,
            frames_at_rebase: frames_seen,
            epoch: 0,
        }
    }

    /// Fold one finished segment of `lineage` into the model, returning
    /// the state assignment of its frames. Transition counts bridge the
    /// previous segment of the same lineage through the stored tail.
    pub fn observe(&mut self, lineage: u64, frames: &[Vec<Vec3>]) -> Vec<usize> {
        let mut assigned = Vec::with_capacity(frames.len());
        for frame in frames {
            let (c, d) = nearest_center(frame, &self.centers, |a, b| rmsd(a, b));
            let state = if d > self.radius && self.centers.len() < self.config.max_states {
                // Outside every state's radius: mint a new microstate.
                self.centers.push(frame.clone());
                self.center_counts.push(1.0);
                self.exemplars.push(frame.clone());
                self.counts.grow(1);
                self.states_minted_since_rebase += 1;
                self.centers.len() - 1
            } else {
                self.center_counts[c] += 1.0;
                self.exemplars[c] = frame.clone();
                if self.config.minibatch {
                    minibatch_center_update(&mut self.centers[c], frame, self.center_counts[c]);
                }
                c
            };
            assigned.push(state);
        }
        self.frames_seen += frames.len() as u64;

        // Lagged counts across the segment boundary: prepend the tail,
        // count only pairs whose *end* lands in the new segment.
        let lag = self.config.lag_frames;
        let tail = self.tails.entry(lineage).or_default();
        let mut seq = tail.clone();
        seq.extend_from_slice(&assigned);
        let old = tail.len();
        for t in 0..seq.len().saturating_sub(lag) {
            if t + lag >= old {
                self.counts.add(seq[t], seq[t + lag], 1.0);
            }
        }
        *tail = tail_of(&seq, lag);
        assigned
    }

    /// Forget a lineage's tail (it was terminated; a respawn starts a
    /// fresh lineage with no transition bridging the discontinuity).
    pub fn end_lineage(&mut self, lineage: u64) {
        self.tails.remove(&lineage);
    }

    /// Swap in a full background rebuild: new centers, radius, and the
    /// dtrajs of the frames that were frozen when the rebuild was
    /// dispatched. The caller replays any frames observed after the
    /// freeze through [`StreamingMsm::observe`].
    pub fn rebase(
        &mut self,
        centers: Vec<Vec<Vec3>>,
        radius: f64,
        dtrajs: &BTreeMap<u64, Vec<usize>>,
    ) {
        let epoch = self.epoch + 1;
        let mut rebuilt = StreamingMsm::from_parts(self.config, centers, radius, dtrajs);
        rebuilt.epoch = epoch;
        // Lineages the old model knew about but the freeze missed keep
        // *no* tail: their pre-freeze frames were part of the frozen set
        // only if the caller included them, and replay re-creates tails.
        *self = rebuilt;
    }

    pub fn n_states(&self) -> usize {
        self.centers.len()
    }

    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn radius(&self) -> f64 {
        self.radius
    }

    pub fn counts(&self) -> &CountMatrix {
        &self.counts
    }

    pub fn centers(&self) -> &[Vec<Vec3>] {
        &self.centers
    }

    /// The raw frame most recently assigned to `state` — the restart
    /// conformation for spawns targeting that state.
    pub fn exemplar(&self, state: usize) -> &[Vec3] {
        &self.exemplars[state]
    }

    /// Fraction of the state budget minted since the last rebase.
    pub fn drift(&self) -> f64 {
        self.states_minted_since_rebase as f64 / self.config.max_states.max(1) as f64
    }

    /// Whether enough has changed since the last rebase that a full
    /// background recluster is worth its cost.
    pub fn rebuild_due(&self) -> bool {
        self.drift() > self.config.drift_state_frac
            || self.frames_seen as f64
                > self.frames_at_rebase.max(1) as f64 * self.config.drift_frame_factor
    }

    /// Spawn weights over the current active set.
    pub fn spawn_weights(&self, weighting: Weighting) -> StateWeights {
        let active = largest_connected_set(&self.counts);
        let weights = match weighting {
            Weighting::Even => even_weights(active.len().max(1)),
            Weighting::Adaptive => adaptive_weights(&self.counts.restrict(&active)),
        };
        StateWeights { active, weights }
    }

    /// Serialize the full estimator state for the server's WAL.
    pub fn to_value(&self) -> Value {
        let tails: Vec<Value> = self
            .tails
            .iter()
            .map(|(&l, seq)| json!({ "lineage": l, "tail": jsonv::usizes_to_value(seq) }))
            .collect();
        json!({
            "config": self.config.to_value(),
            "radius": self.radius,
            "centers": Value::from(
                self.centers.iter().map(|c| jsonv::frame_to_value(c)).collect::<Vec<Value>>()
            ),
            "center_counts": jsonv::f64s_to_value(&self.center_counts),
            "exemplars": Value::from(
                self.exemplars.iter().map(|c| jsonv::frame_to_value(c)).collect::<Vec<Value>>()
            ),
            "counts": self.counts.to_value(),
            "tails": Value::from(tails),
            "frames_seen": self.frames_seen,
            "states_minted_since_rebase": self.states_minted_since_rebase as u64,
            "frames_at_rebase": self.frames_at_rebase,
            "epoch": self.epoch,
        })
    }

    pub fn from_value(v: &Value) -> Result<StreamingMsm, String> {
        let config = StreamingConfig::from_value(jsonv::field(v, "config")?)?;
        let centers = jsonv::frames_from_value(jsonv::field(v, "centers")?)?;
        let exemplars = jsonv::frames_from_value(jsonv::field(v, "exemplars")?)?;
        let center_counts = jsonv::f64s_from_value(jsonv::field(v, "center_counts")?)?;
        if centers.len() != center_counts.len() || centers.len() != exemplars.len() {
            return Err("centers/center_counts/exemplars length mismatch".into());
        }
        let counts = CountMatrix::from_value(jsonv::field(v, "counts")?)?;
        if counts.n_states() != centers.len() {
            return Err("count matrix does not match center count".into());
        }
        let mut tails = BTreeMap::new();
        let tail_entries = jsonv::field(v, "tails")?
            .as_array()
            .ok_or("tails is not an array")?
            .clone();
        for entry in &tail_entries {
            let l = jsonv::int(entry, "lineage")?;
            let seq = jsonv::usizes_from_value(jsonv::field(entry, "tail")?)?;
            if seq.iter().any(|&s| s >= centers.len()) {
                return Err(format!("tail of lineage {l} references unknown state"));
            }
            tails.insert(l, seq);
        }
        Ok(StreamingMsm {
            config,
            radius: jsonv::num(v, "radius")?,
            centers,
            center_counts,
            exemplars,
            counts,
            tails,
            frames_seen: jsonv::int(v, "frames_seen")?,
            states_minted_since_rebase: jsonv::int(v, "states_minted_since_rebase")? as usize,
            frames_at_rebase: jsonv::int(v, "frames_at_rebase")?,
            epoch: jsonv::int(v, "epoch")?,
        })
    }
}

fn tail_of(seq: &[usize], lag: usize) -> Vec<usize> {
    seq[seq.len().saturating_sub(lag)..].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::v3;

    /// A one-particle "conformation" at x: rmsd between two of them is 0
    /// after superposition (translation removed), so use two particles
    /// with a bond length encoding the coordinate.
    fn conf(x: f64) -> Vec<Vec3> {
        vec![v3(-x / 2.0, 0.0, 0.0), v3(x / 2.0, 0.0, 0.0)]
    }

    fn founding(max_states: usize, lag: usize) -> StreamingMsm {
        // Two founding states with bond lengths 1 and 5, radius 1.
        let centers = vec![conf(1.0), conf(5.0)];
        let mut dtrajs = BTreeMap::new();
        dtrajs.insert(0u64, vec![0, 0, 1, 1]);
        StreamingMsm::from_parts(
            StreamingConfig {
                max_states,
                lag_frames: lag,
                minibatch: false,
                ..StreamingConfig::default()
            },
            centers,
            1.0,
            &dtrajs,
        )
    }

    #[test]
    fn founding_counts_match_batch_estimator() {
        let m = founding(10, 1);
        // 0 0 1 1 at lag 1: (0,0), (0,1), (1,1).
        assert_eq!(m.counts().get(0, 0), 1.0);
        assert_eq!(m.counts().get(0, 1), 1.0);
        assert_eq!(m.counts().get(1, 1), 1.0);
        assert_eq!(m.frames_seen(), 4);
    }

    #[test]
    fn observe_assigns_within_radius_and_mints_outside() {
        let mut m = founding(10, 1);
        let a = m.observe(1, &[conf(1.2), conf(5.1), conf(20.0)]);
        // 1.2 is within radius of center 0; 5.1 of center 1; 20 is far
        // from both → new state 2.
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(m.n_states(), 3);
        assert_eq!(m.counts().n_states(), 3);
        assert_eq!(m.counts().get(0, 1), 2.0); // founding 1 + new
        assert_eq!(m.counts().get(1, 2), 1.0);
    }

    #[test]
    fn budget_exhausted_assigns_nearest() {
        let mut m = founding(2, 1);
        let a = m.observe(1, &[conf(20.0)]);
        assert_eq!(m.n_states(), 2, "budget must cap state creation");
        assert_eq!(a, vec![1], "far frame falls back to nearest center");
    }

    #[test]
    fn chunked_observation_counts_like_unchunked() {
        // Feed one 8-frame trajectory in chunks of 3+3+2 and compare
        // counts to the batch estimator on the same dtraj, at lag 2.
        let xs = [1.0, 1.1, 5.0, 5.1, 1.05, 20.0, 20.1, 5.2];
        let mut m = founding(10, 2);
        let mut full = Vec::new();
        for chunk in [&xs[0..3], &xs[3..6], &xs[6..8]] {
            let frames: Vec<Vec<Vec3>> = chunk.iter().map(|&x| conf(x)).collect();
            full.extend(m.observe(7, &frames));
        }
        // Batch estimator over the founding dtraj plus the full new
        // trajectory must agree exactly with the chunked stream.
        let expect = CountMatrix::from_dtrajs(&[vec![0, 0, 1, 1], full.clone()], m.n_states(), 2);
        for i in 0..m.n_states() {
            for j in 0..m.n_states() {
                assert_eq!(
                    m.counts().get(i, j),
                    expect.get(i, j),
                    "count ({i},{j}) diverged between chunked and batch"
                );
            }
        }
    }

    #[test]
    fn end_lineage_breaks_count_bridging() {
        let mut m = founding(10, 1);
        let t00 = m.counts().get(0, 0);
        m.observe(3, &[conf(1.0)]);
        m.end_lineage(3);
        m.observe(3, &[conf(1.0)]);
        // Two single-frame segments with the tail dropped in between:
        // no (0,0) transition may be counted.
        assert_eq!(m.counts().get(0, 0), t00);
    }

    #[test]
    fn minibatch_pulls_center_toward_members() {
        let centers = vec![conf(1.0), conf(5.0)];
        let mut dtrajs = BTreeMap::new();
        dtrajs.insert(0u64, vec![0, 1]);
        let mut m = StreamingMsm::from_parts(
            StreamingConfig {
                max_states: 2,
                lag_frames: 1,
                minibatch: true,
                ..StreamingConfig::default()
            },
            centers,
            1.0,
            &dtrajs,
        );
        for _ in 0..50 {
            m.observe(1, &[conf(1.8)]);
        }
        let bond = (m.centers()[0][1] - m.centers()[0][0]).norm();
        assert!(
            bond > 1.3,
            "center bond {bond} did not move toward members at 1.8"
        );
    }

    #[test]
    fn drift_and_rebuild_due() {
        let mut m = founding(4, 1);
        assert!(!m.rebuild_due());
        m.observe(1, &[conf(20.0)]); // mints state 2 → drift 1/4
        assert!((m.drift() - 0.25).abs() < 1e-12);
        m.observe(1, &[conf(40.0)]); // mints state 3 → drift 1/2
        assert!(m.rebuild_due());
    }

    #[test]
    fn rebase_resets_drift_and_bumps_epoch() {
        let mut m = founding(4, 1);
        m.observe(1, &[conf(20.0), conf(40.0)]);
        assert!(m.rebuild_due());
        let mut dtrajs = BTreeMap::new();
        dtrajs.insert(0u64, vec![0, 1, 2, 1]);
        m.rebase(vec![conf(1.0), conf(5.0), conf(25.0)], 2.0, &dtrajs);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.n_states(), 3);
        assert!(!m.rebuild_due());
        assert!((m.radius() - 2.0).abs() < 1e-12);
        // Replay after rebase keeps working.
        let a = m.observe(1, &[conf(25.5)]);
        assert_eq!(a, vec![2]);
    }

    #[test]
    fn exemplar_tracks_last_raw_frame() {
        let mut m = founding(10, 1);
        m.observe(1, &[conf(1.3)]);
        let bond = (m.exemplar(0)[1] - m.exemplar(0)[0]).norm();
        assert!((bond - 1.3).abs() < 1e-9);
    }

    #[test]
    fn spawn_weights_cover_active_set() {
        let mut m = founding(10, 1);
        // Make states 0↔1 mutually connected so both are active.
        m.observe(1, &[conf(1.0), conf(5.0), conf(1.0)]);
        let even = m.spawn_weights(Weighting::Even);
        assert_eq!(even.active, vec![0, 1]);
        assert!((even.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(even.weight_of(0), even.weight_of(1));
        let adaptive = m.spawn_weights(Weighting::Adaptive);
        assert!((adaptive.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(adaptive.weight_of(99).is_none());
    }

    #[test]
    fn snapshot_roundtrips_and_continues_identically() {
        let mut m = founding(10, 2);
        m.observe(1, &[conf(1.2), conf(5.1), conf(20.0)]);
        let snap = m.to_value();
        let mut back = StreamingMsm::from_value(&snap).unwrap();
        assert_eq!(back.n_states(), m.n_states());
        assert_eq!(back.frames_seen(), m.frames_seen());
        assert_eq!(back.epoch(), m.epoch());
        // Observing the same segment on both sides stays in lockstep —
        // including the lagged tail, which must survive the roundtrip.
        let seg: Vec<Vec<Vec3>> = [1.0, 20.1, 5.05].iter().map(|&x| conf(x)).collect();
        let a1 = m.observe(1, &seg);
        let a2 = back.observe(1, &seg);
        assert_eq!(a1, a2);
        for i in 0..m.n_states() {
            for j in 0..m.n_states() {
                assert_eq!(m.counts().get(i, j), back.counts().get(i, j));
            }
        }
    }

    #[test]
    fn snapshot_rejects_corrupt_tails() {
        let m = founding(10, 1);
        let mut snap = m.to_value();
        snap["tails"] = json!([json!({ "lineage": 0u64, "tail": [99u64] })]);
        assert!(StreamingMsm::from_value(&snap).is_err());
    }
}
