//! The high-level Markov state model: build from raw trajectories, query
//! populations, predict the native state blind.
//!
//! This is the analysis stack the paper's MSM plugin runs at every
//! clustering step: RMSD k-centers clustering of all frames, transition
//! counting at a lag time, trimming to the largest strongly connected
//! subset, transition-matrix estimation, and stationary analysis.

use crate::cluster::{k_centers, k_medoids_refine, Clustering};
use crate::connectivity::largest_connected_set;
use crate::counts::CountMatrix;
use crate::metric::rmsd;
use crate::tmatrix::{implied_timescale, TransitionMatrix};
use mdsim::trajectory::Trajectory;
use mdsim::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Parameters of MSM construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MsmConfig {
    /// Number of microstates (paper: 10,000 at full scale).
    pub n_clusters: usize,
    /// Lag time in *frames* (the paper uses 25 ns with 1.5 ns snapshots).
    pub lag_frames: usize,
    /// Uniform pseudocount added to the (symmetrized) count matrix.
    pub prior: f64,
    /// Use the reversible (symmetrized) estimator.
    pub reversible: bool,
    /// K-medoids refinement sweeps after k-centers (0 = none).
    pub kmedoids_iters: usize,
}

impl Default for MsmConfig {
    fn default() -> Self {
        MsmConfig {
            n_clusters: 100,
            lag_frames: 5,
            prior: 1e-4,
            reversible: true,
            kmedoids_iters: 0,
        }
    }
}

/// A built Markov state model over an ensemble of trajectories.
#[derive(Debug, Clone)]
pub struct MarkovStateModel {
    pub config: MsmConfig,
    /// Cluster-center conformations, indexed by microstate id.
    pub centers: Vec<Vec<Vec3>>,
    /// Microstate assignment of every frame, per trajectory.
    pub dtrajs: Vec<Vec<usize>>,
    /// Raw transition counts over all microstates.
    pub counts: CountMatrix,
    /// Microstates in the largest strongly connected set ("active set"),
    /// ascending original ids.
    pub active: Vec<usize>,
    /// Transition matrix over the active set.
    pub tmatrix: TransitionMatrix,
    /// Stationary distribution over the active set.
    pub stationary: Vec<f64>,
}

impl MarkovStateModel {
    /// Build a model from trajectories. Frames from all trajectories are
    /// pooled for clustering; counts use the per-trajectory frame order.
    pub fn build(trajs: &[Trajectory], config: MsmConfig) -> MarkovStateModel {
        let frames: Vec<Vec<Vec3>> = trajs
            .iter()
            .flat_map(|t| t.frames().iter().cloned())
            .collect();
        assert!(!frames.is_empty(), "no frames to build an MSM from");

        let mut clustering = k_centers(&frames, config.n_clusters, 0, |a, b| rmsd(a, b));
        if config.kmedoids_iters > 0 {
            clustering = k_medoids_refine(&frames, &clustering, config.kmedoids_iters, |a, b| {
                rmsd(a, b)
            })
            .0;
        }
        Self::from_clustering(trajs, &frames, clustering, config)
    }

    fn from_clustering(
        trajs: &[Trajectory],
        frames: &[Vec<Vec3>],
        clustering: Clustering,
        config: MsmConfig,
    ) -> MarkovStateModel {
        let n_states = clustering.n_clusters();
        let centers: Vec<Vec<Vec3>> = clustering
            .centers
            .iter()
            .map(|&i| frames[i].clone())
            .collect();

        // Split the pooled assignment back into per-trajectory dtrajs.
        let mut dtrajs = Vec::with_capacity(trajs.len());
        let mut offset = 0;
        for t in trajs {
            dtrajs.push(clustering.assignment[offset..offset + t.len()].to_vec());
            offset += t.len();
        }

        let counts = CountMatrix::from_dtrajs(&dtrajs, n_states, config.lag_frames);
        let active = largest_connected_set(&counts);
        let restricted = counts.restrict(&active);
        let tmatrix = if config.reversible {
            // Maximum-likelihood reversible estimator: its stationary
            // distribution is a true equilibrium estimate even from
            // non-equilibrium adaptive-sampling data (see tmatrix.rs).
            TransitionMatrix::reversible_mle(&restricted, config.prior, 10_000)
        } else {
            TransitionMatrix::from_counts(&restricted, config.prior)
        };
        let stationary = tmatrix.stationary(1e-12, 200_000);

        MarkovStateModel {
            config,
            centers,
            dtrajs,
            counts,
            active,
            tmatrix,
            stationary,
        }
    }

    /// Build a model from pre-clustered parts — the path the *streaming*
    /// adaptive loop uses. The incremental estimator maintains centers,
    /// dtrajs and the count matrix as running deltas
    /// ([`crate::streaming::StreamingMsm`]); estimation from there is
    /// identical to the batch path, so the counts are taken as-is
    /// instead of being recounted from the dtrajs.
    pub fn from_streamed(
        centers: Vec<Vec<Vec3>>,
        dtrajs: Vec<Vec<usize>>,
        counts: CountMatrix,
        config: MsmConfig,
    ) -> MarkovStateModel {
        assert_eq!(
            counts.n_states(),
            centers.len(),
            "count matrix does not match center count"
        );
        let active = largest_connected_set(&counts);
        let restricted = counts.restrict(&active);
        let tmatrix = if config.reversible {
            TransitionMatrix::reversible_mle(&restricted, config.prior, 10_000)
        } else {
            TransitionMatrix::from_counts(&restricted, config.prior)
        };
        let stationary = tmatrix.stationary(1e-12, 200_000);
        MarkovStateModel {
            config,
            centers,
            dtrajs,
            counts,
            active,
            tmatrix,
            stationary,
        }
    }

    pub fn n_states(&self) -> usize {
        self.centers.len()
    }

    pub fn n_active(&self) -> usize {
        self.active.len()
    }

    /// Map an original microstate id to its active-set index, if active.
    pub fn active_index(&self, state: usize) -> Option<usize> {
        self.active.binary_search(&state).ok()
    }

    /// Blind native-state prediction: the active microstate with the
    /// largest equilibrium population. Returns `(original state id,
    /// stationary population, center conformation)`.
    pub fn predict_native(&self) -> (usize, f64, &[Vec3]) {
        let (k, &pop) = self
            .stationary
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("active set is never empty");
        let state = self.active[k];
        (state, pop, &self.centers[state])
    }

    /// Active-set indices of microstates whose centers are within
    /// `cutoff` RMSD of the reference structure (the paper's folded
    /// definition: 3.5 Å of native).
    pub fn states_near(&self, reference: &[Vec3], cutoff: f64) -> Vec<usize> {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, &s)| rmsd(&self.centers[s], reference) <= cutoff)
            .map(|(k, _)| k)
            .collect()
    }

    /// Initial distribution over the active set from the first frames of
    /// all trajectories (frames starting outside the active set are
    /// dropped and the rest renormalized).
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.n_active()];
        let mut total = 0.0;
        for d in &self.dtrajs {
            if let Some(&s0) = d.first() {
                if let Some(k) = self.active_index(s0) {
                    p[k] += 1.0;
                    total += 1.0;
                }
            }
        }
        if total > 0.0 {
            for x in p.iter_mut() {
                *x /= total;
            }
        } else {
            p = vec![1.0 / self.n_active() as f64; self.n_active()];
        }
        p
    }

    /// Implied timescales of the slowest `k` processes at this model's
    /// lag, in units of `frame_time` (the physical time per frame).
    pub fn implied_timescales(&self, k: usize, frame_time: f64) -> Vec<f64> {
        let lag_time = self.config.lag_frames as f64 * frame_time;
        self.tmatrix
            .eigenvalues_reversible(k + 1, &self.stationary)
            .into_iter()
            .skip(1) // λ0 = 1 is the stationary process
            .filter_map(|l| implied_timescale(l, lag_time))
            .collect()
    }

    /// PCCA-style macrostate lumping of the active set: the macrostate id
    /// of each active microstate, at most `n_macro` groups.
    pub fn macrostates(&self, n_macro: usize) -> Vec<usize> {
        crate::lumping::pcca_spectral(&self.tmatrix, &self.stationary, n_macro)
    }

    /// Total stationary population within `cutoff` RMSD of `reference`.
    pub fn equilibrium_population_near(&self, reference: &[Vec3], cutoff: f64) -> f64 {
        self.states_near(reference, cutoff)
            .into_iter()
            .map(|k| self.stationary[k])
            .sum::<f64>()
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::rng::{rng_from_seed, sample_normal};
    use mdsim::vec3::v3;
    use rand::Rng;

    /// Synthesize a two-well "dynamics": frames jitter around one of two
    /// template conformations and hop between them with given rates.
    fn two_well_trajs(
        n_trajs: usize,
        len: usize,
        p_fold: f64,
        p_unfold: f64,
        seed: u64,
    ) -> (Vec<Trajectory>, Vec<Vec3>, Vec<Vec3>) {
        let template_a: Vec<Vec3> = (0..5).map(|i| v3(i as f64 * 2.0, 0.0, 0.0)).collect();
        let template_b: Vec<Vec3> = (0..5)
            .map(|i| v3((i as f64).sin() * 2.0, (i as f64).cos() * 2.0, i as f64))
            .collect();
        let mut rng = rng_from_seed(seed);
        let mut trajs = Vec::new();
        for _ in 0..n_trajs {
            let mut folded = false;
            let mut t = Trajectory::new();
            for k in 0..len {
                let p: f64 = rng.random();
                if !folded && p < p_fold {
                    folded = true;
                } else if folded && p < p_unfold {
                    folded = false;
                }
                let template = if folded { &template_b } else { &template_a };
                let frame: Vec<Vec3> = template
                    .iter()
                    .map(|&x| {
                        x + v3(
                            0.05 * sample_normal(&mut rng),
                            0.05 * sample_normal(&mut rng),
                            0.05 * sample_normal(&mut rng),
                        )
                    })
                    .collect();
                t.push(k as f64, frame);
            }
            trajs.push(t);
        }
        (trajs, template_a, template_b)
    }

    fn build_two_well() -> (MarkovStateModel, Vec<Vec3>, Vec<Vec3>) {
        let (trajs, a, b) = two_well_trajs(10, 200, 0.10, 0.02, 42);
        let msm = MarkovStateModel::build(
            &trajs,
            MsmConfig {
                n_clusters: 10,
                lag_frames: 1,
                prior: 1e-6,
                reversible: true,
                kmedoids_iters: 2,
            },
        );
        (msm, a, b)
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let (msm, _, _) = build_two_well();
        assert_eq!(msm.dtrajs.len(), 10);
        assert!(msm.n_states() <= 10);
        assert!(msm.n_active() >= 2);
        assert!(msm.tmatrix.is_row_stochastic(1e-9));
        let pi_sum: f64 = msm.stationary.iter().sum();
        assert!((pi_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicts_the_deeper_well_blind() {
        // p_fold >> p_unfold ⇒ folded well (template B) dominates at
        // equilibrium; blind prediction must land near B.
        let (msm, a, b) = build_two_well();
        let (_state, pop, center) = msm.predict_native();
        // The folded well is split over several microstates; the largest
        // single one still holds a sizable share.
        assert!(pop > 0.08, "largest stationary population: {pop}");
        let d_b = rmsd(center, &b);
        let d_a = rmsd(center, &a);
        assert!(
            d_b < d_a && d_b < 0.5,
            "blind prediction missed the folded well: d_b = {d_b}, d_a = {d_a}"
        );
    }

    #[test]
    fn equilibrium_population_matches_rates() {
        // Two-state equilibrium: π_folded = p_fold/(p_fold + p_unfold) ≈ 0.83.
        let (msm, _, b) = build_two_well();
        let pop_b = msm.equilibrium_population_near(&b, 0.5);
        assert!(
            (pop_b - 0.833).abs() < 0.12,
            "folded equilibrium population {pop_b}, expected ≈ 0.83"
        );
    }

    #[test]
    fn initial_distribution_reflects_starts() {
        let (msm, a, _) = build_two_well();
        let p0 = msm.initial_distribution();
        assert!((p0.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // All trajectories start unfolded (template A).
        let near_a = msm.states_near(&a, 0.5);
        let mass_a: f64 = near_a.iter().map(|&k| p0[k]).sum();
        assert!(mass_a > 0.9, "initial mass near A: {mass_a}");
    }

    #[test]
    fn implied_timescales_are_positive_and_ordered() {
        let (msm, _, _) = build_two_well();
        let its = msm.implied_timescales(3, 1.5);
        assert!(!its.is_empty());
        for w in its.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "timescales not sorted: {its:?}");
        }
        assert!(its[0] > 0.0);
    }

    #[test]
    fn states_near_finds_both_wells() {
        let (msm, a, b) = build_two_well();
        assert!(!msm.states_near(&a, 0.5).is_empty());
        assert!(!msm.states_near(&b, 0.5).is_empty());
        // Tight cutoff around a far-away fake structure finds nothing.
        let fake: Vec<Vec3> = (0..5).map(|i| v3(0.0, 50.0 + i as f64, 0.0)).collect();
        assert!(msm.states_near(&fake, 0.5).is_empty());
    }

    #[test]
    fn active_index_roundtrip() {
        let (msm, _, _) = build_two_well();
        for (k, &s) in msm.active.iter().enumerate() {
            assert_eq!(msm.active_index(s), Some(k));
        }
    }
}
