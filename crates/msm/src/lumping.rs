//! Macrostate lumping: PCCA-style spectral grouping of microstates.
//!
//! The paper's analysis layer works at the microstate level (10,000
//! clusters), but interpreting a model — "the folded state", "the
//! unfolded basin" — requires grouping kinetically connected microstates
//! into a few metastable macrostates. This module implements a
//! sign/spectral grouping in the slow-eigenvector embedding: metastable
//! sets are well-separated point clouds in the space spanned by the slow
//! right eigenvectors (a PCCA+-lite), so k-centers + k-medoids there
//! recovers them.

use crate::cluster::{k_centers, k_medoids_refine};
use crate::tmatrix::TransitionMatrix;

/// Group microstates into at most `n_macro` macrostates by clustering in
/// the embedding of the slowest `n_macro - 1` non-stationary
/// eigenvectors (each normalized to unit max-abs so every slow process
/// contributes comparably).
///
/// Returns the macrostate id of every microstate, compacted to
/// `0..n_found` with `n_found <= n_macro`.
pub fn pcca_spectral(t: &TransitionMatrix, stationary: &[f64], n_macro: usize) -> Vec<usize> {
    assert!(n_macro >= 1, "need at least one macrostate");
    let n = t.n_states();
    if n_macro == 1 || n <= 1 {
        return vec![0; n];
    }
    let (_vals, vecs) = t.eigen_reversible(n_macro, stationary);

    // Embed: coordinates are the slow eigenvectors (skip the constant
    // stationary eigenvector).
    let mut embedding: Vec<Vec<f64>> = vec![Vec::with_capacity(n_macro - 1); n];
    for v in vecs.iter().skip(1).take(n_macro - 1) {
        let scale = v.iter().fold(0.0f64, |a, &x| a.max(x.abs())).max(1e-300);
        for (i, &x) in v.iter().enumerate() {
            embedding[i].push(x / scale);
        }
    }

    let euclid = |a: &Vec<f64>, b: &Vec<f64>| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let initial = k_centers(&embedding, n_macro, 0, euclid);
    let (clustering, _) = k_medoids_refine(&embedding, &initial, 50, euclid);

    // Compact ids (a refined cluster can in principle end up empty).
    let mut remap = vec![usize::MAX; clustering.n_clusters()];
    let mut next = 0;
    let mut assignment = Vec::with_capacity(n);
    for &c in &clustering.assignment {
        if remap[c] == usize::MAX {
            remap[c] = next;
            next += 1;
        }
        assignment.push(remap[c]);
    }
    assignment
}

/// Aggregate a microstate distribution onto macrostates.
pub fn lump_distribution(p: &[f64], assignment: &[usize]) -> Vec<f64> {
    assert_eq!(p.len(), assignment.len());
    let n_macro = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut out = vec![0.0; n_macro];
    for (&x, &m) in p.iter().zip(assignment) {
        out[m] += x;
    }
    out
}

/// Coarse-grained transition matrix between macrostates:
/// `T_AB = Σ_{i∈A, j∈B} π_i T_ij / Σ_{i∈A} π_i`.
pub fn lump_transition_matrix(
    t: &TransitionMatrix,
    stationary: &[f64],
    assignment: &[usize],
) -> TransitionMatrix {
    let n = t.n_states();
    assert_eq!(assignment.len(), n);
    let n_macro = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let mut rows = vec![vec![0.0; n_macro]; n_macro];
    let mut weight = vec![0.0; n_macro];
    for i in 0..n {
        let a = assignment[i];
        weight[a] += stationary[i];
        for j in 0..n {
            rows[a][assignment[j]] += stationary[i] * t.get(i, j);
        }
    }
    for (row, &w) in rows.iter_mut().zip(&weight) {
        if w > 0.0 {
            for x in row.iter_mut() {
                *x /= w;
            }
        } else {
            // Empty macrostate cannot occur with compacted assignments,
            // but keep the matrix stochastic regardless.
            row.iter_mut().enumerate().for_each(|(k, x)| {
                *x = if k == 0 { 1.0 } else { 0.0 };
            });
        }
    }
    TransitionMatrix::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four microstates, two wells: {0,1} and {2,3}. Fast mixing within
    /// wells, slow exchange between them.
    fn two_well() -> TransitionMatrix {
        let fast = 0.3;
        let slow = 0.01;
        TransitionMatrix::from_rows(vec![
            vec![1.0 - fast - slow, fast, slow, 0.0],
            vec![fast, 1.0 - fast - slow, 0.0, slow],
            vec![slow, 0.0, 1.0 - fast - slow, fast],
            vec![0.0, slow, fast, 1.0 - fast - slow],
        ])
    }

    #[test]
    fn two_well_lumps_into_two_macrostates() {
        let t = two_well();
        let pi = t.stationary(1e-14, 500_000);
        let lump = pcca_spectral(&t, &pi, 2);
        assert_eq!(lump.len(), 4);
        assert_eq!(lump[0], lump[1], "states 0,1 share a well");
        assert_eq!(lump[2], lump[3], "states 2,3 share a well");
        assert_ne!(lump[0], lump[2], "the two wells are distinct");
    }

    #[test]
    fn single_macrostate_is_trivial() {
        let t = two_well();
        let pi = t.stationary(1e-14, 500_000);
        assert_eq!(pcca_spectral(&t, &pi, 1), vec![0; 4]);
    }

    #[test]
    fn lumped_distribution_conserves_mass() {
        let t = two_well();
        let pi = t.stationary(1e-14, 500_000);
        let lump = pcca_spectral(&t, &pi, 2);
        let macro_pi = lump_distribution(&pi, &lump);
        assert!((macro_pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Symmetric wells: each holds half the population.
        for &x in &macro_pi {
            assert!((x - 0.5).abs() < 1e-6, "macro population {x}");
        }
    }

    #[test]
    fn lumped_matrix_is_stochastic_and_metastable() {
        let t = two_well();
        let pi = t.stationary(1e-14, 500_000);
        let lump = pcca_spectral(&t, &pi, 2);
        let tm = lump_transition_matrix(&t, &pi, &lump);
        assert_eq!(tm.n_states(), 2);
        assert!(tm.is_row_stochastic(1e-9));
        // Metastability: the diagonal dominates.
        assert!(tm.get(0, 0) > 0.9);
        assert!(tm.get(1, 1) > 0.9);
        // Inter-well rate ≈ the slow rate.
        assert!(
            (tm.get(0, 1) - 0.01).abs() < 5e-3,
            "lumped rate {}",
            tm.get(0, 1)
        );
    }

    #[test]
    fn three_well_chain_lumps_into_three() {
        // 6 microstates in 3 wells along a chain.
        let f = 0.3;
        let s = 0.005;
        let t = TransitionMatrix::from_rows(vec![
            vec![1.0 - f, f, 0.0, 0.0, 0.0, 0.0],
            vec![f, 1.0 - f - s, s, 0.0, 0.0, 0.0],
            vec![0.0, s, 1.0 - f - s, f, 0.0, 0.0],
            vec![0.0, 0.0, f, 1.0 - f - s, s, 0.0],
            vec![0.0, 0.0, 0.0, s, 1.0 - f - s, f],
            vec![0.0, 0.0, 0.0, 0.0, f, 1.0 - f],
        ]);
        let pi = t.stationary(1e-14, 1_000_000);
        let lump = pcca_spectral(&t, &pi, 3);
        assert_eq!(lump[0], lump[1]);
        assert_eq!(lump[2], lump[3]);
        assert_eq!(lump[4], lump[5]);
        let distinct: std::collections::BTreeSet<usize> = lump.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "three wells expected: {lump:?}");
    }
}
