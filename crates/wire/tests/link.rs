//! Loopback integration tests for the supervised link: handshake,
//! traffic, reconnect-with-replay, and malformed-frame hygiene.

use copernicus_telemetry::{names, Registry};
use copernicus_wire::{
    auth, frame, AuthKey, ConnectError, LinkStats, ListenerConfig, ReconnectPolicy, RecvError,
    WireClient, WireEvent, WireListener,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn test_policy() -> ReconnectPolicy {
    ReconnectPolicy {
        max_attempts: 10,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
    }
}

fn quick_listener_config() -> ListenerConfig {
    ListenerConfig {
        idle_timeout: Duration::from_secs(5),
        handshake_timeout: Duration::from_secs(2),
        ..ListenerConfig::default()
    }
}

fn wait_event(listener: &WireListener, what: &str) -> WireEvent {
    listener
        .recv_timeout(Duration::from_secs(5))
        .unwrap_or_else(|| panic!("timed out waiting for {what}"))
}

/// Drain events until one matches `pick`, failing after a deadline.
fn wait_for<T>(
    listener: &WireListener,
    what: &str,
    mut pick: impl FnMut(WireEvent) -> Option<T>,
) -> T {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Some(ev) = listener.recv_timeout(Duration::from_millis(200)) {
            if let Some(out) = pick(ev) {
                return out;
            }
        }
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn frames_flow_both_ways() {
    let key = AuthKey::from_passphrase("pool");
    let listener = WireListener::bind(
        "127.0.0.1:0",
        key,
        quick_listener_config(),
        LinkStats::detached(),
    )
    .unwrap();
    let addr = listener.local_addr().to_string();
    let client = WireClient::connect(&addr, key, test_policy(), LinkStats::detached()).unwrap();

    let conn = wait_for(&listener, "Connected", |ev| match ev {
        WireEvent::Connected { conn, session, .. } => {
            assert_eq!(session, client.session_id());
            Some(conn)
        }
        _ => None,
    });

    client.send(b"request-work").unwrap();
    let payload = wait_for(&listener, "Frame", |ev| match ev {
        WireEvent::Frame { payload, .. } => Some(payload),
        _ => None,
    });
    assert_eq!(payload, b"request-work");

    listener.send(conn, b"workload").unwrap();
    let got = client.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(got, b"workload");
}

#[test]
fn recv_timeout_on_idle_link_is_clean() {
    let key = AuthKey::from_passphrase("idle");
    let listener = WireListener::bind(
        "127.0.0.1:0",
        key,
        quick_listener_config(),
        LinkStats::detached(),
    )
    .unwrap();
    let addr = listener.local_addr().to_string();
    let client = WireClient::connect(&addr, key, test_policy(), LinkStats::detached()).unwrap();
    match client.recv_timeout(Duration::from_millis(100)) {
        Err(RecvError::Timeout) => {}
        other => panic!("expected clean timeout, got {other:?}"),
    }
    // The link is still healthy afterwards.
    client.send(b"still here").unwrap();
    wait_for(&listener, "Frame after timeout", |ev| match ev {
        WireEvent::Frame { payload, .. } => {
            assert_eq!(payload, b"still here");
            Some(())
        }
        _ => None,
    });
}

#[test]
fn bad_key_is_rejected_at_handshake() {
    let reg = Registry::new();
    let listener = WireListener::bind(
        "127.0.0.1:0",
        AuthKey::from_passphrase("right"),
        quick_listener_config(),
        LinkStats::new(&reg, "listener", "server"),
    )
    .unwrap();
    let addr = listener.local_addr().to_string();
    let err = WireClient::connect(
        &addr,
        AuthKey::from_passphrase("wrong"),
        test_policy(),
        LinkStats::detached(),
    )
    .err()
    .expect("wrong key must not connect");
    assert!(matches!(err, ConnectError::Auth(_)), "{err}");
    match wait_event(&listener, "AuthFailed") {
        WireEvent::AuthFailed { .. } => {}
        other => panic!("expected AuthFailed, got {other:?}"),
    }
    assert_eq!(reg.counter_total(names::WIRE_AUTH_FAILURES), 1);
}

#[test]
fn kicked_client_reconnects_and_replays_session() {
    let reg = Registry::new();
    let key = AuthKey::from_passphrase("replay");
    let listener = WireListener::bind(
        "127.0.0.1:0",
        key,
        quick_listener_config(),
        LinkStats::detached(),
    )
    .unwrap();
    let addr = listener.local_addr().to_string();
    let client = WireClient::connect(
        &addr,
        key,
        test_policy(),
        LinkStats::new(&reg, &addr, "client"),
    )
    .unwrap();

    client.send_session(b"announce:w1").unwrap();
    let first_conn = wait_for(&listener, "first Connected", |ev| match ev {
        WireEvent::Connected { conn, .. } => Some(conn),
        _ => None,
    });
    wait_for(&listener, "announce frame", |ev| match ev {
        WireEvent::Frame { payload, .. } => {
            assert_eq!(payload, b"announce:w1");
            Some(())
        }
        _ => None,
    });

    // Partition: server kills the socket mid-session.
    listener.kick(first_conn);

    // The client notices on its next receive, redials, and replays the
    // registered announce; the caller sees `Reconnected` exactly once.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut reconnected = false;
    while Instant::now() < deadline && !reconnected {
        match client.recv_timeout(Duration::from_millis(200)) {
            Err(RecvError::Reconnected) => reconnected = true,
            Err(RecvError::Timeout) => {}
            other => panic!("unexpected recv outcome {other:?}"),
        }
    }
    assert!(reconnected, "client never observed the reconnect");

    let second_conn = wait_for(&listener, "second Connected", |ev| match ev {
        WireEvent::Connected { conn, .. } => Some(conn),
        _ => None,
    });
    assert_ne!(first_conn, second_conn);
    wait_for(&listener, "replayed announce", |ev| match ev {
        WireEvent::Frame { conn, payload } => {
            assert_eq!(conn, second_conn);
            assert_eq!(payload, b"announce:w1");
            Some(())
        }
        _ => None,
    });
    assert_eq!(reg.counter_total(names::WIRE_RECONNECTS), 1);

    // And the fresh link carries traffic both ways.
    client.send(b"after-reconnect").unwrap();
    wait_for(&listener, "post-reconnect frame", |ev| match ev {
        WireEvent::Frame { payload, .. } => (payload == b"after-reconnect").then_some(()),
        _ => None,
    });
    listener.send(second_conn, b"welcome back").unwrap();
    assert_eq!(
        client.recv_timeout(Duration::from_secs(5)).unwrap(),
        b"welcome back"
    );
}

#[test]
fn oversized_frame_drops_the_connection() {
    let key = AuthKey::from_passphrase("hygiene");
    let config = ListenerConfig {
        max_frame: 1024,
        ..quick_listener_config()
    };
    let listener = WireListener::bind("127.0.0.1:0", key, config, LinkStats::detached()).unwrap();
    let addr = listener.local_addr();

    // Handshake honestly, then turn hostile: a length prefix far above
    // the cap.
    let mut stream = TcpStream::connect(addr).unwrap();
    auth::client_handshake(&mut stream, &key).unwrap();
    let conn = wait_for(&listener, "Connected", |ev| match ev {
        WireEvent::Connected { conn, .. } => Some(conn),
        _ => None,
    });
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();

    let reason = wait_for(&listener, "Disconnected", |ev| match ev {
        WireEvent::Disconnected { conn: c, reason } => {
            assert_eq!(c, conn);
            Some(reason)
        }
        _ => None,
    });
    assert!(reason.contains("exceeds"), "reason was: {reason}");
    // The listener thread survived: a fresh client still works.
    let client =
        WireClient::connect(&addr.to_string(), key, test_policy(), LinkStats::detached()).unwrap();
    client.send(b"ok").unwrap();
    wait_for(&listener, "frame from fresh client", |ev| match ev {
        WireEvent::Frame { payload, .. } => (payload == b"ok").then_some(()),
        _ => None,
    });
}

#[test]
fn mid_frame_disconnect_is_reported_not_fatal() {
    let key = AuthKey::from_passphrase("hygiene2");
    let listener = WireListener::bind(
        "127.0.0.1:0",
        key,
        quick_listener_config(),
        LinkStats::detached(),
    )
    .unwrap();
    let addr = listener.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    auth::client_handshake(&mut stream, &key).unwrap();
    let conn = wait_for(&listener, "Connected", |ev| match ev {
        WireEvent::Connected { conn, .. } => Some(conn),
        _ => None,
    });
    // Promise 100 bytes, deliver 10, vanish.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[9u8; 10]).unwrap();
    stream.flush().unwrap();
    drop(stream);

    wait_for(&listener, "Disconnected", |ev| match ev {
        WireEvent::Disconnected { conn: c, .. } => {
            assert_eq!(c, conn);
            Some(())
        }
        _ => None,
    });
}

#[test]
fn truncated_handshake_times_out_without_wedging() {
    let key = AuthKey::from_passphrase("stall");
    let config = ListenerConfig {
        handshake_timeout: Duration::from_millis(200),
        ..quick_listener_config()
    };
    let listener = WireListener::bind("127.0.0.1:0", key, config, LinkStats::detached()).unwrap();
    let addr = listener.local_addr();

    // Connect and send half a hello, then go silent.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(&[0u8, 0]).unwrap();
    stream.flush().unwrap();

    match wait_event(&listener, "AuthFailed for stalled handshake") {
        WireEvent::AuthFailed { .. } => {}
        other => panic!("expected AuthFailed, got {other:?}"),
    }
    // The accept loop is alive: a real client connects fine.
    let client =
        WireClient::connect(&addr.to_string(), key, test_policy(), LinkStats::detached()).unwrap();
    assert!(!client.is_closed());
}

#[test]
fn two_clients_are_kept_apart() {
    let key = AuthKey::from_passphrase("multi");
    let listener = WireListener::bind(
        "127.0.0.1:0",
        key,
        quick_listener_config(),
        LinkStats::detached(),
    )
    .unwrap();
    let addr = listener.local_addr().to_string();
    let a = WireClient::connect(&addr, key, test_policy(), LinkStats::detached()).unwrap();
    let b = WireClient::connect(&addr, key, test_policy(), LinkStats::detached()).unwrap();
    assert_ne!(a.session_id(), b.session_id());

    a.send(b"from-a").unwrap();
    b.send(b"from-b").unwrap();

    let mut conn_a = None;
    let mut conn_b = None;
    let deadline = Instant::now() + Duration::from_secs(5);
    while (conn_a.is_none() || conn_b.is_none()) && Instant::now() < deadline {
        match listener.recv_timeout(Duration::from_millis(200)) {
            Some(WireEvent::Frame { conn, payload }) => {
                if payload == b"from-a" {
                    conn_a = Some(conn);
                } else if payload == b"from-b" {
                    conn_b = Some(conn);
                }
            }
            _ => {}
        }
    }
    let (conn_a, conn_b) = (conn_a.expect("a's frame"), conn_b.expect("b's frame"));
    assert_ne!(conn_a, conn_b);

    listener.send(conn_a, b"to-a").unwrap();
    listener.send(conn_b, b"to-b").unwrap();
    assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap(), b"to-a");
    assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap(), b"to-b");
}

#[test]
fn frame_constants_are_sane() {
    // The framing overhead the stats layer accounts for matches the
    // writer's actual output.
    let mut buf = Vec::new();
    frame::write_frame(&mut buf, b"xyz").unwrap();
    assert_eq!(buf.len(), frame::HEADER_LEN + 3);
}
