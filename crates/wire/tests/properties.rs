//! Seeded property-style tests for the framing layer: random payload
//! sizes, arbitrarily chunked partial reads, truncations and bit flips
//! must all either round-trip exactly or fail with a clean `io::Error`
//! — never panic, never mis-frame.
//!
//! No fuzzing dependency: a splitmix64 generator drives everything,
//! and the seed comes from `COPERNICUS_TEST_SEED` so CI can sweep a
//! matrix of seeds while any failure stays reproducible.

use copernicus_wire::frame::{
    encode_frame, read_frame, read_frame_limited, write_frame, FrameDecoder, WriteQueue,
    HEADER_LEN, MAX_FRAME,
};
use std::io::{self, Cursor, Read, Write};

/// Deterministic generator (splitmix64): good distribution, no deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixpoint without disturbing other seeds.
        Rng(seed ^ 0x9e3779b97f4a7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = self.0;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// Uniform-ish value in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

fn seed() -> u64 {
    std::env::var("COPERNICUS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// A reader that hands out the underlying bytes in random-sized chunks
/// (including zero-byte reads), modelling TCP's freedom to fragment a
/// stream arbitrarily.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    rng: Rng,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let available = self.data.len() - self.pos;
        let n = 1 + self.rng.below(buf.len().min(available).min(7));
        let n = n.min(available);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Frame a batch of random payloads back-to-back.
fn framed_batch(rng: &mut Rng, count: usize, max_len: usize) -> (Vec<Vec<u8>>, Vec<u8>) {
    let mut payloads = Vec::with_capacity(count);
    let mut stream = Vec::new();
    for _ in 0..count {
        let len = rng.below(max_len + 1);
        let payload = rng.bytes(len);
        write_frame(&mut stream, &payload).expect("payload within MAX_FRAME");
        payloads.push(payload);
    }
    (payloads, stream)
}

#[test]
fn random_payloads_roundtrip_through_fragmented_reads() {
    let mut rng = Rng::new(seed());
    for round in 0..20 {
        let (payloads, stream) = framed_batch(&mut rng, 8, 4096);
        let mut reader = ChunkedReader {
            data: stream,
            pos: 0,
            rng: Rng::new(seed().wrapping_add(round)),
        };
        for (i, expected) in payloads.iter().enumerate() {
            let got = read_frame(&mut reader)
                .unwrap_or_else(|e| panic!("round {round} frame {i} failed: {e}"));
            assert_eq!(&got, expected, "round {round} frame {i} corrupted");
        }
        // The stream is exactly consumed: one more read is clean EOF.
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

/// A writer with a byte budget: accepts exactly `budget` bytes, then
/// reports `WouldBlock` — the socket model for the nonblocking write
/// path ([`WriteQueue::flush`] must remember its offset and resume).
struct BudgetWriter {
    data: Vec<u8>,
    budget: usize,
}

impl Write for BudgetWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.budget);
        self.budget -= n;
        self.data.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Drain `queue` through a writer that blocks after exactly `split`
/// bytes, then takes the rest; returns the bytes the "socket" saw.
fn drain_split(mut queue: WriteQueue, split: usize, total: usize) -> Vec<u8> {
    let mut w = BudgetWriter {
        data: Vec::new(),
        budget: split,
    };
    let drained = queue.flush(&mut w).expect("no real IO to fail");
    assert_eq!(drained, split >= total, "split {split}/{total}");
    assert_eq!(queue.queued_bytes(), total - w.data.len());
    w.budget = usize::MAX;
    assert!(queue.flush(&mut w).expect("no real IO to fail"));
    assert_eq!(queue.queued_bytes(), 0);
    w.data
}

#[test]
fn every_byte_boundary_through_the_nonblocking_writer_reassembles_exactly() {
    let mut rng = Rng::new(seed().rotate_left(7));
    // Small payloads (including empty) so the exhaustive boundary sweep
    // stays cheap while still crossing header/payload and frame/frame
    // boundaries many times.
    let payloads: Vec<Vec<u8>> = (0..6)
        .map(|_| {
            let len = rng.below(48);
            rng.bytes(len)
        })
        .collect();
    let total: usize = payloads.iter().map(|p| HEADER_LEN + p.len()).sum();
    let expected: Vec<u8> = payloads
        .iter()
        .flat_map(|p| encode_frame(p).expect("within MAX_FRAME"))
        .collect();

    // Interrupt the writer at every byte boundary of the stream; the
    // resumed queue must emit the identical bytes, and a decoder fed
    // the two fragments must reassemble every frame byte-exactly.
    for split in 0..=total {
        let mut queue = WriteQueue::new();
        for p in &payloads {
            queue.push(encode_frame(p).expect("within MAX_FRAME"));
        }
        let wire = drain_split(queue, split, total);
        assert_eq!(wire, expected, "split {split}: bytes diverged");

        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for fragment in [&wire[..split], &wire[split..]] {
            dec.extend(fragment);
            while let Some(f) = dec.next_frame().expect("stream is valid") {
                out.push(f);
            }
        }
        assert_eq!(out, payloads, "split {split}: frames diverged");
        assert_eq!(dec.pending(), 0, "split {split}: leftover bytes");
    }
}

#[test]
fn single_byte_dribble_survives_writer_and_decoder_in_lockstep() {
    let mut rng = Rng::new(seed().rotate_left(11));
    for round in 0..8 {
        let payloads: Vec<Vec<u8>> = (0..4)
            .map(|_| {
                let len = rng.below(200);
                rng.bytes(len)
            })
            .collect();
        let mut queue = WriteQueue::new();
        for p in &payloads {
            queue.push(encode_frame(p).expect("within MAX_FRAME"));
        }
        // The cruellest socket: one byte per writability event. Each
        // byte is handed straight to the decoder, interleaving partial
        // writes with partial reads exactly as the event loop would.
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        while !queue.is_empty() {
            let mut w = BudgetWriter {
                data: Vec::new(),
                budget: 1,
            };
            queue.flush(&mut w).expect("no real IO to fail");
            assert_eq!(w.data.len(), 1, "round {round}: writer made no progress");
            dec.extend(&w.data);
            while let Some(f) = dec.next_frame().expect("stream is valid") {
                out.push(f);
            }
        }
        assert_eq!(out, payloads, "round {round}");
        assert_eq!(dec.pending(), 0, "round {round}");
    }
}

#[test]
fn random_truncations_error_cleanly_and_preserve_earlier_frames() {
    let mut rng = Rng::new(seed().rotate_left(17));
    for round in 0..40 {
        let (payloads, stream) = framed_batch(&mut rng, 4, 512);
        if stream.is_empty() {
            continue;
        }
        // Cut the stream anywhere strictly inside it.
        let cut = rng.below(stream.len());
        let mut cursor = Cursor::new(stream[..cut].to_vec());
        let mut recovered = 0usize;
        let err = loop {
            match read_frame(&mut cursor) {
                Ok(payload) => {
                    assert_eq!(
                        payload, payloads[recovered],
                        "round {round}: frame {recovered} before the cut must survive"
                    );
                    recovered += 1;
                }
                Err(e) => break e,
            }
        };
        // Truncation mid-prefix or mid-payload is always EOF; the data
        // itself was valid, so InvalidData would be a framing bug.
        assert_eq!(
            err.kind(),
            io::ErrorKind::UnexpectedEof,
            "round {round} cut at {cut}: {err}"
        );
        assert!(
            recovered < payloads.len(),
            "round {round}: a strict truncation cannot yield every frame"
        );
    }
}

#[test]
fn bit_flips_decode_or_error_and_never_overallocate() {
    let mut rng = Rng::new(seed().rotate_left(33));
    for round in 0..60 {
        let (_, mut stream) = framed_batch(&mut rng, 3, 256);
        // Flip one random bit — header or payload, the reader can't tell.
        let byte = rng.below(stream.len());
        let bit = rng.below(8);
        stream[byte] ^= 1 << bit;
        let total = stream.len();
        let mut cursor = Cursor::new(stream);
        loop {
            match read_frame(&mut cursor) {
                Ok(payload) => {
                    // A flipped length prefix may legally re-frame the
                    // stream, but never past the cap or the data.
                    assert!(payload.len() <= MAX_FRAME, "round {round}");
                    assert!(payload.len() <= total, "round {round}");
                }
                Err(e) => {
                    assert!(
                        matches!(
                            e.kind(),
                            io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                        ),
                        "round {round}: unexpected error kind {e}"
                    );
                    break;
                }
            }
            if cursor.position() as usize >= total {
                break;
            }
        }
    }
}

#[test]
fn random_header_garbage_respects_explicit_cap() {
    let mut rng = Rng::new(seed().rotate_left(47));
    const CAP: usize = 1024;
    for round in 0..100 {
        // A wholly random stream: the 4-byte prefix is garbage more
        // often than not. The limited reader must either produce a
        // payload within the cap or fail cleanly.
        let len = HEADER_LEN + rng.below(2 * CAP);
        let stream = rng.bytes(len);
        let mut cursor = Cursor::new(stream);
        match read_frame_limited(&mut cursor, CAP) {
            Ok(payload) => assert!(payload.len() <= CAP, "round {round}"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
                ),
                "round {round}: {e}"
            ),
        }
    }
}
