//! Pre-shared-key challenge–response handshake.
//!
//! Stand-in for the paper's SSL key exchange (§2.2: links become usable
//! only after an explicit, user-initiated key exchange). Both ends hold
//! the same 32-byte key; neither ever sends it. The transcript is three
//! frames:
//!
//! ```text
//! client → server   MAGIC ‖ client_nonce(32)
//! server → client   server_nonce(32) ‖ HMAC(key, "server" ‖ cn ‖ sn)
//! client → server   HMAC(key, "client" ‖ cn ‖ sn)
//! ```
//!
//! The server proves key possession first (so a worker never talks to
//! an impostor server), then the client proves its own. Role strings in
//! the MAC input prevent reflection (echoing the server's MAC back as
//! the client proof). Both sides derive the same `session_id` from the
//! nonces, giving freshly connected workers a collision-resistant
//! identity without a shared id allocator.
//!
//! **Not production crypto**: no forward secrecy, no rekeying, traffic
//! after the handshake is authenticated only by TCP's weak integrity.
//! It replaces the in-process trust of crossbeam channels with the
//! paper's *shape* of link authentication, nothing more.

use crate::frame;
use crate::hash;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Protocol magic + version. Bump the trailing digit on incompatible
/// frame-format changes.
pub const MAGIC: &[u8; 8] = b"CPNWIRE1";

pub const NONCE_LEN: usize = 32;
pub const MAC_LEN: usize = 32;

/// A 32-byte pre-shared link key.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AuthKey(pub [u8; 32]);

impl AuthKey {
    /// Derive a key from a passphrase (what the CLI's `--key` takes).
    pub fn from_passphrase(phrase: &str) -> AuthKey {
        AuthKey(hash::sha256(phrase.as_bytes()))
    }
}

impl fmt::Debug for AuthKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never leak key material through Debug-formatted logs.
        write!(f, "AuthKey(…)")
    }
}

/// Why a handshake was refused.
#[derive(Debug)]
pub enum AuthError {
    Io(io::Error),
    /// First frame did not start with [`MAGIC`] — not a wire peer, or a
    /// version mismatch.
    BadMagic,
    /// MAC verification failed: the peer holds a different key.
    BadKey,
    /// Frame sizes didn't match the protocol transcript.
    Malformed,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Io(e) => write!(f, "handshake i/o: {e}"),
            AuthError::BadMagic => write!(f, "bad protocol magic"),
            AuthError::BadKey => write!(f, "pre-shared key mismatch"),
            AuthError::Malformed => write!(f, "malformed handshake frame"),
        }
    }
}

impl std::error::Error for AuthError {}

impl From<io::Error> for AuthError {
    fn from(e: io::Error) -> Self {
        AuthError::Io(e)
    }
}

/// The result of a successful handshake.
#[derive(Debug, Clone, Copy)]
pub struct Session {
    /// Derived identically on both ends from the key and both nonces.
    pub session_id: u64,
}

static NONCE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh 32-byte nonce. Uniqueness (process id + monotonic counter +
/// nanosecond clock + ASLR, hashed) is what the protocol needs;
/// unpredictability is best-effort since this is not production crypto.
pub fn fresh_nonce() -> [u8; NONCE_LEN] {
    let mut seed = Vec::with_capacity(64);
    seed.extend_from_slice(&NONCE_COUNTER.fetch_add(1, Ordering::Relaxed).to_be_bytes());
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    seed.extend_from_slice(&now.as_nanos().to_be_bytes());
    seed.extend_from_slice(&std::process::id().to_be_bytes());
    let stack_marker = 0u8;
    seed.extend_from_slice(&(&stack_marker as *const u8 as usize).to_be_bytes());
    hash::sha256(&seed)
}

fn transcript_mac(key: &AuthKey, role: &[u8], cn: &[u8], sn: &[u8]) -> [u8; MAC_LEN] {
    let mut msg = Vec::with_capacity(role.len() + cn.len() + sn.len());
    msg.extend_from_slice(role);
    msg.extend_from_slice(cn);
    msg.extend_from_slice(sn);
    hash::hmac_sha256(&key.0, &msg)
}

fn derive_session_id(key: &AuthKey, cn: &[u8], sn: &[u8]) -> u64 {
    let mac = transcript_mac(key, b"session", cn, sn);
    u64::from_be_bytes(mac[..8].try_into().unwrap())
}

/// Run the client leg of the handshake on a fresh stream.
pub fn client_handshake<S: Read + Write>(
    stream: &mut S,
    key: &AuthKey,
) -> Result<Session, AuthError> {
    let client_nonce = fresh_nonce();
    let mut hello = Vec::with_capacity(MAGIC.len() + NONCE_LEN);
    hello.extend_from_slice(MAGIC);
    hello.extend_from_slice(&client_nonce);
    frame::write_frame(stream, &hello)?;

    let challenge = frame::read_frame(stream)?;
    if challenge.len() != NONCE_LEN + MAC_LEN {
        return Err(AuthError::Malformed);
    }
    let (server_nonce, server_mac) = challenge.split_at(NONCE_LEN);
    let expected = transcript_mac(key, b"server", &client_nonce, server_nonce);
    if !hash::ct_eq(server_mac, &expected) {
        return Err(AuthError::BadKey);
    }

    let proof = transcript_mac(key, b"client", &client_nonce, server_nonce);
    frame::write_frame(stream, &proof)?;
    Ok(Session {
        session_id: derive_session_id(key, &client_nonce, server_nonce),
    })
}

/// Run the server leg of the handshake on a freshly accepted stream.
pub fn server_handshake<S: Read + Write>(
    stream: &mut S,
    key: &AuthKey,
) -> Result<Session, AuthError> {
    let hello = frame::read_frame(stream)?;
    if hello.len() != MAGIC.len() + NONCE_LEN {
        return Err(AuthError::Malformed);
    }
    if &hello[..MAGIC.len()] != MAGIC {
        return Err(AuthError::BadMagic);
    }
    let client_nonce = &hello[MAGIC.len()..];

    let server_nonce = fresh_nonce();
    let mut challenge = Vec::with_capacity(NONCE_LEN + MAC_LEN);
    challenge.extend_from_slice(&server_nonce);
    challenge.extend_from_slice(&transcript_mac(key, b"server", client_nonce, &server_nonce));
    frame::write_frame(stream, &challenge)?;

    let proof = frame::read_frame(stream)?;
    let expected = transcript_mac(key, b"client", client_nonce, &server_nonce);
    if !hash::ct_eq(&proof, &expected) {
        return Err(AuthError::BadKey);
    }
    Ok(Session {
        session_id: derive_session_id(key, client_nonce, &server_nonce),
    })
}

// ---------------------------------------------------------------------
// Frame-driven server handshake (event-loop form)
// ---------------------------------------------------------------------

/// What the state machine wants after absorbing one handshake frame.
#[derive(Debug)]
pub enum HandshakeStep {
    /// Queue this frame payload for the client and keep feeding.
    Reply(Vec<u8>),
    /// Handshake complete; the connection is authenticated.
    Complete(Session),
}

enum HandshakeState {
    AwaitHello,
    AwaitProof {
        expected: [u8; MAC_LEN],
        session_id: u64,
    },
    Done,
}

/// The server leg of the handshake as a state machine over whole
/// frames, for the event loop: no thread ever blocks mid-transcript,
/// and the handshake deadline is a timer-wheel entry instead of a
/// `set_read_timeout`. Same transcript, same errors as
/// [`server_handshake`].
pub struct ServerHandshake {
    key: AuthKey,
    state: HandshakeState,
}

impl ServerHandshake {
    pub fn new(key: AuthKey) -> ServerHandshake {
        ServerHandshake {
            key,
            state: HandshakeState::AwaitHello,
        }
    }

    /// Feed one inbound frame payload. Errors mean the connection must
    /// be dropped (with an auth-failure event).
    pub fn on_frame(&mut self, payload: &[u8]) -> Result<HandshakeStep, AuthError> {
        match &self.state {
            HandshakeState::AwaitHello => {
                if payload.len() != MAGIC.len() + NONCE_LEN {
                    return Err(AuthError::Malformed);
                }
                if &payload[..MAGIC.len()] != MAGIC {
                    return Err(AuthError::BadMagic);
                }
                let client_nonce = &payload[MAGIC.len()..];
                let server_nonce = fresh_nonce();
                let mut challenge = Vec::with_capacity(NONCE_LEN + MAC_LEN);
                challenge.extend_from_slice(&server_nonce);
                challenge.extend_from_slice(&transcript_mac(
                    &self.key,
                    b"server",
                    client_nonce,
                    &server_nonce,
                ));
                self.state = HandshakeState::AwaitProof {
                    expected: transcript_mac(&self.key, b"client", client_nonce, &server_nonce),
                    session_id: derive_session_id(&self.key, client_nonce, &server_nonce),
                };
                Ok(HandshakeStep::Reply(challenge))
            }
            HandshakeState::AwaitProof {
                expected,
                session_id,
            } => {
                if !hash::ct_eq(payload, expected) {
                    return Err(AuthError::BadKey);
                }
                let session = Session {
                    session_id: *session_id,
                };
                self.state = HandshakeState::Done;
                Ok(HandshakeStep::Complete(session))
            }
            HandshakeState::Done => Err(AuthError::Malformed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Run the two handshake legs over a real loopback socket pair.
    fn run_handshake(
        client_key: AuthKey,
        server_key: AuthKey,
    ) -> (Result<Session, AuthError>, Result<Session, AuthError>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            server_handshake(&mut stream, &server_key)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let client_res = client_handshake(&mut stream, &client_key);
        // Close the client socket before joining: on a rejected
        // handshake the server is still blocked reading the proof frame
        // and needs the EOF to give up.
        drop(stream);
        (client_res, server.join().unwrap())
    }

    #[test]
    fn matching_keys_agree_on_session_id() {
        let key = AuthKey::from_passphrase("villin-fold");
        let (c, s) = run_handshake(key, key);
        let c = c.expect("client side accepted");
        let s = s.expect("server side accepted");
        assert_eq!(c.session_id, s.session_id);
    }

    #[test]
    fn fresh_nonces_give_fresh_session_ids() {
        let key = AuthKey::from_passphrase("villin-fold");
        let (a, _) = run_handshake(key, key);
        let (b, _) = run_handshake(key, key);
        assert_ne!(a.unwrap().session_id, b.unwrap().session_id);
    }

    #[test]
    fn mismatched_key_is_rejected_by_client_first() {
        // The *server* proves itself first, so a client with the wrong
        // key detects the mismatch in the challenge frame.
        let (c, s) = run_handshake(
            AuthKey::from_passphrase("right"),
            AuthKey::from_passphrase("wrong"),
        );
        assert!(matches!(c, Err(AuthError::BadKey)), "client: {c:?}");
        // The server sees either a dropped connection or a bad proof.
        assert!(s.is_err());
    }

    #[test]
    fn garbage_magic_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let key = AuthKey::from_passphrase("k");
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            server_handshake(&mut stream, &key)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut bogus = Vec::new();
        bogus.extend_from_slice(b"GETHTTP1");
        bogus.extend_from_slice(&[0u8; NONCE_LEN]);
        frame::write_frame(&mut stream, &bogus).unwrap();
        assert!(matches!(server.join().unwrap(), Err(AuthError::BadMagic)));
    }

    #[test]
    fn reflection_attack_fails() {
        // An attacker without the key echoing the server's own MAC back
        // as the client proof must be rejected (role strings differ).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let key = AuthKey::from_passphrase("secret");
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            server_handshake(&mut stream, &key)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut hello = Vec::new();
        hello.extend_from_slice(MAGIC);
        hello.extend_from_slice(&fresh_nonce());
        frame::write_frame(&mut stream, &hello).unwrap();
        let challenge = frame::read_frame(&mut stream).unwrap();
        let echoed_mac = challenge[NONCE_LEN..].to_vec();
        frame::write_frame(&mut stream, &echoed_mac).unwrap();
        assert!(matches!(server.join().unwrap(), Err(AuthError::BadKey)));
    }

    #[test]
    fn debug_does_not_print_key_material() {
        let key = AuthKey::from_passphrase("super secret");
        let rendered = format!("{key:?}");
        assert_eq!(rendered, "AuthKey(…)");
    }

    #[test]
    fn passphrase_derivation_is_deterministic() {
        assert_eq!(
            AuthKey::from_passphrase("a").0,
            AuthKey::from_passphrase("a").0
        );
        assert_ne!(
            AuthKey::from_passphrase("a").0,
            AuthKey::from_passphrase("b").0
        );
    }
}
