//! # copernicus-wire — authenticated TCP transport
//!
//! The paper's deployment (§2.2) is an overlay of *authenticated
//! servers*: every worker↔server and server↔server hop crosses a real,
//! lossy network, links become usable only after an explicit key
//! exchange, and the whole point of the architecture is that folding
//! work survives connections that don't. This crate is that wire for
//! the reproduction — `netsim` *models* the overlay; `copernicus-wire`
//! *is* one link of it:
//!
//! - [`frame`] — length-prefixed binary framing with a hard size cap;
//! - [`hash`] — in-repo SHA-256 / HMAC-SHA256 (checked against the
//!   standard test vectors; an SSL substitute, not production crypto);
//! - [`auth`] — pre-shared-key challenge–response handshake, mutual,
//!   reflection-safe;
//! - [`client`] — supervised outbound link: reconnect with exponential
//!   backoff, session-frame replay, idle-vs-broken discrimination;
//! - [`poll`] — zero-dependency readiness polling (`epoll` on Linux,
//!   `poll(2)` elsewhere), the engine under the listener;
//! - [`timer`] — a hashed timer wheel for handshake/idle deadlines;
//! - [`listener`] — accept + per-connection supervision (handshake
//!   timeout, heartbeat/idle timeout, malformed-frame hygiene,
//!   write-backlog eviction) surfacing [`WireEvent`]s, all driven by
//!   one event-loop thread over nonblocking sockets;
//! - [`stats`] — per-link byte/frame/reconnect counters in the shared
//!   telemetry registry;
//! - [`metrics`] — a minimal plain-TCP endpoint serving live Prometheus
//!   text exposition (`--metrics-addr`).
//!
//! Deliberately zero-dependency (std + the workspace telemetry facade):
//! the transport must not decide serialization policy — peers exchange
//! opaque `Vec<u8>` payloads, and `copernicus-core` layers its message
//! codec on top.

pub mod auth;
pub mod client;
pub(crate) mod event_loop;
pub mod frame;
pub mod hash;
pub mod listener;
pub mod metrics;
pub mod poll;
pub mod stats;
pub mod timer;

pub use auth::{AuthError, AuthKey, Session};
pub use client::{ConnectError, LinkDown, ReconnectPolicy, RecvError, WireClient};
pub use frame::{
    encode_frame, read_frame, read_frame_limited, write_frame, FrameDecoder, WriteQueue,
    HEADER_LEN, MAX_FRAME,
};
pub use listener::{ConnId, ListenerConfig, WireEvent, WireListener};
pub use metrics::MetricsServer;
pub use stats::LinkStats;
