//! A hashed timer wheel for connection deadlines.
//!
//! The event loop arms two kinds of deadline per connection — finish
//! the handshake by T, or show traffic by T — and both are coarse
//! (hundreds of milliseconds to tens of seconds). A wheel of fixed
//! slots gives O(1) arm and O(slots-crossed) expiry with no per-conn
//! allocation, replacing the per-thread `set_read_timeout` sleeps of
//! the thread-per-connection design.
//!
//! Cancellation is *lazy*: entries carry a generation stamp and the
//! caller ignores expirations whose generation no longer matches the
//! connection's current one (re-arming the idle deadline just bumps
//! the generation). The wheel never needs to find-and-remove.

use std::time::{Duration, Instant};

/// One armed deadline: opaque token (the event loop uses the conn
/// slot), generation for lazy cancellation, and the exact deadline
/// (slots are coarse; expiry re-checks the precise instant).
#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    gen: u64,
    deadline: Instant,
}

pub struct TimerWheel {
    /// Slot width. Deadlines are only honoured at this granularity —
    /// fine for handshake/idle timeouts, which are policy, not pacing.
    tick: Duration,
    slots: Vec<Vec<Entry>>,
    /// Index of the slot containing `base`.
    cursor: usize,
    /// Start instant of the cursor slot.
    base: Instant,
    /// Live entries (including lazily-cancelled ones not yet swept).
    len: usize,
}

impl TimerWheel {
    pub fn new(tick: Duration, slots: usize, now: Instant) -> TimerWheel {
        assert!(slots >= 2, "wheel needs at least two slots");
        assert!(!tick.is_zero(), "wheel tick must be non-zero");
        TimerWheel {
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            base: now,
            len: 0,
        }
    }

    /// Arm a deadline. Deadlines beyond the wheel's horizon are parked
    /// in the furthest slot and re-filed as the wheel turns.
    pub fn arm(&mut self, token: u64, gen: u64, deadline: Instant) {
        let ticks = if deadline <= self.base {
            0
        } else {
            let dt = deadline - self.base;
            // Integer division floors; an entry never lands in a slot
            // that expires after its deadline.
            (dt.as_nanos() / self.tick.as_nanos().max(1)) as u64
        };
        let horizon = (self.slots.len() - 1) as u64;
        let offset = ticks.min(horizon) as usize;
        let idx = (self.cursor + offset) % self.slots.len();
        self.slots[idx].push(Entry {
            token,
            gen,
            deadline,
        });
        self.len += 1;
    }

    /// Whether any entries are armed (lazily-cancelled ones included).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Upper bound on when the caller should next call [`expire`]:
    /// the end of the current slot, or `None` when nothing is armed.
    pub fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        let slot_end = self.base + self.tick;
        Some(slot_end.max(now))
    }

    /// Advance to `now`, appending `(token, gen)` for every entry whose
    /// deadline has passed. Entries parked short of their deadline
    /// (wheel-horizon overflow, coarse slotting) are re-filed.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<(u64, u64)>) {
        // Sweep every slot the cursor crosses, plus the current slot.
        loop {
            let slot = std::mem::take(&mut self.slots[self.cursor]);
            let mut kept = Vec::new();
            for entry in slot {
                if entry.deadline <= now {
                    out.push((entry.token, entry.gen));
                    self.len -= 1;
                } else {
                    kept.push(entry);
                }
            }
            let crossed = now >= self.base + self.tick;
            if crossed {
                // Re-file survivors relative to the advanced cursor.
                self.base += self.tick;
                self.cursor = (self.cursor + 1) % self.slots.len();
                for entry in kept {
                    self.len -= 1;
                    self.arm(entry.token, entry.gen, entry.deadline);
                }
            } else {
                self.slots[self.cursor] = kept;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn expires_in_deadline_order_at_tick_granularity() {
        let start = t0();
        let mut wheel = TimerWheel::new(Duration::from_millis(100), 16, start);
        wheel.arm(1, 0, start + Duration::from_millis(250));
        wheel.arm(2, 0, start + Duration::from_millis(50));
        let mut out = Vec::new();

        wheel.expire(start + Duration::from_millis(120), &mut out);
        assert_eq!(out, vec![(2, 0)]);

        out.clear();
        wheel.expire(start + Duration::from_millis(200), &mut out);
        assert!(out.is_empty(), "250ms deadline fired early: {out:?}");

        wheel.expire(start + Duration::from_millis(300), &mut out);
        assert_eq!(out, vec![(1, 0)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let start = t0();
        let mut wheel = TimerWheel::new(Duration::from_millis(100), 8, start);
        wheel.arm(9, 3, start); // already due
        let mut out = Vec::new();
        wheel.expire(start, &mut out);
        assert_eq!(out, vec![(9, 3)]);
    }

    #[test]
    fn beyond_horizon_deadlines_survive_the_turns() {
        let start = t0();
        // Horizon = 4 slots × 10ms = 40ms; arm at 95ms.
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 4, start);
        wheel.arm(5, 1, start + Duration::from_millis(95));
        let mut out = Vec::new();
        for step in 1..=9 {
            wheel.expire(start + Duration::from_millis(step * 10), &mut out);
            assert!(out.is_empty(), "fired at {}ms", step * 10);
        }
        wheel.expire(start + Duration::from_millis(100), &mut out);
        assert_eq!(out, vec![(5, 1)]);
    }

    #[test]
    fn generations_ride_through_for_lazy_cancellation() {
        let start = t0();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, start);
        // Old generation armed, then the conn re-armed with gen 2 at a
        // later deadline: both fire; the caller drops the stale one.
        wheel.arm(7, 1, start + Duration::from_millis(10));
        wheel.arm(7, 2, start + Duration::from_millis(30));
        let mut out = Vec::new();
        wheel.expire(start + Duration::from_millis(50), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(7, 1), (7, 2)]);
    }

    #[test]
    fn next_wakeup_tracks_armed_state() {
        let start = t0();
        let mut wheel = TimerWheel::new(Duration::from_millis(100), 8, start);
        assert!(wheel.next_wakeup(start).is_none());
        wheel.arm(1, 0, start + Duration::from_secs(1));
        let wake = wheel.next_wakeup(start).unwrap();
        assert!(wake <= start + Duration::from_millis(100));
        let mut out = Vec::new();
        wheel.expire(start + Duration::from_secs(2), &mut out);
        assert_eq!(out.len(), 1);
        assert!(wheel.next_wakeup(start + Duration::from_secs(2)).is_none());
    }
}
