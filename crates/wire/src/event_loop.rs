//! The single-threaded readiness loop that owns every server-side
//! connection.
//!
//! The thread-per-connection listener needed ~1 OS thread per worker:
//! at 512 workers that is 512 blocked readers plus an accept thread,
//! and every outbound frame contended one global writer-table mutex
//! *held across the write syscall*. This loop replaces all of it with
//! one thread multiplexed over a [`Poller`](crate::poll::Poller):
//!
//! - every connection is nonblocking; partial frames persist in a
//!   per-conn [`FrameDecoder`] and partial writes in a [`WriteQueue`],
//!   resumed on the next readiness report;
//! - handshakes run as a frame-driven state machine
//!   ([`ServerHandshake`]) instead of blocking reads, so a stalled
//!   peer costs a timer entry, not a parked thread;
//! - handshake and idle deadlines live in a [`TimerWheel`] — O(1) to
//!   arm, lazily cancelled by generation stamp, no `set_read_timeout`;
//! - cross-thread requests (send/kick/shutdown) arrive on an mpsc
//!   channel paired with a one-byte self-pipe wakeup, so `send` never
//!   touches a socket from the caller's thread;
//! - a write queue that the peer stops draining hits a byte cap and
//!   the connection is dropped (backpressure by eviction — the server
//!   must never buffer unboundedly for a dead consumer).

use crate::auth::{AuthKey, HandshakeStep, ServerHandshake};
use crate::frame::{self, FrameDecoder, WriteQueue};
use crate::listener::{ConnId, ListenerConfig, WireEvent};
use crate::poll::{Interest, PollEvent, Poller};
use crate::stats::LinkStats;
use crate::timer::TimerWheel;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// Timer wheel granularity. Deadlines here are seconds-scale policy
/// (handshake, idle), so 25ms slots are plenty precise.
const WHEEL_TICK: Duration = Duration::from_millis(25);
const WHEEL_SLOTS: usize = 256;

/// Bytes read per `read` call; a conn yields back to the loop after
/// [`READ_ROUNDS`] full chunks so one firehose cannot starve the rest
/// (level-triggered polling re-reports it immediately).
const READ_CHUNK: usize = 16 * 1024;
const READ_ROUNDS: usize = 4;

pub(crate) enum LoopCmd {
    /// One pre-encoded frame (header included) for a live connection.
    Send { conn: ConnId, frame: Vec<u8> },
    Kick(ConnId),
    Shutdown,
}

/// The caller-side face of the loop: submit commands, query liveness.
pub(crate) struct LoopHandle {
    cmds: mpsc::Sender<LoopCmd>,
    /// Write end of the self-pipe; one byte per submit. `WouldBlock`
    /// means wakeups are already pending — safe to drop.
    wake: UnixStream,
    live: Arc<Mutex<HashSet<ConnId>>>,
}

impl LoopHandle {
    pub(crate) fn is_live(&self, conn: ConnId) -> bool {
        self.live.lock().unwrap().contains(&conn)
    }

    pub(crate) fn submit(&self, cmd: LoopCmd) {
        if self.cmds.send(cmd).is_ok() {
            let _ = (&self.wake).write(&[1u8]);
        }
    }
}

enum ConnState {
    Handshaking {
        hs: ServerHandshake,
        deadline: Instant,
    },
    Established {
        id: ConnId,
        last_recv: Instant,
    },
}

struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    state: ConnState,
    decoder: FrameDecoder,
    writeq: WriteQueue,
    interest: Interest,
    /// Generation stamp for lazy timer cancellation; bumped whenever a
    /// new deadline supersedes old wheel entries.
    gen: u64,
}

/// How a connection leaves the loop.
enum Gone {
    /// Established conn died: emit `Disconnected` with this reason.
    Conn(String),
    /// Handshake failed: emit `AuthFailed`, bump the counter.
    Auth(String),
    /// Drop quietly (shutdown path).
    Silent,
}

pub(crate) fn spawn(
    listener: TcpListener,
    key: AuthKey,
    config: ListenerConfig,
    stats: LinkStats,
    events: mpsc::Sender<WireEvent>,
) -> io::Result<(LoopHandle, thread::JoinHandle<()>)> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let (cmd_tx, cmd_rx) = mpsc::channel();
    let live = Arc::new(Mutex::new(HashSet::new()));

    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;

    let now = Instant::now();
    let ev_loop = EventLoop {
        listener,
        wake_rx,
        cmds: cmd_rx,
        key,
        config,
        stats,
        events,
        live: Arc::clone(&live),
        poller,
        conns: Vec::new(),
        free: Vec::new(),
        by_id: HashMap::new(),
        wheel: TimerWheel::new(WHEEL_TICK, WHEEL_SLOTS, now),
        next_conn: 0,
        next_gen: 0,
        pollbuf: Vec::new(),
        expired: Vec::new(),
    };
    let join = thread::Builder::new()
        .name("wire-loop".into())
        .spawn(move || ev_loop.run())?;
    Ok((
        LoopHandle {
            cmds: cmd_tx,
            wake: wake_tx,
            live,
        },
        join,
    ))
}

struct EventLoop {
    listener: TcpListener,
    wake_rx: UnixStream,
    cmds: mpsc::Receiver<LoopCmd>,
    key: AuthKey,
    config: ListenerConfig,
    stats: LinkStats,
    events: mpsc::Sender<WireEvent>,
    live: Arc<Mutex<HashSet<ConnId>>>,
    poller: Poller,
    /// Slab of connections; token = slot + [`TOKEN_BASE`].
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    by_id: HashMap<ConnId, usize>,
    wheel: TimerWheel,
    next_conn: u64,
    next_gen: u64,
    pollbuf: Vec<PollEvent>,
    expired: Vec<(u64, u64)>,
}

impl EventLoop {
    fn run(mut self) {
        loop {
            let now = Instant::now();
            let mut expired = std::mem::take(&mut self.expired);
            self.wheel.expire(now, &mut expired);
            for &(token, gen) in &expired {
                self.on_timer(token, gen, now);
            }
            expired.clear();
            self.expired = expired;

            let timeout = self
                .wheel
                .next_wakeup(now)
                .map(|at| at.saturating_duration_since(now));
            let mut pollbuf = std::mem::take(&mut self.pollbuf);
            match self.poller.wait(&mut pollbuf, timeout) {
                Ok(_) => {}
                Err(_) => {
                    // A failing poller cannot make progress; don't
                    // spin the CPU while it lasts.
                    thread::sleep(Duration::from_millis(10));
                }
            }
            let now = Instant::now();
            let mut shutdown = false;
            for i in 0..pollbuf.len() {
                let ev = pollbuf[i];
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKE => {
                        let mut sink = [0u8; 256];
                        while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
                        if self.drain_cmds() {
                            shutdown = true;
                        }
                    }
                    token => self.conn_ready((token - TOKEN_BASE) as usize, ev, now),
                }
            }
            self.pollbuf = pollbuf;
            // Commands may land between wakeups of the same wait; a
            // drain here keeps latency at one loop turn worst-case.
            if self.drain_cmds() || shutdown {
                self.shutdown_all();
                return;
            }
        }
    }

    fn drain_cmds(&mut self) -> bool {
        loop {
            match self.cmds.try_recv() {
                Ok(LoopCmd::Send { conn, frame }) => self.queue_frame(conn, frame),
                Ok(LoopCmd::Kick(conn)) => {
                    if let Some(&slot) = self.by_id.get(&conn) {
                        self.close_conn(slot, Gone::Conn("kicked by server".into()));
                    }
                }
                Ok(LoopCmd::Shutdown) => return true,
                Err(mpsc::TryRecvError::Empty) => return false,
                // Every handle dropped without a Shutdown: the owning
                // WireListener is gone; stop serving.
                Err(mpsc::TryRecvError::Disconnected) => return true,
            }
        }
    }

    fn shutdown_all(&mut self) {
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close_conn(slot, Gone::Silent);
            }
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => self.add_conn(stream, peer, now),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    // Transient accept failure (EMFILE and friends):
                    // back off briefly instead of spinning on the
                    // still-readable listener.
                    thread::sleep(Duration::from_millis(50));
                    return;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream, peer: SocketAddr, now: Instant) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        if self
            .poller
            .register(stream.as_raw_fd(), TOKEN_BASE + slot as u64, Interest::READ)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.next_gen += 1;
        let gen = self.next_gen;
        let deadline = now + self.config.handshake_timeout;
        self.conns[slot] = Some(Conn {
            stream,
            peer,
            state: ConnState::Handshaking {
                hs: ServerHandshake::new(self.key),
                deadline,
            },
            decoder: FrameDecoder::new(self.config.max_frame.max(frame::HEADER_LEN + 128)),
            writeq: WriteQueue::new(),
            interest: Interest::READ,
            gen,
        });
        self.wheel.arm(slot as u64, gen, deadline);
    }

    fn on_timer(&mut self, token: u64, gen: u64, now: Instant) {
        enum Due {
            AuthTimeout(SocketAddr),
            Idle,
            Rearm(Instant),
        }
        let slot = token as usize;
        let due = match self.conns.get(slot).and_then(|c| c.as_ref()) {
            Some(conn) if conn.gen == gen => match &conn.state {
                ConnState::Handshaking { deadline, .. } => {
                    if now >= *deadline {
                        Due::AuthTimeout(conn.peer)
                    } else {
                        Due::Rearm(*deadline)
                    }
                }
                ConnState::Established { last_recv, .. } => {
                    let idle_at = *last_recv + self.config.idle_timeout;
                    if now >= idle_at {
                        Due::Idle
                    } else {
                        Due::Rearm(idle_at)
                    }
                }
            },
            // Stale generation or freed slot: lazily-cancelled entry.
            _ => return,
        };
        match due {
            Due::AuthTimeout(_) => self.close_conn(
                slot,
                Gone::Auth(format!(
                    "handshake stalled for {:?}",
                    self.config.handshake_timeout
                )),
            ),
            Due::Idle => self.close_conn(
                slot,
                Gone::Conn(format!(
                    "idle for {:?} (heartbeat lost)",
                    self.config.idle_timeout
                )),
            ),
            Due::Rearm(at) => {
                self.next_gen += 1;
                let fresh = self.next_gen;
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.gen = fresh;
                }
                self.wheel.arm(token, fresh, at);
            }
        }
    }

    fn queue_frame(&mut self, id: ConnId, frame: Vec<u8>) {
        let Some(&slot) = self.by_id.get(&id) else {
            // Raced with a disconnect; the frame is dropped exactly as
            // it would be by a peer dying mid-flight.
            return;
        };
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.writeq.push(frame);
        }
        self.flush_slot(slot);
    }

    /// Drive the write queue; adjust write interest; close on error or
    /// backlog overflow.
    fn flush_slot(&mut self, slot: usize) {
        let outcome = match self.conns[slot].as_mut() {
            Some(conn) => match conn.writeq.flush(&mut conn.stream) {
                Ok(true) => Ok(Interest::READ),
                Ok(false) => {
                    // Per-connection cap on unflushed outbound bytes: a
                    // peer that stops reading is evicted rather than
                    // buffered forever.
                    let cap = self.config.write_backlog_cap;
                    if conn.writeq.queued_bytes() > cap {
                        Err(format!(
                            "write backlog exceeded {cap} bytes (peer not draining)"
                        ))
                    } else {
                        Ok(Interest::BOTH)
                    }
                }
                Err(e) => Err(format!("{} ({:?})", e, e.kind())),
            },
            None => return,
        };
        match outcome {
            Ok(want) => self.set_interest(slot, want),
            Err(reason) => {
                let gone = match self.conns[slot].as_ref().map(|c| &c.state) {
                    Some(ConnState::Established { .. }) => Gone::Conn(reason),
                    _ => Gone::Auth(reason),
                };
                self.close_conn(slot, gone);
            }
        }
    }

    fn set_interest(&mut self, slot: usize, want: Interest) {
        if let Some(conn) = self.conns[slot].as_mut() {
            if conn.interest != want {
                if self
                    .poller
                    .modify(conn.stream.as_raw_fd(), TOKEN_BASE + slot as u64, want)
                    .is_ok()
                {
                    conn.interest = want;
                }
            }
        }
    }

    fn conn_ready(&mut self, slot: usize, ev: PollEvent, now: Instant) {
        if self.conns.get(slot).map_or(true, |c| c.is_none()) {
            // Readiness for a conn already closed this turn.
            return;
        }
        if ev.writable {
            self.flush_slot(slot);
        }
        if !(ev.readable || ev.error || ev.hangup) {
            return;
        }

        // Read phase: pull what the socket has (bounded per turn).
        let mut gone: Option<Gone> = None;
        let mut buf = [0u8; READ_CHUNK];
        {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let mut rounds = 0;
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        gone = Some(match conn.state {
                            ConnState::Established { .. } => {
                                Gone::Conn("peer closed the connection (UnexpectedEof)".into())
                            }
                            ConnState::Handshaking { .. } => {
                                Gone::Auth("peer closed during handshake".into())
                            }
                        });
                        break;
                    }
                    Ok(n) => {
                        conn.decoder.extend(&buf[..n]);
                        if let ConnState::Established { last_recv, .. } = &mut conn.state {
                            *last_recv = now;
                        }
                        rounds += 1;
                        if n < buf.len() || rounds >= READ_ROUNDS {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        gone = Some(match conn.state {
                            ConnState::Established { .. } => {
                                Gone::Conn(format!("{} ({:?})", e, e.kind()))
                            }
                            ConnState::Handshaking { .. } => {
                                Gone::Auth(format!("handshake failed: {e}"))
                            }
                        });
                        break;
                    }
                }
            }
        }

        // Frame phase: drain every complete frame, even when the read
        // phase ended in EOF — bytes before the close are real.
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            let payload = match conn.decoder.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(e) => {
                    gone = Some(match conn.state {
                        ConnState::Established { .. } => {
                            Gone::Conn(format!("{} ({:?})", e, e.kind()))
                        }
                        ConnState::Handshaking { .. } => {
                            Gone::Auth(format!("malformed handshake frame: {e}"))
                        }
                    });
                    break;
                }
            };
            match &mut conn.state {
                ConnState::Handshaking { hs, .. } => match hs.on_frame(&payload) {
                    Ok(HandshakeStep::Reply(reply)) => {
                        match frame::encode_frame(&reply) {
                            Ok(encoded) => conn.writeq.push(encoded),
                            Err(_) => unreachable!("handshake frames are tiny"),
                        }
                        self.flush_slot(slot);
                    }
                    Ok(HandshakeStep::Complete(session)) => {
                        let id = ConnId(self.next_conn);
                        self.next_conn += 1;
                        conn.state = ConnState::Established { id, last_recv: now };
                        // Supersede the handshake deadline with idle.
                        self.next_gen += 1;
                        conn.gen = self.next_gen;
                        let peer = conn.peer;
                        self.wheel
                            .arm(slot as u64, conn.gen, now + self.config.idle_timeout);
                        self.by_id.insert(id, slot);
                        self.live.lock().unwrap().insert(id);
                        if self
                            .events
                            .send(WireEvent::Connected {
                                conn: id,
                                session: session.session_id,
                                peer,
                            })
                            .is_err()
                        {
                            gone = Some(Gone::Silent);
                            break;
                        }
                    }
                    Err(e) => {
                        gone = Some(Gone::Auth(e.to_string()));
                        break;
                    }
                },
                ConnState::Established { id, .. } => {
                    let id = *id;
                    self.stats.on_frame_recv(payload.len());
                    if self
                        .events
                        .send(WireEvent::Frame { conn: id, payload })
                        .is_err()
                    {
                        gone = Some(Gone::Silent);
                        break;
                    }
                }
            }
        }

        if let Some(gone) = gone {
            self.close_conn(slot, gone);
        }
    }

    fn close_conn(&mut self, slot: usize, gone: Gone) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        self.poller.deregister(conn.stream.as_raw_fd()).ok();
        conn.stream.shutdown(Shutdown::Both).ok();
        self.free.push(slot);
        let established = match conn.state {
            ConnState::Established { id, .. } => {
                self.by_id.remove(&id);
                self.live.lock().unwrap().remove(&id);
                Some(id)
            }
            ConnState::Handshaking { .. } => None,
        };
        match gone {
            Gone::Conn(reason) => {
                if let Some(id) = established {
                    self.events
                        .send(WireEvent::Disconnected { conn: id, reason })
                        .ok();
                }
            }
            Gone::Auth(reason) => {
                self.stats.auth_failures.inc();
                self.events
                    .send(WireEvent::AuthFailed {
                        peer: conn.peer,
                        reason,
                    })
                    .ok();
            }
            Gone::Silent => {}
        }
    }
}
