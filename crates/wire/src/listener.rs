//! Server side of the wire: accept loop, per-connection supervision,
//! and an event queue.
//!
//! A [`WireListener`] binds a TCP port, handshakes every inbound
//! connection against the pre-shared key, and surfaces everything that
//! happens as [`WireEvent`]s on an internal queue the owning thread
//! drains (`recv_timeout`/`try_recv`). Outbound frames go through
//! [`WireListener::send`] addressed by [`ConnId`].
//!
//! Supervision rules, all of which resolve to *drop the connection,
//! never panic, never block the accept loop*:
//! - handshake must complete within `handshake_timeout` (a peer that
//!   connects and goes silent cannot wedge a slot),
//! - a connection with no inbound frame for `idle_timeout` is declared
//!   dead (workers heartbeat far more often than that),
//! - any malformed frame — oversized length prefix, truncated payload,
//!   socket error mid-frame — closes the connection, because framing
//!   cannot be resynchronised.

use crate::auth::{server_handshake, AuthKey};
use crate::frame;
use crate::stats::LinkStats;
use std::collections::HashMap;
use std::fmt;
use std::io::{self};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Identity of one accepted connection (unique per listener lifetime;
/// a reconnecting worker gets a *new* `ConnId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn-{}", self.0)
    }
}

/// Everything the owning thread needs to know about the wire.
#[derive(Debug)]
pub enum WireEvent {
    /// Handshake succeeded; the connection is live.
    Connected {
        conn: ConnId,
        session: u64,
        peer: SocketAddr,
    },
    /// One inbound payload frame.
    Frame { conn: ConnId, payload: Vec<u8> },
    /// The connection is gone (peer vanished, idle timeout, malformed
    /// frame). Already removed from the send table.
    Disconnected { conn: ConnId, reason: String },
    /// A peer failed the handshake and was dropped before getting a
    /// [`ConnId`].
    AuthFailed { peer: SocketAddr, reason: String },
}

#[derive(Debug, Clone, Copy)]
pub struct ListenerConfig {
    /// Drop a connection with no inbound frame for this long.
    pub idle_timeout: Duration,
    /// Drop a connection whose handshake stalls for this long.
    pub handshake_timeout: Duration,
    /// Per-frame payload cap (defaults to [`frame::MAX_FRAME`]).
    pub max_frame: usize,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            idle_timeout: Duration::from_secs(30),
            handshake_timeout: Duration::from_secs(5),
            max_frame: frame::MAX_FRAME,
        }
    }
}

struct Shared {
    key: AuthKey,
    config: ListenerConfig,
    stats: LinkStats,
    writers: Mutex<HashMap<ConnId, TcpStream>>,
    next_conn: AtomicU64,
    shutdown: AtomicBool,
    events: mpsc::Sender<WireEvent>,
}

pub struct WireListener {
    shared: Arc<Shared>,
    events: mpsc::Receiver<WireEvent>,
    local_addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl WireListener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and start accepting.
    pub fn bind(
        addr: &str,
        key: AuthKey,
        config: ListenerConfig,
        stats: LinkStats,
    ) -> io::Result<WireListener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            key,
            config,
            stats,
            writers: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            events: tx,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("wire-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(WireListener {
            shared,
            events: rx,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn stats(&self) -> &LinkStats {
        &self.shared.stats
    }

    /// Next event, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<WireEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    pub fn try_recv(&self) -> Option<WireEvent> {
        self.events.try_recv().ok()
    }

    /// Send one frame to a live connection.
    pub fn send(&self, conn: ConnId, payload: &[u8]) -> io::Result<()> {
        let writers = self.shared.writers.lock().unwrap();
        let stream = writers.get(&conn).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{conn} is not connected"))
        })?;
        frame::write_frame(&mut (&*stream), payload)?;
        self.shared.stats.on_frame_sent(payload.len());
        Ok(())
    }

    /// Forcibly drop a connection (used by tests to simulate a network
    /// partition, and by servers evicting a misbehaving peer). The
    /// connection's reader thread reports the resulting
    /// [`WireEvent::Disconnected`].
    pub fn kick(&self, conn: ConnId) {
        if let Some(stream) = self.shared.writers.lock().unwrap().get(&conn) {
            stream.shutdown(Shutdown::Both).ok();
        }
    }

    /// Stop accepting and drop every connection.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for stream in self.shared.writers.lock().unwrap().values() {
            stream.shutdown(Shutdown::Both).ok();
        }
        if let Some(handle) = self.accept_thread.take() {
            handle.join().ok();
        }
    }
}

impl Drop for WireListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let conn_shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("wire-conn-{peer}"))
                    .spawn(move || serve_connection(stream, peer, conn_shared))
                    .ok();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept errors (e.g. EMFILE) must not kill
                // the listener.
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn serve_connection(stream: TcpStream, peer: SocketAddr, shared: Arc<Shared>) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(shared.config.handshake_timeout))
        .ok();
    let session = match server_handshake(&mut (&stream), &shared.key) {
        Ok(session) => session,
        Err(e) => {
            shared.stats.auth_failures.inc();
            shared
                .events
                .send(WireEvent::AuthFailed {
                    peer,
                    reason: e.to_string(),
                })
                .ok();
            stream.shutdown(Shutdown::Both).ok();
            return;
        }
    };

    let conn = ConnId(shared.next_conn.fetch_add(1, Ordering::Relaxed));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    shared.writers.lock().unwrap().insert(conn, writer);
    if shared
        .events
        .send(WireEvent::Connected {
            conn,
            session: session.session_id,
            peer,
        })
        .is_err()
    {
        // Listener already dropped.
        shared.writers.lock().unwrap().remove(&conn);
        return;
    }

    // Inbound loop: the idle timeout doubles as heartbeat-loss
    // detection — a healthy worker heartbeats well inside it.
    stream
        .set_read_timeout(Some(shared.config.idle_timeout))
        .ok();
    let reason = loop {
        match frame::read_frame_limited(&mut (&stream), shared.config.max_frame) {
            Ok(payload) => {
                shared.stats.on_frame_recv(payload.len());
                if shared
                    .events
                    .send(WireEvent::Frame { conn, payload })
                    .is_err()
                {
                    break "listener dropped".to_string();
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break format!("idle for {:?} (heartbeat lost)", shared.config.idle_timeout);
            }
            Err(e) => break format!("{} ({:?})", e, e.kind()),
        }
    };

    shared.writers.lock().unwrap().remove(&conn);
    stream.shutdown(Shutdown::Both).ok();
    shared
        .events
        .send(WireEvent::Disconnected { conn, reason })
        .ok();
}
