//! Server side of the wire: accept, per-connection supervision, and an
//! event queue — all multiplexed on one readiness loop.
//!
//! A [`WireListener`] binds a TCP port, handshakes every inbound
//! connection against the pre-shared key, and surfaces everything that
//! happens as [`WireEvent`]s on an internal queue the owning thread
//! drains (`recv_timeout`/`try_recv`). Outbound frames go through
//! [`WireListener::send`] addressed by [`ConnId`].
//!
//! Internally every connection is owned by a single event-loop thread
//! (see [`crate::event_loop`]): nonblocking sockets, resumable framing,
//! and a timer wheel replace the old thread-per-connection design, so
//! a thousand workers cost one polling thread instead of a thousand
//! parked readers contending one writer-table mutex.
//!
//! Supervision rules, all of which resolve to *drop the connection,
//! never panic, never wedge the loop*:
//! - handshake must complete within `handshake_timeout` (a peer that
//!   connects and goes silent cannot wedge a slot),
//! - a connection with no inbound traffic for `idle_timeout` is
//!   declared dead (workers heartbeat far more often than that),
//! - any malformed frame — oversized length prefix, socket error
//!   mid-frame — closes the connection, because framing cannot be
//!   resynchronised,
//! - a peer that stops draining its socket is evicted once its write
//!   backlog passes a cap (the server never buffers unboundedly).

use crate::auth::AuthKey;
use crate::event_loop::{self, LoopCmd, LoopHandle};
use crate::frame;
use crate::stats::LinkStats;
use std::fmt;
use std::io::{self};
use std::net::{SocketAddr, TcpListener};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Identity of one accepted connection (unique per listener lifetime;
/// a reconnecting worker gets a *new* `ConnId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn-{}", self.0)
    }
}

/// Everything the owning thread needs to know about the wire.
#[derive(Debug)]
pub enum WireEvent {
    /// Handshake succeeded; the connection is live.
    Connected {
        conn: ConnId,
        session: u64,
        peer: SocketAddr,
    },
    /// One inbound payload frame.
    Frame { conn: ConnId, payload: Vec<u8> },
    /// The connection is gone (peer vanished, idle timeout, malformed
    /// frame). Already removed from the send table.
    Disconnected { conn: ConnId, reason: String },
    /// A peer failed the handshake and was dropped before getting a
    /// [`ConnId`].
    AuthFailed { peer: SocketAddr, reason: String },
}

#[derive(Debug, Clone, Copy)]
pub struct ListenerConfig {
    /// Drop a connection with no inbound frame for this long.
    pub idle_timeout: Duration,
    /// Drop a connection whose handshake stalls for this long.
    pub handshake_timeout: Duration,
    /// Per-frame payload cap (defaults to [`frame::MAX_FRAME`]).
    pub max_frame: usize,
    /// Evict a connection whose outbound queue exceeds this many bytes
    /// (the peer stopped draining). Default 32 MiB; tests shrink it to
    /// provoke evictions without buffering real gigabytes.
    pub write_backlog_cap: usize,
}

impl Default for ListenerConfig {
    fn default() -> Self {
        ListenerConfig {
            idle_timeout: Duration::from_secs(30),
            handshake_timeout: Duration::from_secs(5),
            max_frame: frame::MAX_FRAME,
            write_backlog_cap: 32 * 1024 * 1024,
        }
    }
}

pub struct WireListener {
    handle: LoopHandle,
    events: mpsc::Receiver<WireEvent>,
    local_addr: SocketAddr,
    stats: LinkStats,
    loop_thread: Option<thread::JoinHandle<()>>,
}

impl WireListener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and start accepting.
    pub fn bind(
        addr: &str,
        key: AuthKey,
        config: ListenerConfig,
        stats: LinkStats,
    ) -> io::Result<WireListener> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel();
        let (handle, loop_thread) = event_loop::spawn(listener, key, config, stats.clone(), tx)?;
        Ok(WireListener {
            handle,
            events: rx,
            local_addr,
            stats,
            loop_thread: Some(loop_thread),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Next event, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<WireEvent> {
        self.events.recv_timeout(timeout).ok()
    }

    pub fn try_recv(&self) -> Option<WireEvent> {
        self.events.try_recv().ok()
    }

    /// Send one frame to a live connection.
    ///
    /// The frame is encoded here (so an oversized payload errors
    /// synchronously) and handed to the event loop, which writes as
    /// much as the socket accepts and resumes on writability — the
    /// caller never blocks on a slow peer's socket.
    pub fn send(&self, conn: ConnId, payload: &[u8]) -> io::Result<()> {
        if !self.handle.is_live(conn) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{conn} is not connected"),
            ));
        }
        let encoded = frame::encode_frame(payload)?;
        self.handle.submit(LoopCmd::Send {
            conn,
            frame: encoded,
        });
        self.stats.on_frame_sent(payload.len());
        Ok(())
    }

    /// Forcibly drop a connection (used by tests to simulate a network
    /// partition, and by servers evicting a misbehaving peer). The
    /// event loop reports the resulting [`WireEvent::Disconnected`].
    pub fn kick(&self, conn: ConnId) {
        self.handle.submit(LoopCmd::Kick(conn));
    }

    /// Stop accepting and drop every connection.
    pub fn shutdown(&mut self) {
        self.handle.submit(LoopCmd::Shutdown);
        if let Some(handle) = self.loop_thread.take() {
            handle.join().ok();
        }
    }
}

impl Drop for WireListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}
