//! Readiness polling without a dependency: a thin wrapper over the
//! OS's level-triggered readiness syscalls, declared `extern "C"`
//! against the libc that `std` already links (the crate keeps its
//! zero-dependency stance — no `libc` crate, no `mio`).
//!
//! Linux gets `epoll` (`epoll_create1`/`epoll_ctl`/`epoll_wait`),
//! which is O(ready) per wait and what every event-driven server on
//! the platform uses. Every other unix gets a portable `poll(2)`
//! fallback that rebuilds its `pollfd` array per wait — O(registered),
//! fine for the fd counts the fallback will ever see.
//!
//! Both backends are *level-triggered*: a socket with unread bytes (or
//! writable space) reports ready on every wait until drained. The
//! event loop leans on that — partial reads/writes never need to
//! re-arm anything.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// What to watch an fd for. Readable is always watched; writable only
/// when a write queue is non-empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report. `token` is whatever the caller registered;
/// `error`/`hangup` fold EPOLLERR/EPOLLHUP (POLLERR/POLLHUP) — the
/// caller should try a read, which surfaces the real `io::Error` or
/// EOF.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    pub error: bool,
    pub hangup: bool,
}

const MAX_EVENTS: usize = 256;

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

fn millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round up so a 100µs timeout doesn't busy-spin at 0ms.
        Some(t) => t.as_millis().min(i32::MAX as u128) as i32 + i32::from(t.subsec_nanos() % 1_000_000 != 0),
        None => -1,
    }
}

// ---------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    // x86-64's epoll_event is packed (12 bytes); other ABIs use
    // natural alignment. Matching the kernel layout here is what the
    // `libc` crate does too.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL (must be non-null
            // only on kernels < 2.6.9; pass one anyway).
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            out.clear();
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    millis(timeout),
                )
            };
            if n < 0 {
                let e = last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & EPOLLERR != 0,
                    hangup: bits & EPOLLHUP != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

// ---------------------------------------------------------------------
// Other unix: poll(2)
// ---------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// Registry-backed `poll(2)` poller: the pollfd array is rebuilt
    /// from the registration table on every wait.
    pub struct Poller {
        registered: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Vec::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.registered.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for entry in &mut self.registered {
                if entry.0 == fd {
                    entry.1 = token;
                    entry.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.registered.len();
            self.registered.retain(|&(f, _, _)| f != fd);
            if self.registered.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: {
                        let mut e = 0;
                        if interest.readable {
                            e |= POLLIN;
                        }
                        if interest.writable {
                            e |= POLLOUT;
                        }
                        e
                    },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, millis(timeout)) };
            if n < 0 {
                let e = last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&self.registered) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & POLLERR != 0,
                    hangup: pfd.revents & POLLHUP != 0,
                });
            }
            Ok(out.len())
        }
    }
}

#[cfg(unix)]
pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing pending yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "spurious readiness: {events:?}");

        a.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        let got = (&b).read(&mut buf).unwrap();
        assert_eq!(got, 1);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn writable_when_asked_and_interest_changes_apply() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(a.as_raw_fd(), 1, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events[0].writable);
        assert!(!events[0].readable);

        // Drop write interest: an idle socket reports nothing.
        poller.modify(a.as_raw_fd(), 1, Interest::READ).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        poller.deregister(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn hangup_or_readable_on_peer_close() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        // A closed peer shows up as hangup and/or readable-EOF; either
        // way the caller's read sees it.
        assert!(events[0].readable || events[0].hangup);
    }

    #[test]
    fn tokens_distinguish_many_fds() {
        let pairs: Vec<(UnixStream, UnixStream)> =
            (0..8).map(|_| UnixStream::pair().unwrap()).collect();
        let mut poller = Poller::new().unwrap();
        for (i, (_, b)) in pairs.iter().enumerate() {
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 100 + i as u64, Interest::READ)
                .unwrap();
        }
        // Write on pairs 2 and 5 only.
        for &i in &[2usize, 5] {
            (&pairs[i].0).write_all(b"y").unwrap();
        }
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 2);
        let mut tokens: Vec<u64> = events.iter().map(|e| e.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![102, 105]);
    }
}
