//! Live metrics endpoint: a minimal plain-TCP HTTP responder serving
//! Prometheus text exposition (`--metrics-addr`).
//!
//! Deliberately tiny and unauthenticated — it exposes *metrics*, not
//! control: every request, whatever its path, gets the current render
//! and the connection is closed. The render closure is taken at bind
//! time so this crate stays serialization-agnostic (the caller passes
//! `telemetry.render_prometheus()` or anything else).
//!
//! The accept loop runs on one background thread in non-blocking mode,
//! polling a stop flag, so [`MetricsServer`] can be shut down (and is
//! on drop) without keeping the process alive.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long one connection may take to deliver its request head.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(2);
/// Accept-loop poll period while idle.
const POLL: Duration = Duration::from_millis(25);
/// Longest request head we bother reading before answering anyway.
const MAX_REQUEST: usize = 8192;

/// A running metrics endpoint. Dropping it stops the accept loop.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9090"`, or port 0 for ephemeral)
    /// and serve `render()` to every connection.
    pub fn bind(
        addr: &str,
        render: impl Fn() -> String + Send + 'static,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = stop.clone();
            let served = served.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if serve_one(stream, &render).is_ok() {
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL);
                        }
                        Err(_) => std::thread::sleep(POLL),
                    }
                }
            })
        };
        Ok(MetricsServer {
            local_addr,
            stop,
            served,
            thread: Some(thread),
        })
    }

    /// The actually bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests answered so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stop the accept loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Answer one connection: read the request head (tolerantly — a bare
/// scrape with no headers still works), write one 200 with the current
/// render, close.
fn serve_one(mut stream: TcpStream, render: &impl Fn() -> String) -> std::io::Result<()> {
    // Scrape responses are one small write; don't let Nagle hold the
    // tail segment back from a latency-sensitive poller.
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_write_timeout(Some(REQUEST_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                    || head.len() >= MAX_REQUEST
                {
                    break;
                }
            }
            // Slow or silent client: answer what we have anyway.
            Err(_) => break,
        }
    }
    let body = render();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_current_render_per_request() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        let server = MetricsServer::bind("127.0.0.1:0", move || {
            format!("scrapes_total {}\n", h.fetch_add(1, Ordering::Relaxed))
        })
        .unwrap();
        let addr = server.local_addr();
        let first = scrape(addr);
        assert!(first.starts_with("HTTP/1.0 200 OK\r\n"), "{first}");
        assert!(first.contains("text/plain; version=0.0.4"), "{first}");
        assert!(first.ends_with("scrapes_total 0\n"), "{first}");
        let second = scrape(addr);
        assert!(second.ends_with("scrapes_total 1\n"), "{second}");
        assert_eq!(server.served(), 2);
        server.shutdown();
    }

    #[test]
    fn headerless_scrape_is_answered() {
        let server = MetricsServer::bind("127.0.0.1:0", || "x 1\n".to_string()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // No request at all: just close our write side and read.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.ends_with("x 1\n"), "{out}");
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = MetricsServer::bind("127.0.0.1:0", || String::new()).unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The listener socket is gone; a fresh connect must fail (or be
        // refused once the OS drains the backlog — either way no reply).
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"GET / HTTP/1.0\r\n\r\n");
                let mut out = String::new();
                s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
                assert!(
                    s.read_to_string(&mut out).is_err() || out.is_empty(),
                    "unexpected reply after shutdown: {out}"
                );
            }
        }
    }
}
