//! Length-prefixed binary framing.
//!
//! Every message on a wire link — handshake legs included — is one
//! frame: a 4-byte big-endian payload length followed by the payload.
//! The length prefix is capped ([`MAX_FRAME`] by default) so a
//! malicious or corrupted peer cannot make the receiver allocate
//! gigabytes; an oversized prefix is an [`io::ErrorKind::InvalidData`]
//! error and the caller is expected to drop the connection (framing
//! cannot be resynchronised once the stream position is suspect).

use std::io::{self, IoSlice, Read, Write};

/// Hard upper bound on a frame payload. Generous for this codebase: the
/// largest real message is a `Workload` carrying conformation
/// coordinates, well under a megabyte.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes of framing overhead per frame (the length prefix).
pub const HEADER_LEN: usize = 4;

/// Payloads up to this size are copied into one contiguous buffer so
/// header+payload leave in a single `write` syscall; larger ones go
/// through `write_vectored` to avoid the copy.
const COALESCE_LIMIT: usize = 64 * 1024;

/// Encode one frame (header + payload) into a fresh buffer. Errors if
/// the payload exceeds `MAX_FRAME`.
pub fn encode_frame(payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Write one frame. Errors if the payload exceeds `MAX_FRAME`.
///
/// Header and payload leave together — one buffered write for small
/// frames, one vectored write for large ones — never as two separate
/// syscalls (which, pre-`TCP_NODELAY`, also meant a Nagle stall
/// between the 4-byte header segment and the payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() <= COALESCE_LIMIT {
        let buf = encode_frame(payload)?;
        w.write_all(&buf)?;
        return w.flush();
    }
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let header = (payload.len() as u32).to_be_bytes();
    let mut written = 0usize;
    let total = HEADER_LEN + payload.len();
    while written < total {
        let n = if written < HEADER_LEN {
            w.write_vectored(&[IoSlice::new(&header[written..]), IoSlice::new(payload)])?
        } else {
            w.write(&payload[written - HEADER_LEN..])?
        };
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        written += n;
    }
    w.flush()
}

/// Read one frame, rejecting payloads larger than `MAX_FRAME`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    read_frame_limited(r, MAX_FRAME)
}

/// Read one frame with an explicit payload cap.
///
/// Error taxonomy (all of which mean "drop the connection"):
/// - truncated length prefix or mid-frame disconnect →
///   [`io::ErrorKind::UnexpectedEof`]
/// - length prefix above `max` → [`io::ErrorKind::InvalidData`]
pub fn read_frame_limited(r: &mut impl Read, max: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------
// Nonblocking-side framing: incremental decode, resumable writes
// ---------------------------------------------------------------------

/// Incremental frame parser for nonblocking reads.
///
/// Bytes arrive in arbitrary fragments (`extend`); complete frames come
/// out of [`next_frame`]. Partial headers and partial payloads persist
/// across calls — the event loop resumes a half-read frame whenever the
/// socket becomes readable again, with no thread parked mid-`read_exact`.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Read position: consumed frames are compacted away lazily so a
    /// burst of small frames doesn't memmove per frame.
    pos: usize,
    max: usize,
}

impl FrameDecoder {
    pub fn new(max: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max,
        }
    }

    /// Append raw bytes from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        // Compact when the dead prefix dominates, to amortise the copy.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    /// Next complete frame, `Ok(None)` if more bytes are needed, or
    /// `InvalidData` for a length prefix above the cap (the stream is
    /// unrecoverable — drop the connection).
    pub fn next_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let header: [u8; HEADER_LEN] = self.buf[self.pos..self.pos + HEADER_LEN]
            .try_into()
            .expect("slice is HEADER_LEN bytes");
        let len = u32::from_be_bytes(header) as usize;
        if len > self.max {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {}", self.max),
            ));
        }
        if avail < HEADER_LEN + len {
            return Ok(None);
        }
        let start = self.pos + HEADER_LEN;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        self.compact();
        Ok(Some(frame))
    }
}

/// Outbound frame queue with partial-write resumption.
///
/// Frames are queued pre-encoded (header already prepended); `flush`
/// writes as much as the socket takes, remembers the offset into the
/// head frame on `WouldBlock`, and resumes exactly there next time the
/// socket reports writable. `queued_bytes` is the backpressure signal —
/// the event loop drops connections whose peers stop draining.
#[derive(Debug, Default)]
pub struct WriteQueue {
    frames: std::collections::VecDeque<Vec<u8>>,
    /// Bytes of the head frame already written.
    head_written: usize,
    queued: usize,
}

impl WriteQueue {
    pub fn new() -> WriteQueue {
        WriteQueue::default()
    }

    /// Queue one pre-encoded frame (see [`encode_frame`]).
    pub fn push(&mut self, frame: Vec<u8>) {
        self.queued += frame.len();
        self.frames.push_back(frame);
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total bytes not yet accepted by the socket.
    pub fn queued_bytes(&self) -> usize {
        self.queued - self.head_written
    }

    /// Write until drained or the writer refuses progress. Returns
    /// `Ok(true)` when the queue is empty, `Ok(false)` on `WouldBlock`
    /// (re-arm write interest and resume later). Other errors are the
    /// connection's death.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while let Some(head) = self.frames.front() {
            match w.write(&head[self.head_written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.head_written += n;
                    if self.head_written == head.len() {
                        self.queued -= head.len();
                        self.head_written = 0;
                        self.frames.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = framed(b"hello wire");
        assert_eq!(buf.len(), HEADER_LEN + 10);
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello wire");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut cur = Cursor::new(framed(b""));
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
    }

    #[test]
    fn back_to_back_frames_stay_in_sync() {
        let mut buf = framed(b"one");
        buf.extend_from_slice(&framed(b"two"));
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"two");
    }

    #[test]
    fn truncated_length_prefix_is_eof() {
        let mut cur = Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn mid_frame_disconnect_is_eof() {
        // Header promises 100 bytes; only 10 arrive before the peer
        // vanishes.
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[7u8; 10]);
        let mut cur = Cursor::new(buf);
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let mut cur = Cursor::new(buf);
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn custom_cap_applies() {
        let buf = framed(&[1u8; 64]);
        let mut cur = Cursor::new(buf);
        let err = read_frame_limited(&mut cur, 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_is_refused() {
        // Don't allocate 16 MiB in a unit test: the check is on the
        // length, so a zero-copy slice of a big (virtual) buffer works.
        let big = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "no partial frame may be emitted");
    }

    #[test]
    fn write_frame_emits_header_and_payload_in_one_write() {
        // A writer that counts calls: the whole point of the buffered
        // path is exactly one OS write per small frame.
        struct CountingWriter {
            calls: usize,
            data: Vec<u8>,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.calls += 1;
                self.data.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = CountingWriter {
            calls: 0,
            data: Vec::new(),
        };
        write_frame(&mut w, b"payload").unwrap();
        assert_eq!(w.calls, 1, "small frame must be a single write");
        let mut cur = Cursor::new(w.data);
        assert_eq!(read_frame(&mut cur).unwrap(), b"payload");
    }

    #[test]
    fn large_frame_roundtrips_through_vectored_path() {
        let payload = vec![0xabu8; COALESCE_LIMIT + 11];
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf.len(), HEADER_LEN + payload.len());
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), payload);
    }

    #[test]
    fn decoder_reassembles_fragmented_frames() {
        let mut stream = framed(b"alpha");
        stream.extend_from_slice(&framed(b""));
        stream.extend_from_slice(&framed(b"gamma"));
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut out = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_prefix() {
        let mut dec = FrameDecoder::new(16);
        dec.extend(&100u32.to_be_bytes());
        let err = dec.next_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn write_queue_resumes_partial_writes() {
        // A writer that takes at most 3 bytes then blocks until poked.
        struct Dribble {
            data: Vec<u8>,
            budget: usize,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(self.budget).min(3);
                self.budget -= n;
                self.data.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::new();
        q.push(encode_frame(b"first-frame").unwrap());
        q.push(encode_frame(b"second").unwrap());
        let mut w = Dribble {
            data: Vec::new(),
            budget: 7,
        };
        assert!(!q.flush(&mut w).unwrap(), "must report WouldBlock");
        assert!(q.queued_bytes() > 0);
        w.budget = usize::MAX;
        assert!(q.flush(&mut w).unwrap());
        assert_eq!(q.queued_bytes(), 0);
        let mut cur = Cursor::new(w.data);
        assert_eq!(read_frame(&mut cur).unwrap(), b"first-frame");
        assert_eq!(read_frame(&mut cur).unwrap(), b"second");
    }
}
