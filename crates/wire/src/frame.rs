//! Length-prefixed binary framing.
//!
//! Every message on a wire link — handshake legs included — is one
//! frame: a 4-byte big-endian payload length followed by the payload.
//! The length prefix is capped ([`MAX_FRAME`] by default) so a
//! malicious or corrupted peer cannot make the receiver allocate
//! gigabytes; an oversized prefix is an [`io::ErrorKind::InvalidData`]
//! error and the caller is expected to drop the connection (framing
//! cannot be resynchronised once the stream position is suspect).

use std::io::{self, Read, Write};

/// Hard upper bound on a frame payload. Generous for this codebase: the
/// largest real message is a `Workload` carrying conformation
/// coordinates, well under a megabyte.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes of framing overhead per frame (the length prefix).
pub const HEADER_LEN: usize = 4;

/// Write one frame. Errors if the payload exceeds `MAX_FRAME`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame, rejecting payloads larger than `MAX_FRAME`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    read_frame_limited(r, MAX_FRAME)
}

/// Read one frame with an explicit payload cap.
///
/// Error taxonomy (all of which mean "drop the connection"):
/// - truncated length prefix or mid-frame disconnect →
///   [`io::ErrorKind::UnexpectedEof`]
/// - length prefix above `max` → [`io::ErrorKind::InvalidData`]
pub fn read_frame_limited(r: &mut impl Read, max: usize) -> io::Result<Vec<u8>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn roundtrip() {
        let buf = framed(b"hello wire");
        assert_eq!(buf.len(), HEADER_LEN + 10);
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello wire");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut cur = Cursor::new(framed(b""));
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
    }

    #[test]
    fn back_to_back_frames_stay_in_sync() {
        let mut buf = framed(b"one");
        buf.extend_from_slice(&framed(b"two"));
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap(), b"two");
    }

    #[test]
    fn truncated_length_prefix_is_eof() {
        let mut cur = Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn mid_frame_disconnect_is_eof() {
        // Header promises 100 bytes; only 10 arrive before the peer
        // vanishes.
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[7u8; 10]);
        let mut cur = Cursor::new(buf);
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let mut cur = Cursor::new(buf);
        let err = read_frame(&mut cur).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn custom_cap_applies() {
        let buf = framed(&[1u8; 64]);
        let mut cur = Cursor::new(buf);
        let err = read_frame_limited(&mut cur, 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_write_is_refused() {
        // Don't allocate 16 MiB in a unit test: the check is on the
        // length, so a zero-copy slice of a big (virtual) buffer works.
        let big = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(sink.is_empty(), "no partial frame may be emitted");
    }
}
