//! Supervised client side of a wire link.
//!
//! A [`WireClient`] owns one authenticated TCP connection to a server
//! and keeps it alive: any send/receive failure tears the socket down
//! and redials with exponential backoff (the same
//! max-attempts/base/cap shape as the command-lifecycle `RetryPolicy`),
//! re-running the handshake and replaying registered *session frames*
//! (the worker's `Announce`) so the server can rebuild its picture of
//! the peer. Callers see a reconnect as [`RecvError::Reconnected`] and
//! are expected to re-issue whatever request was in flight — the
//! server's attempt-epoch ledger makes duplicates safe.
//!
//! Authentication failures are *fatal*, never retried: a wrong
//! pre-shared key will not become right by redialing.

use crate::auth::{client_handshake, AuthError, AuthKey};
use crate::frame::{self, HEADER_LEN, MAX_FRAME};
use crate::stats::LinkStats;
use std::fmt;
use std::io::{self, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long a handshake leg may block before the dial attempt is
/// abandoned (a dead or wedged server must not hang connect forever).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Reconnect schedule: `delay(n) = min(backoff_base · 2ⁿ, backoff_max)`,
/// at most `max_attempts` dials per outage. Mirrors the lifecycle
/// `RetryPolicy` fields so deployments tune one vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct ReconnectPolicy {
    pub max_attempts: u32,
    pub backoff_base: Duration,
    pub backoff_max: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 8,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
        }
    }
}

impl ReconnectPolicy {
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.backoff_base
            .checked_mul(factor)
            .map(|d| d.min(self.backoff_max))
            .unwrap_or(self.backoff_max)
    }
}

/// The link is permanently down (auth rejected, retries exhausted, or
/// explicitly closed).
#[derive(Debug)]
pub struct LinkDown(pub String);

impl fmt::Display for LinkDown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire link down: {}", self.0)
    }
}

impl std::error::Error for LinkDown {}

/// Why `recv_timeout` returned without a frame.
#[derive(Debug)]
pub enum RecvError {
    /// Deadline passed with the link idle and healthy.
    Timeout,
    /// The link dropped and has been re-established (session frames
    /// replayed). Any in-flight request/response may be lost — re-issue.
    Reconnected,
    /// The link is permanently down.
    Closed(String),
}

/// Why the initial connect failed.
#[derive(Debug)]
pub enum ConnectError {
    /// Handshake rejected — wrong key or not a wire server. Fatal.
    Auth(AuthError),
    /// All dial attempts failed at the socket level.
    Exhausted(Option<io::Error>),
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::Auth(e) => write!(f, "handshake rejected: {e}"),
            ConnectError::Exhausted(Some(e)) => write!(f, "connect retries exhausted: {e}"),
            ConnectError::Exhausted(None) => write!(f, "connect retries exhausted"),
        }
    }
}

impl std::error::Error for ConnectError {}

struct Link {
    generation: u64,
    writer: TcpStream,
    reader: TcpStream,
}

struct Inner {
    addr: String,
    key: AuthKey,
    policy: ReconnectPolicy,
    stats: LinkStats,
    link: Mutex<Link>,
    /// Frames replayed (in order) after every successful redial.
    session_frames: Mutex<Vec<Vec<u8>>>,
    closed: AtomicBool,
    /// Session id of the *first* handshake: a stable, collision-resistant
    /// identity for this client process (later redials mint new session
    /// ids, but the peer identity must not change).
    first_session: u64,
}

#[derive(Clone)]
pub struct WireClient {
    inner: Arc<Inner>,
}

enum DialError {
    Auth(AuthError),
    Io(io::Error),
}

fn dial(addr: &str, key: &AuthKey) -> Result<(TcpStream, TcpStream, u64), DialError> {
    let stream = TcpStream::connect(addr).map_err(DialError::Io)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).ok();
    let session = client_handshake(&mut (&stream), key).map_err(|e| match e {
        AuthError::Io(io_err) => DialError::Io(io_err),
        other => DialError::Auth(other),
    })?;
    stream.set_read_timeout(None).ok();
    let reader = stream.try_clone().map_err(DialError::Io)?;
    Ok((reader, stream, session.session_id))
}

impl WireClient {
    /// Dial, handshake, and return a supervised link. Socket-level
    /// failures are retried per `policy`; an authentication rejection
    /// aborts immediately.
    pub fn connect(
        addr: &str,
        key: AuthKey,
        policy: ReconnectPolicy,
        stats: LinkStats,
    ) -> Result<WireClient, ConnectError> {
        let mut last = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 {
                thread::sleep(policy.delay(attempt - 1));
            }
            match dial(addr, &key) {
                Ok((reader, writer, session_id)) => {
                    return Ok(WireClient {
                        inner: Arc::new(Inner {
                            addr: addr.to_string(),
                            key,
                            policy,
                            stats,
                            link: Mutex::new(Link {
                                generation: 0,
                                writer,
                                reader,
                            }),
                            session_frames: Mutex::new(Vec::new()),
                            closed: AtomicBool::new(false),
                            first_session: session_id,
                        }),
                    });
                }
                Err(DialError::Auth(e)) => {
                    stats.auth_failures.inc();
                    return Err(ConnectError::Auth(e));
                }
                Err(DialError::Io(e)) => last = Some(e),
            }
        }
        Err(ConnectError::Exhausted(last))
    }

    /// Stable identity minted by the first handshake.
    pub fn session_id(&self) -> u64 {
        self.inner.first_session
    }

    pub fn stats(&self) -> &LinkStats {
        &self.inner.stats
    }

    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
    }

    /// Send one frame, redialing through the reconnect policy on socket
    /// failure.
    pub fn send(&self, payload: &[u8]) -> Result<(), LinkDown> {
        if self.is_closed() {
            return Err(LinkDown("client closed".into()));
        }
        for _ in 0..self.inner.policy.max_attempts.max(1) {
            let stale = {
                let st = self.inner.link.lock().unwrap();
                match frame::write_frame(&mut (&st.writer), payload) {
                    Ok(()) => {
                        self.inner.stats.on_frame_sent(payload.len());
                        return Ok(());
                    }
                    Err(_) => st.generation,
                }
            };
            self.reconnect(stale)?;
        }
        Err(LinkDown("send retries exhausted".into()))
    }

    /// Send one frame and register it for replay after every future
    /// reconnect — for self-describing session state like the worker's
    /// `Announce`. Replay order follows registration order.
    pub fn send_session(&self, payload: &[u8]) -> Result<(), LinkDown> {
        self.inner
            .session_frames
            .lock()
            .unwrap()
            .push(payload.to_vec());
        self.send(payload)
    }

    /// Wait up to `timeout` for one inbound frame.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, RecvError> {
        if self.is_closed() {
            return Err(RecvError::Closed("client closed".into()));
        }
        let deadline = Instant::now() + timeout;
        let (generation, reader) = {
            let st = self.inner.link.lock().unwrap();
            let reader = st
                .reader
                .try_clone()
                .map_err(|e| RecvError::Closed(e.to_string()))?;
            (st.generation, reader)
        };
        match read_frame_deadline(&reader, deadline) {
            ReadOutcome::Frame(payload) => {
                self.inner.stats.on_frame_recv(payload.len());
                Ok(payload)
            }
            ReadOutcome::TimedOutClean => Err(RecvError::Timeout),
            // A frame cut off mid-stream cannot be resynchronised; treat
            // it exactly like a socket failure.
            ReadOutcome::TimedOutMidFrame => self.recycle(generation, "deadline hit mid-frame"),
            ReadOutcome::Failed(e) => self.recycle(generation, &e.to_string()),
        }
    }

    fn recycle(&self, generation: u64, cause: &str) -> Result<Vec<u8>, RecvError> {
        self.reconnect(generation)
            .map_err(|LinkDown(why)| RecvError::Closed(format!("{why} (link failed: {cause})")))?;
        Err(RecvError::Reconnected)
    }

    /// Tear the link down for good.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Relaxed);
        if let Ok(st) = self.inner.link.lock() {
            st.writer.shutdown(Shutdown::Both).ok();
        }
    }

    /// Re-establish the link unless another thread already has (the
    /// generation stamp dedups concurrent failures, like the command
    /// lifecycle's attempt epochs).
    fn reconnect(&self, stale_generation: u64) -> Result<(), LinkDown> {
        let inner = &*self.inner;
        if inner.closed.load(Ordering::Relaxed) {
            return Err(LinkDown("client closed".into()));
        }
        let mut st = inner.link.lock().unwrap();
        if st.generation != stale_generation {
            return Ok(()); // somebody else already redialed
        }
        st.writer.shutdown(Shutdown::Both).ok();
        let mut last: Option<io::Error> = None;
        for attempt in 0..inner.policy.max_attempts.max(1) {
            thread::sleep(inner.policy.delay(attempt));
            match dial(&inner.addr, &inner.key) {
                Ok((reader, writer, _session)) => {
                    let frames = inner.session_frames.lock().unwrap().clone();
                    let mut replay_ok = true;
                    for f in &frames {
                        if frame::write_frame(&mut (&writer), f).is_err() {
                            replay_ok = false;
                            break;
                        }
                        inner.stats.on_frame_sent(f.len());
                    }
                    if !replay_ok {
                        last = Some(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            "link dropped during session replay",
                        ));
                        continue;
                    }
                    st.reader = reader;
                    st.writer = writer;
                    st.generation += 1;
                    inner.stats.reconnects.inc();
                    return Ok(());
                }
                Err(DialError::Auth(e)) => {
                    inner.stats.auth_failures.inc();
                    inner.closed.store(true, Ordering::Relaxed);
                    return Err(LinkDown(format!("authentication rejected on redial: {e}")));
                }
                Err(DialError::Io(e)) => last = Some(e),
            }
        }
        inner.closed.store(true, Ordering::Relaxed);
        match last {
            Some(e) => Err(LinkDown(format!("reconnect retries exhausted: {e}"))),
            None => Err(LinkDown("reconnect retries exhausted".into())),
        }
    }
}

enum ReadOutcome {
    Frame(Vec<u8>),
    TimedOutClean,
    TimedOutMidFrame,
    Failed(io::Error),
}

/// Accumulate one frame with an absolute deadline, preserving the
/// distinction between "idle at deadline" (harmless) and "deadline hit
/// mid-frame" (stream position lost — the link must be recycled).
fn read_frame_deadline(mut reader: &TcpStream, deadline: Instant) -> ReadOutcome {
    let mut buf: Vec<u8> = Vec::with_capacity(HEADER_LEN);
    let mut need = HEADER_LEN;
    let mut have_header = false;
    loop {
        if buf.len() == need {
            if have_header {
                return ReadOutcome::Frame(buf.split_off(HEADER_LEN));
            }
            let len = u32::from_be_bytes(buf[..HEADER_LEN].try_into().unwrap()) as usize;
            if len > MAX_FRAME {
                return ReadOutcome::Failed(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame length {len} exceeds cap"),
                ));
            }
            have_header = true;
            need = HEADER_LEN + len;
            continue;
        }
        let now = Instant::now();
        if now >= deadline {
            return if buf.is_empty() {
                ReadOutcome::TimedOutClean
            } else {
                ReadOutcome::TimedOutMidFrame
            };
        }
        if let Err(e) = reader.set_read_timeout(Some(deadline - now)) {
            return ReadOutcome::Failed(e);
        }
        let mut chunk = vec![0u8; need - buf.len()];
        match reader.read(&mut chunk) {
            Ok(0) => {
                return ReadOutcome::Failed(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed the link",
                ))
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return ReadOutcome::Failed(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ReconnectPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(35),
        };
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(35));
        assert_eq!(p.delay(31), Duration::from_millis(35));
        assert_eq!(p.delay(63), Duration::from_millis(35));
    }

    #[test]
    fn connect_to_nothing_exhausts_quickly() {
        // Port 1 on loopback: connection refused immediately, so the
        // retry loop terminates fast.
        let policy = ReconnectPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
        };
        let err = WireClient::connect(
            "127.0.0.1:1",
            AuthKey::from_passphrase("k"),
            policy,
            LinkStats::detached(),
        )
        .err()
        .expect("must not connect");
        assert!(matches!(err, ConnectError::Exhausted(Some(_))), "{err}");
    }
}
