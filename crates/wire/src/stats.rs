//! Per-link traffic counters, backed by `copernicus-telemetry`.
//!
//! Every supervised link (client side) and every listener (server side)
//! owns a [`LinkStats`] whose counters are registered under the shared
//! [`Registry`], labelled by `link` (peer address or "listener") and
//! `role` (client/server). They surface in `copernicus --report`
//! alongside the command-lifecycle metrics.

use copernicus_telemetry::{labels, names, Counter, Registry};
use std::sync::Arc;

use crate::frame::HEADER_LEN;

#[derive(Clone)]
pub struct LinkStats {
    pub bytes_sent: Arc<Counter>,
    pub bytes_recv: Arc<Counter>,
    pub frames_sent: Arc<Counter>,
    pub frames_recv: Arc<Counter>,
    pub reconnects: Arc<Counter>,
    pub auth_failures: Arc<Counter>,
}

impl LinkStats {
    pub fn new(registry: &Registry, link: &str, role: &str) -> LinkStats {
        let l = labels(&[("link", link), ("role", role)]);
        LinkStats {
            bytes_sent: registry.counter(names::WIRE_BYTES_SENT, l.clone()),
            bytes_recv: registry.counter(names::WIRE_BYTES_RECV, l.clone()),
            frames_sent: registry.counter(names::WIRE_FRAMES_SENT, l.clone()),
            frames_recv: registry.counter(names::WIRE_FRAMES_RECV, l.clone()),
            reconnects: registry.counter(names::WIRE_RECONNECTS, l.clone()),
            auth_failures: registry.counter(names::WIRE_AUTH_FAILURES, l),
        }
    }

    /// Counters wired to a private registry nobody reads — for tests
    /// and tools that don't care about telemetry.
    pub fn detached() -> LinkStats {
        LinkStats::new(&Registry::new(), "detached", "none")
    }

    pub(crate) fn on_frame_sent(&self, payload_len: usize) {
        self.frames_sent.inc();
        self.bytes_sent.add((payload_len + HEADER_LEN) as u64);
    }

    pub(crate) fn on_frame_recv(&self, payload_len: usize) {
        self.frames_recv.inc();
        self.bytes_recv.add((payload_len + HEADER_LEN) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_shared_names() {
        let reg = Registry::new();
        let stats = LinkStats::new(&reg, "127.0.0.1:9", "client");
        stats.on_frame_sent(10);
        stats.on_frame_sent(6);
        stats.on_frame_recv(100);
        assert_eq!(reg.counter_total(names::WIRE_FRAMES_SENT), 2);
        assert_eq!(reg.counter_total(names::WIRE_BYTES_SENT), 16 + 2 * 4);
        assert_eq!(reg.counter_total(names::WIRE_BYTES_RECV), 104);
        assert_eq!(reg.counter_total(names::WIRE_RECONNECTS), 0);
    }

    #[test]
    fn links_are_distinguished_by_label() {
        let reg = Registry::new();
        let a = LinkStats::new(&reg, "a", "client");
        let b = LinkStats::new(&reg, "b", "client");
        a.on_frame_sent(0);
        b.on_frame_sent(0);
        b.on_frame_sent(0);
        let series = reg.counter_series(names::WIRE_FRAMES_SENT);
        assert_eq!(series.len(), 2);
        assert_eq!(reg.counter_total(names::WIRE_FRAMES_SENT), 3);
    }
}
