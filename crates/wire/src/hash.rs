//! SHA-256 and HMAC-SHA256, implemented in-repo.
//!
//! The paper's deployment authenticates every server↔server and
//! worker↔server link with SSL after an explicit key exchange (§2.2).
//! This repo substitutes a pre-shared-key challenge–response handshake
//! (see [`crate::auth`]); the MAC underneath it is a from-scratch
//! HMAC-SHA256 so the transport stays zero-dependency. It follows FIPS
//! 180-4 / RFC 2104 and is checked against the standard test vectors
//! below, but it is a *protocol stand-in*, not audited production
//! crypto: no key rotation, no forward secrecy, no side-channel
//! hardening beyond constant-time MAC comparison.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

fn compress(h: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
        *s = s.wrapping_add(v);
    }
}

/// SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;
    let bitlen = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bitlen.to_be_bytes());
    for block in msg.chunks_exact(64) {
        compress(&mut h, block);
    }
    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// HMAC-SHA256 (RFC 2104) of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Vec::with_capacity(BLOCK + msg.len());
    inner.extend_from_slice(&ipad);
    inner.extend_from_slice(msg);
    let inner_digest = sha256(&inner);
    let mut outer = Vec::with_capacity(BLOCK + 32);
    outer.extend_from_slice(&opad);
    outer.extend_from_slice(&inner_digest);
    sha256(&outer)
}

/// Constant-time byte-slice equality (length mismatch returns early —
/// lengths are public here, MAC contents are not).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Lower-case hex rendering, for logs and tests.
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_two_block_vector() {
        // 56 bytes forces the padding into a second block.
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        // RFC 4231 case 6: 131-byte key exercises the key-digest path.
        let key = vec![0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_semantics() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
